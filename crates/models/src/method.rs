//! The model-heterogeneous FL algorithms the platform benchmarks.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::HeterogeneityLevel;

/// The eight MHFL algorithms evaluated by the paper plus the resource-aware
/// homogeneous baseline used to measure *effectiveness*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MhflMethod {
    /// Fjord (ordered dropout): width heterogeneity with nested prefixes and
    /// per-step width sampling \[Horvath et al., NeurIPS'21\].
    Fjord,
    /// HeteroFL with static sub-networks (the paper calls it SHeteroFL)
    /// \[Diao et al., ICLR'21\].
    SHeteroFl,
    /// FedRolex: rolling sub-model extraction \[Alam et al., NeurIPS'22\].
    FedRolex,
    /// FeDepth: memory-adaptive depth-wise training \[Zhang et al., 2023\].
    FeDepth,
    /// InclusiveFL: layer pruning from the top with momentum knowledge
    /// transfer to shallow clients \[Liu et al., KDD'22\].
    InclusiveFl,
    /// DepthFL: depth-wise federated learning with self-distillation among
    /// intermediate classifiers \[Kim et al., ICLR'23\].
    DepthFl,
    /// FedProto: prototype exchange across heterogeneous topologies
    /// \[Tan et al., AAAI'22\].
    FedProto,
    /// Fed-ET: ensemble knowledge transfer via a public proxy dataset
    /// \[Cho et al., IJCAI'22\].
    FedEt,
    /// Resource-aware homogeneous baseline: FedAvg over the smallest model
    /// that fits every device (the reference for the effectiveness metric).
    HomogeneousSmallest,
}

impl MhflMethod {
    /// The eight heterogeneous methods in the paper's presentation order.
    pub const HETEROGENEOUS: [MhflMethod; 8] = [
        MhflMethod::Fjord,
        MhflMethod::SHeteroFl,
        MhflMethod::FedRolex,
        MhflMethod::FeDepth,
        MhflMethod::InclusiveFl,
        MhflMethod::DepthFl,
        MhflMethod::FedEt,
        MhflMethod::FedProto,
    ];

    /// All methods including the homogeneous baseline.
    pub const ALL: [MhflMethod; 9] = [
        MhflMethod::Fjord,
        MhflMethod::SHeteroFl,
        MhflMethod::FedRolex,
        MhflMethod::FeDepth,
        MhflMethod::InclusiveFl,
        MhflMethod::DepthFl,
        MhflMethod::FedEt,
        MhflMethod::FedProto,
        MhflMethod::HomogeneousSmallest,
    ];

    /// The heterogeneity level the method belongs to (paper Table II).
    pub fn level(&self) -> HeterogeneityLevel {
        match self {
            MhflMethod::Fjord | MhflMethod::SHeteroFl | MhflMethod::FedRolex => {
                HeterogeneityLevel::Width
            }
            MhflMethod::FeDepth | MhflMethod::InclusiveFl | MhflMethod::DepthFl => {
                HeterogeneityLevel::Depth
            }
            MhflMethod::FedProto | MhflMethod::FedEt => HeterogeneityLevel::Topology,
            MhflMethod::HomogeneousSmallest => HeterogeneityLevel::Width,
        }
    }

    /// Whether the method supports NLP tasks (the paper omits some
    /// method/task combinations; knowledge-distillation methods need a
    /// shared logit space which its NLP setup does not provide for Fed-ET).
    pub fn supports_nlp(&self) -> bool {
        !matches!(self, MhflMethod::FedEt)
    }

    /// Display name matching the paper.
    pub fn display_name(&self) -> &'static str {
        match self {
            MhflMethod::Fjord => "Fjord",
            MhflMethod::SHeteroFl => "SHeteroFL",
            MhflMethod::FedRolex => "FedRolex",
            MhflMethod::FeDepth => "FeDepth",
            MhflMethod::InclusiveFl => "InclusiveFL",
            MhflMethod::DepthFl => "DepthFL",
            MhflMethod::FedProto => "FedProto",
            MhflMethod::FedEt => "Fed-ET",
            MhflMethod::HomogeneousSmallest => "Smallest-Homogeneous",
        }
    }
}

impl fmt::Display for MhflMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_paper_table2() {
        assert_eq!(MhflMethod::Fjord.level(), HeterogeneityLevel::Width);
        assert_eq!(MhflMethod::SHeteroFl.level(), HeterogeneityLevel::Width);
        assert_eq!(MhflMethod::FedRolex.level(), HeterogeneityLevel::Width);
        assert_eq!(MhflMethod::FeDepth.level(), HeterogeneityLevel::Depth);
        assert_eq!(MhflMethod::InclusiveFl.level(), HeterogeneityLevel::Depth);
        assert_eq!(MhflMethod::DepthFl.level(), HeterogeneityLevel::Depth);
        assert_eq!(MhflMethod::FedProto.level(), HeterogeneityLevel::Topology);
        assert_eq!(MhflMethod::FedEt.level(), HeterogeneityLevel::Topology);
    }

    #[test]
    fn eight_heterogeneous_methods() {
        assert_eq!(MhflMethod::HETEROGENEOUS.len(), 8);
        assert_eq!(MhflMethod::ALL.len(), 9);
        let widths = MhflMethod::HETEROGENEOUS
            .iter()
            .filter(|m| m.level() == HeterogeneityLevel::Width)
            .count();
        let depths = MhflMethod::HETEROGENEOUS
            .iter()
            .filter(|m| m.level() == HeterogeneityLevel::Depth)
            .count();
        let topos = MhflMethod::HETEROGENEOUS
            .iter()
            .filter(|m| m.level() == HeterogeneityLevel::Topology)
            .count();
        assert_eq!((widths, depths, topos), (3, 3, 2));
    }

    #[test]
    fn display_names_are_paper_names() {
        assert_eq!(MhflMethod::SHeteroFl.to_string(), "SHeteroFL");
        assert_eq!(MhflMethod::FedEt.to_string(), "Fed-ET");
    }
}
