//! Composite building blocks of the proxy models.

use mhfl_nn::{
    ChannelNorm2d, Conv2d, Gelu, Layer, LayerNorm, Linear, NnError, Param, Relu, Result,
    SelfAttention,
};
use mhfl_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

/// The kind of repeated block a proxy architecture stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Convolution + channel norm + ReLU with a residual connection
    /// (ResNet/MobileNet-style proxies).
    Conv,
    /// Linear + layer norm + ReLU with a residual connection
    /// (HAR CNN proxy).
    Dense,
    /// Self-attention + feed-forward transformer encoder block
    /// (ALBERT / custom-transformer proxies).
    Attention,
}

fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// One repeatable block of a [`crate::ProxyModel`].
///
/// All three variants keep the feature dimension constant (`dim -> dim`), so
/// depth-heterogeneous clients that keep only a prefix of the blocks still
/// feed the classifier a vector of the same size.
// Variant sizes intentionally differ (a transformer block carries far more
// state than a dense one); blocks are built once per model, never moved in a
// hot loop, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum ProxyBlock {
    /// Convolutional residual block over `[batch, dim, h, w]` maps.
    Conv {
        /// 3×3 convolution.
        conv: Conv2d,
        /// Per-channel normalisation.
        norm: ChannelNorm2d,
        /// Activation.
        act: Relu,
        /// Cached input for the residual connection.
        cached_input: Option<Tensor>,
    },
    /// Dense residual block over `[batch, dim]` vectors.
    Dense {
        /// Fully-connected transform.
        fc: Linear,
        /// Feature normalisation.
        norm: LayerNorm,
        /// Activation.
        act: Relu,
        /// Cached input for the residual connection.
        cached_input: Option<Tensor>,
    },
    /// Transformer encoder block over `[batch, seq, dim]` sequences.
    Attention {
        /// Self-attention sub-layer.
        attn: SelfAttention,
        /// Post-attention normalisation.
        norm1: LayerNorm,
        /// Feed-forward expansion.
        fc1: Linear,
        /// Feed-forward activation.
        act: Gelu,
        /// Feed-forward projection back to `dim`.
        fc2: Linear,
        /// Post-FFN normalisation.
        norm2: LayerNorm,
        /// Cached input of the attention residual branch.
        cached_attn_input: Option<Tensor>,
        /// Cached input of the FFN residual branch.
        cached_ffn_input: Option<Tensor>,
    },
}

impl std::fmt::Debug for ProxyBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyBlock::Conv { conv, .. } => {
                write!(f, "ConvBlock(dim={})", conv.out_channels())
            }
            ProxyBlock::Dense { fc, .. } => write!(f, "DenseBlock(dim={})", fc.out_features()),
            ProxyBlock::Attention { attn, .. } => write!(f, "AttentionBlock(dim={})", attn.dim()),
        }
    }
}

impl ProxyBlock {
    /// Builds a block of the requested kind with feature dimension `dim`.
    ///
    /// # Errors
    /// Returns an error when `dim == 0`.
    pub fn new(kind: BlockKind, dim: usize, rng: &mut SeededRng) -> Result<Self> {
        if dim == 0 {
            return Err(NnError::InvalidConfig(
                "block dimension must be positive".into(),
            ));
        }
        Ok(match kind {
            BlockKind::Conv => ProxyBlock::Conv {
                conv: Conv2d::new(dim, dim, 3, 1, 1, rng)?,
                norm: ChannelNorm2d::new(dim),
                act: Relu::new(),
                cached_input: None,
            },
            BlockKind::Dense => ProxyBlock::Dense {
                fc: Linear::new(dim, dim, rng),
                norm: LayerNorm::new(dim),
                act: Relu::new(),
                cached_input: None,
            },
            BlockKind::Attention => ProxyBlock::Attention {
                attn: SelfAttention::new(dim, rng)?,
                norm1: LayerNorm::new(dim),
                fc1: Linear::new(dim, dim * 2, rng),
                act: Gelu::new(),
                fc2: Linear::new(dim * 2, dim, rng),
                norm2: LayerNorm::new(dim),
                cached_attn_input: None,
                cached_ffn_input: None,
            },
        })
    }

    /// The block kind.
    pub fn kind(&self) -> BlockKind {
        match self {
            ProxyBlock::Conv { .. } => BlockKind::Conv,
            ProxyBlock::Dense { .. } => BlockKind::Dense,
            ProxyBlock::Attention { .. } => BlockKind::Attention,
        }
    }
}

impl Layer for ProxyBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        match self {
            ProxyBlock::Conv {
                conv,
                norm,
                act,
                cached_input,
            } => {
                *cached_input = Some(input.clone());
                let y = conv.forward(input, train)?;
                let y = norm.forward(&y, train)?;
                let y = act.forward(&y, train)?;
                Ok(y.add(input)?)
            }
            ProxyBlock::Dense {
                fc,
                norm,
                act,
                cached_input,
            } => {
                *cached_input = Some(input.clone());
                let y = fc.forward(input, train)?;
                let y = norm.forward(&y, train)?;
                let y = act.forward(&y, train)?;
                Ok(y.add(input)?)
            }
            ProxyBlock::Attention {
                attn,
                norm1,
                fc1,
                act,
                fc2,
                norm2,
                cached_attn_input,
                cached_ffn_input,
            } => {
                *cached_attn_input = Some(input.clone());
                let a = attn.forward(input, train)?;
                let a = norm1.forward(&a, train)?;
                let h = a.add(input)?;
                *cached_ffn_input = Some(h.clone());
                let y = fc1.forward(&h, train)?;
                let y = act.forward(&y, train)?;
                let y = fc2.forward(&y, train)?;
                let y = norm2.forward(&y, train)?;
                Ok(y.add(&h)?)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match self {
            ProxyBlock::Conv {
                conv,
                norm,
                act,
                cached_input,
            } => {
                cached_input
                    .as_ref()
                    .ok_or_else(|| NnError::MissingForwardCache("ConvBlock".into()))?;
                let g = act.backward(grad_output)?;
                let g = norm.backward(&g)?;
                let mut g = conv.backward(&g)?;
                // Residual connection adds the upstream gradient directly.
                g.axpy(1.0, grad_output)?;
                Ok(g)
            }
            ProxyBlock::Dense {
                fc,
                norm,
                act,
                cached_input,
            } => {
                cached_input
                    .as_ref()
                    .ok_or_else(|| NnError::MissingForwardCache("DenseBlock".into()))?;
                let g = act.backward(grad_output)?;
                let g = norm.backward(&g)?;
                let mut g = fc.backward(&g)?;
                g.axpy(1.0, grad_output)?;
                Ok(g)
            }
            ProxyBlock::Attention {
                attn,
                norm1,
                fc1,
                act,
                fc2,
                norm2,
                cached_ffn_input,
                ..
            } => {
                cached_ffn_input
                    .as_ref()
                    .ok_or_else(|| NnError::MissingForwardCache("AttentionBlock".into()))?;
                // FFN branch.
                let g = norm2.backward(grad_output)?;
                let g = fc2.backward(&g)?;
                let g = act.backward(&g)?;
                let mut g_h = fc1.backward(&g)?;
                g_h.axpy(1.0, grad_output)?;
                // Attention branch.
                let g = norm1.backward(&g_h)?;
                let mut g_x = attn.backward(&g)?;
                g_x.axpy(1.0, &g_h)?;
                Ok(g_x)
            }
        }
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        match self {
            ProxyBlock::Conv { conv, norm, .. } => {
                conv.visit_params(&join(prefix, "conv"), f);
                norm.visit_params(&join(prefix, "norm"), f);
            }
            ProxyBlock::Dense { fc, norm, .. } => {
                fc.visit_params(&join(prefix, "fc"), f);
                norm.visit_params(&join(prefix, "norm"), f);
            }
            ProxyBlock::Attention {
                attn,
                norm1,
                fc1,
                fc2,
                norm2,
                ..
            } => {
                attn.visit_params(&join(prefix, "attn"), f);
                norm1.visit_params(&join(prefix, "norm1"), f);
                fc1.visit_params(&join(prefix, "fc1"), f);
                fc2.visit_params(&join(prefix, "fc2"), f);
                norm2.visit_params(&join(prefix, "norm2"), f);
            }
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        match self {
            ProxyBlock::Conv { conv, norm, .. } => {
                conv.visit_params_mut(&join(prefix, "conv"), f);
                norm.visit_params_mut(&join(prefix, "norm"), f);
            }
            ProxyBlock::Dense { fc, norm, .. } => {
                fc.visit_params_mut(&join(prefix, "fc"), f);
                norm.visit_params_mut(&join(prefix, "norm"), f);
            }
            ProxyBlock::Attention {
                attn,
                norm1,
                fc1,
                fc2,
                norm2,
                ..
            } => {
                attn.visit_params_mut(&join(prefix, "attn"), f);
                norm1.visit_params_mut(&join(prefix, "norm1"), f);
                fc1.visit_params_mut(&join(prefix, "fc1"), f);
                fc2.visit_params_mut(&join(prefix, "fc2"), f);
                norm2.visit_params_mut(&join(prefix, "norm2"), f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(block: &mut ProxyBlock, x: &Tensor, indices: &[usize], tol: f32) {
        let mut rng = SeededRng::new(99);
        let weights = Tensor::randn(x.dims(), 1.0, &mut rng);
        block.forward(x, true).unwrap();
        let dx = block.backward(&weights).unwrap();
        let eps = 1e-2;
        for &idx in indices {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = block
                .forward(&xp, true)
                .unwrap()
                .mul(&weights)
                .unwrap()
                .sum();
            let fm = block
                .forward(&xm, true)
                .unwrap()
                .mul(&weights)
                .unwrap()
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < tol,
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn conv_block_preserves_shape_and_gradients() {
        let mut rng = SeededRng::new(0);
        let mut block = ProxyBlock::new(BlockKind::Conv, 4, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 4, 5, 5], 0.5, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.dims(), x.dims());
        grad_check(&mut block, &x, &[0, 17, 60], 0.15);
    }

    #[test]
    fn dense_block_preserves_shape_and_gradients() {
        let mut rng = SeededRng::new(1);
        let mut block = ProxyBlock::new(BlockKind::Dense, 6, &mut rng).unwrap();
        let x = Tensor::randn(&[3, 6], 0.5, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.dims(), x.dims());
        grad_check(&mut block, &x, &[0, 7, 15], 0.1);
    }

    #[test]
    fn attention_block_preserves_shape_and_gradients() {
        let mut rng = SeededRng::new(2);
        let mut block = ProxyBlock::new(BlockKind::Attention, 4, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 4], 0.5, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.dims(), x.dims());
        grad_check(&mut block, &x, &[0, 5, 11], 0.15);
    }

    #[test]
    fn block_params_are_prefixed() {
        let mut rng = SeededRng::new(3);
        let block = ProxyBlock::new(BlockKind::Attention, 4, &mut rng).unwrap();
        let mut names = Vec::new();
        block.visit_params("block0", &mut |name, _| names.push(name.to_string()));
        assert!(names.iter().all(|n| n.starts_with("block0.")));
        assert!(names.iter().any(|n| n == "block0.attn.wq"));
        assert!(names.iter().any(|n| n == "block0.fc2.bias"));
    }

    #[test]
    fn kinds_round_trip() {
        let mut rng = SeededRng::new(4);
        for kind in [BlockKind::Conv, BlockKind::Dense, BlockKind::Attention] {
            let block = ProxyBlock::new(kind, 4, &mut rng).unwrap();
            assert_eq!(block.kind(), kind);
        }
        assert!(ProxyBlock::new(BlockKind::Dense, 0, &mut rng).is_err());
    }
}
