//! Trainable proxy models.

use mhfl_nn::{
    num_params_of, param_specs_of, state_dict_of, ChannelNorm2d, Conv2d, Embedding,
    GlobalAvgPool2d, Layer, Linear, MeanPool1d, NnError, Param, ParamSpec, Relu, Result, StateDict,
};
use mhfl_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

use crate::{scale_depth, scale_width, BlockKind, InputKind, ModelFamily, ProxyBlock};

/// Configuration of a [`ProxyModel`].
///
/// The defaults produced by [`ProxyConfig::for_family`] give every model
/// family a distinct topology (block kind, base width, full depth) while
/// keeping the networks small enough that hundreds of federated rounds run in
/// seconds on a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyConfig {
    /// The architecture family this proxy stands in for.
    pub family: ModelFamily,
    /// Input modality and dimensions.
    pub input: InputKind,
    /// Number of output classes.
    pub num_classes: usize,
    /// Feature dimension of the full-width model.
    pub base_dim: usize,
    /// Number of repeated blocks of the full-depth model.
    pub full_blocks: usize,
    /// Width fraction in `(0, 1]`; 1.0 is the full model.
    pub width_fraction: f64,
    /// Depth fraction in `(0, 1]`; 1.0 is the full model.
    pub depth_fraction: f64,
    /// Whether to attach an auxiliary classifier after every block
    /// (required by DepthFL-style self-distillation).
    pub with_aux_heads: bool,
    /// Seed for parameter initialisation.
    pub seed: u64,
}

impl ProxyConfig {
    /// Builds the default proxy configuration for an architecture family.
    pub fn for_family(
        family: ModelFamily,
        input: InputKind,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        let (base_dim, full_blocks) = match family {
            ModelFamily::ResNet18 => (16, 2),
            ModelFamily::ResNet34 => (16, 3),
            ModelFamily::ResNet50 => (20, 4),
            ModelFamily::ResNet101 => (24, 6),
            ModelFamily::MobileNetV2 => (12, 4),
            ModelFamily::MobileNetV3Small => (8, 3),
            ModelFamily::MobileNetV3Large => (16, 5),
            ModelFamily::AlbertBase => (16, 2),
            ModelFamily::AlbertLarge => (24, 3),
            ModelFamily::AlbertXxlarge => (32, 3),
            ModelFamily::CustomTransformer => (16, 2),
            ModelFamily::HarCnn => (32, 3),
        };
        ProxyConfig {
            family,
            input,
            num_classes,
            base_dim,
            full_blocks,
            width_fraction: 1.0,
            depth_fraction: 1.0,
            with_aux_heads: false,
            seed,
        }
    }

    /// Returns a copy scaled to the given width fraction.
    pub fn with_width(mut self, fraction: f64) -> Self {
        self.width_fraction = fraction;
        self
    }

    /// Returns a copy scaled to the given depth fraction.
    pub fn with_depth(mut self, fraction: f64) -> Self {
        self.depth_fraction = fraction;
        self
    }

    /// Returns a copy with auxiliary classifiers enabled.
    pub fn with_aux_heads(mut self, enabled: bool) -> Self {
        self.with_aux_heads = enabled;
        self
    }

    /// The block kind implied by the input modality (images get convolutional
    /// blocks, token sequences get attention blocks, feature vectors get
    /// dense blocks). Deriving this from the *input* rather than the family
    /// keeps every family usable on every task, which the platform relies on
    /// when a CV-style model pool is paired with an HAR or NLP task.
    pub fn block_kind(&self) -> BlockKind {
        match self.input {
            InputKind::Image { .. } => BlockKind::Conv,
            InputKind::Tokens { .. } => BlockKind::Attention,
            InputKind::Features { .. } => BlockKind::Dense,
        }
    }

    /// The realised feature dimension after width scaling.
    pub fn dim(&self) -> usize {
        scale_width(self.base_dim, self.width_fraction)
    }

    /// The realised block count after depth scaling.
    pub fn num_blocks(&self) -> usize {
        scale_depth(self.full_blocks, self.depth_fraction)
    }
}

/// The result of a full forward pass through a proxy model.
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Pooled penultimate features `[batch, dim]` (FedProto's prototypes are
    /// class means of these).
    pub features: Tensor,
    /// Logits of the final classifier `[batch, classes]`.
    pub logits: Tensor,
    /// Logits of each auxiliary classifier (one per block) when enabled.
    pub aux_logits: Vec<Tensor>,
}

/// Pooling applied between the block stack and the classifier(s).
enum Pool {
    Spatial(GlobalAvgPool2d),
    Sequence(MeanPool1d),
    Identity,
}

impl Pool {
    fn new(input: &InputKind) -> Pool {
        match input {
            InputKind::Image { .. } => Pool::Spatial(GlobalAvgPool2d::new()),
            InputKind::Tokens { .. } => Pool::Sequence(MeanPool1d::new()),
            InputKind::Features { .. } => Pool::Identity,
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        match self {
            Pool::Spatial(p) => p.forward(x, train),
            Pool::Sequence(p) => p.forward(x, train),
            Pool::Identity => Ok(x.clone()),
        }
    }

    fn backward(&mut self, g: &Tensor) -> Result<Tensor> {
        match self {
            Pool::Spatial(p) => p.backward(g),
            Pool::Sequence(p) => p.backward(g),
            Pool::Identity => Ok(g.clone()),
        }
    }
}

/// The stem mapping raw inputs into the block feature space.
// One stem per model; size imbalance between input modalities is inherent.
#[allow(clippy::large_enum_variant)]
enum Stem {
    Image {
        conv: Conv2d,
        norm: ChannelNorm2d,
        act: Relu,
    },
    Tokens {
        embedding: Embedding,
    },
    Features {
        fc: Linear,
        act: Relu,
    },
}

impl Stem {
    fn new(input: &InputKind, dim: usize, rng: &mut SeededRng) -> Result<Stem> {
        Ok(match *input {
            InputKind::Image { channels, .. } => Stem::Image {
                conv: Conv2d::new(channels, dim, 3, 1, 1, rng)?,
                norm: ChannelNorm2d::new(dim),
                act: Relu::new(),
            },
            InputKind::Tokens { vocab, .. } => Stem::Tokens {
                embedding: Embedding::new(vocab, dim, rng)?,
            },
            InputKind::Features { dim: in_dim } => Stem::Features {
                fc: Linear::new(in_dim, dim, rng),
                act: Relu::new(),
            },
        })
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        match self {
            Stem::Image { conv, norm, act } => {
                let y = conv.forward(x, train)?;
                let y = norm.forward(&y, train)?;
                act.forward(&y, train)
            }
            Stem::Tokens { embedding } => embedding.forward(x, train),
            Stem::Features { fc, act } => {
                let y = fc.forward(x, train)?;
                act.forward(&y, train)
            }
        }
    }

    fn backward(&mut self, g: &Tensor) -> Result<Tensor> {
        match self {
            Stem::Image { conv, norm, act } => {
                let g = act.backward(g)?;
                let g = norm.backward(&g)?;
                conv.backward(&g)
            }
            Stem::Tokens { embedding } => embedding.backward(g),
            Stem::Features { fc, act } => {
                let g = act.backward(g)?;
                fc.backward(&g)
            }
        }
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        match self {
            Stem::Image { conv, norm, .. } => {
                conv.visit_params(&format!("{prefix}.conv"), f);
                norm.visit_params(&format!("{prefix}.norm"), f);
            }
            Stem::Tokens { embedding } => embedding.visit_params(&format!("{prefix}.embedding"), f),
            Stem::Features { fc, .. } => fc.visit_params(&format!("{prefix}.fc"), f),
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        match self {
            Stem::Image { conv, norm, .. } => {
                conv.visit_params_mut(&format!("{prefix}.conv"), f);
                norm.visit_params_mut(&format!("{prefix}.norm"), f);
            }
            Stem::Tokens { embedding } => {
                embedding.visit_params_mut(&format!("{prefix}.embedding"), f)
            }
            Stem::Features { fc, .. } => fc.visit_params_mut(&format!("{prefix}.fc"), f),
        }
    }
}

/// A small trainable network with the structural handles of the paper's real
/// architectures: width-scalable channels, a depth-scalable block stack,
/// per-family topology, an optional auxiliary classifier per block, and a
/// state dict whose parameter names are stable across scales.
///
/// ```
/// use mhfl_models::{InputKind, ModelFamily, ProxyConfig, ProxyModel};
/// use mhfl_tensor::Tensor;
///
/// let cfg = ProxyConfig::for_family(
///     ModelFamily::ResNet18,
///     InputKind::Image { channels: 3, height: 8, width: 8 },
///     10,
///     0,
/// );
/// let mut model = ProxyModel::new(cfg)?;
/// let out = model.forward_detailed(&Tensor::zeros(&[2, 3, 8, 8]), false)?;
/// assert_eq!(out.logits.dims(), &[2, 10]);
/// # Ok::<(), mhfl_nn::NnError>(())
/// ```
pub struct ProxyModel {
    config: ProxyConfig,
    stem: Stem,
    blocks: Vec<ProxyBlock>,
    pool: Pool,
    head: Linear,
    aux_heads: Vec<Linear>,
    aux_pools: Vec<Pool>,
    dim: usize,
}

impl std::fmt::Debug for ProxyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyModel")
            .field("family", &self.config.family)
            .field("dim", &self.dim)
            .field("blocks", &self.blocks.len())
            .field("aux_heads", &self.aux_heads.len())
            .finish()
    }
}

impl ProxyModel {
    /// Builds a proxy model from a configuration.
    ///
    /// # Errors
    /// Returns an error if the configuration is degenerate (zero classes or
    /// non-positive fractions).
    pub fn new(config: ProxyConfig) -> Result<Self> {
        let mut rng = SeededRng::new(config.seed);
        Self::build(config, &mut rng)
    }

    /// Rebuilds a model from a stored snapshot, skipping random parameter
    /// initialisation entirely.
    ///
    /// Functionally equivalent to [`ProxyModel::new`] followed by
    /// [`ProxyModel::load_state_dict`], but the parameters are constructed
    /// zero-filled (no Box–Muller draws) before the snapshot overwrites
    /// them — the hot path when stateful algorithms (FedProto, Fed-ET)
    /// rebuild a client model from its persisted `(ProxyConfig, StateDict)`
    /// snapshot every round.
    ///
    /// # Errors
    /// Returns an error if the configuration is degenerate or the snapshot
    /// is missing parameters / has mismatched shapes for this configuration.
    pub fn from_state(config: ProxyConfig, state: &StateDict) -> Result<Self> {
        let mut model = Self::zeroed(config)?;
        model.load_state_dict(state)?;
        Ok(model)
    }

    /// Builds the model with every parameter zero-filled (no random draws).
    ///
    /// Parameter storage is leased from the process-wide
    /// [`TensorArena`](mhfl_tensor::TensorArena) (the zero-init RNG makes
    /// every [`Tensor::randn`](mhfl_tensor::Tensor::randn) call resolve to
    /// an arena-leased zero buffer), so rebuilding client models round
    /// after round recycles the previous round's buffers instead of
    /// allocating.
    ///
    /// Used when the parameters will be overwritten wholesale immediately
    /// after construction — e.g. loading an extracted sub-model whose plan
    /// needs the model's [`param_specs`](ProxyModel::param_specs) first —
    /// so the Box–Muller initialisation of [`ProxyModel::new`] would be
    /// thrown away.
    ///
    /// # Errors
    /// Returns an error if the configuration is degenerate.
    pub fn zeroed(config: ProxyConfig) -> Result<Self> {
        Self::build(config, &mut SeededRng::zero_init())
    }

    fn build(config: ProxyConfig, rng: &mut SeededRng) -> Result<Self> {
        if config.num_classes == 0 {
            return Err(NnError::InvalidConfig(
                "num_classes must be positive".into(),
            ));
        }
        if config.width_fraction <= 0.0 || config.depth_fraction <= 0.0 {
            return Err(NnError::InvalidConfig(
                "width/depth fractions must be positive".into(),
            ));
        }
        let dim = config.dim();
        let blocks_count = config.num_blocks();
        let kind = config.block_kind();

        let stem = Stem::new(&config.input, dim, rng)?;
        let mut blocks = Vec::with_capacity(blocks_count);
        for i in 0..blocks_count {
            let mut block_rng = rng.derive(i as u64 + 1);
            blocks.push(ProxyBlock::new(kind, dim, &mut block_rng)?);
        }
        let mut head_rng = rng.derive(1000);
        let head = Linear::new_head(dim, config.num_classes, &mut head_rng);
        let mut aux_heads = Vec::new();
        let mut aux_pools = Vec::new();
        if config.with_aux_heads {
            for i in 0..blocks_count {
                let mut aux_rng = rng.derive(2000 + i as u64);
                aux_heads.push(Linear::new_head(dim, config.num_classes, &mut aux_rng));
                aux_pools.push(Pool::new(&config.input));
            }
        }
        Ok(ProxyModel {
            config,
            stem,
            blocks,
            pool: Pool::new(&config.input),
            head,
            aux_heads,
            aux_pools,
            dim,
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ProxyConfig {
        &self.config
    }

    /// The realised feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of blocks actually instantiated.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of auxiliary classifiers.
    pub fn num_aux_heads(&self) -> usize {
        self.aux_heads.len()
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        num_params_of(self)
    }

    /// Clones all parameters into a [`StateDict`].
    pub fn state_dict(&self) -> StateDict {
        state_dict_of(self, "")
    }

    /// Loads parameters from a state dict (all of the model's parameters must
    /// be present with matching shapes; extra entries are ignored).
    ///
    /// # Errors
    /// Returns an error describing the first missing or mismatched parameter.
    pub fn load_state_dict(&mut self, sd: &StateDict) -> Result<()> {
        mhfl_nn::load_state_dict(self, "", sd)
    }

    /// Parameter metadata (names, shapes, axis roles).
    pub fn param_specs(&self) -> Vec<ParamSpec> {
        param_specs_of(self, "")
    }

    /// Full forward pass returning features, final logits and aux logits.
    ///
    /// # Errors
    /// Returns an error if the input shape does not match the configuration.
    pub fn forward_detailed(&mut self, input: &Tensor, train: bool) -> Result<ForwardOutput> {
        let mut h = self.stem.forward(input, train)?;
        let mut aux_logits = Vec::with_capacity(self.aux_heads.len());
        for (i, block) in self.blocks.iter_mut().enumerate() {
            h = block.forward(&h, train)?;
            if let (Some(aux_head), Some(aux_pool)) =
                (self.aux_heads.get_mut(i), self.aux_pools.get_mut(i))
            {
                let pooled = aux_pool.forward(&h, train)?;
                aux_logits.push(aux_head.forward(&pooled, train)?);
            }
        }
        let features = self.pool.forward(&h, train)?;
        let logits = self.head.forward(&features, train)?;
        Ok(ForwardOutput {
            features,
            logits,
            aux_logits,
        })
    }

    /// Backward pass from gradients on the final logits, optionally combined
    /// with a gradient on the pooled features (prototype regularisation) and
    /// gradients on each auxiliary classifier's logits (self-distillation).
    ///
    /// # Errors
    /// Returns an error if called before [`ProxyModel::forward_detailed`] or
    /// with inconsistent gradient shapes.
    pub fn backward_detailed(
        &mut self,
        grad_logits: &Tensor,
        grad_features: Option<&Tensor>,
        grad_aux: &[Option<Tensor>],
    ) -> Result<()> {
        let mut g_feat = self.head.backward(grad_logits)?;
        if let Some(extra) = grad_features {
            g_feat.axpy(1.0, extra)?;
        }
        let mut g = self.pool.backward(&g_feat)?;
        for i in (0..self.blocks.len()).rev() {
            if let Some(Some(ga)) = grad_aux.get(i) {
                if let (Some(aux_head), Some(aux_pool)) =
                    (self.aux_heads.get_mut(i), self.aux_pools.get_mut(i))
                {
                    let g_aux_feat = aux_head.backward(ga)?;
                    let g_aux_block = aux_pool.backward(&g_aux_feat)?;
                    g.axpy(1.0, &g_aux_block)?;
                }
            }
            g = self.blocks[i].backward(&g)?;
        }
        self.stem.backward(&g)?;
        Ok(())
    }
}

impl Layer for ProxyModel {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        Ok(self.forward_detailed(input, train)?.logits)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.backward_detailed(grad_output, None, &[])?;
        // The gradient w.r.t. raw inputs is rarely useful for the federated
        // algorithms; return an empty placeholder of the right batch size.
        Ok(Tensor::zeros(&[grad_output.dims()[0], 0]))
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        self.stem.visit_params(&p("stem"), f);
        for (i, block) in self.blocks.iter().enumerate() {
            block.visit_params(&p(&format!("block{i}")), f);
        }
        self.head.visit_params(&p("head"), f);
        for (i, aux) in self.aux_heads.iter().enumerate() {
            aux.visit_params(&p(&format!("aux{i}")), f);
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        self.stem.visit_params_mut(&p("stem"), f);
        for (i, block) in self.blocks.iter_mut().enumerate() {
            block.visit_params_mut(&p(&format!("block{i}")), f);
        }
        self.head.visit_params_mut(&p("head"), f);
        for (i, aux) in self.aux_heads.iter_mut().enumerate() {
            aux.visit_params_mut(&p(&format!("aux{i}")), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_nn::loss::cross_entropy;
    use mhfl_nn::{Sgd, SgdConfig};

    fn image_input() -> InputKind {
        InputKind::Image {
            channels: 3,
            height: 8,
            width: 8,
        }
    }

    fn cifar_config(family: ModelFamily) -> ProxyConfig {
        ProxyConfig::for_family(family, image_input(), 10, 7)
    }

    #[test]
    fn forward_shapes_for_all_modalities() {
        // Vision.
        let mut cv = ProxyModel::new(cifar_config(ModelFamily::ResNet18)).unwrap();
        let out = cv
            .forward_detailed(&Tensor::zeros(&[2, 3, 8, 8]), false)
            .unwrap();
        assert_eq!(out.logits.dims(), &[2, 10]);
        assert_eq!(out.features.dims(), &[2, cv.dim()]);

        // Language.
        let nlp_cfg = ProxyConfig::for_family(
            ModelFamily::CustomTransformer,
            InputKind::Tokens {
                vocab: 50,
                seq_len: 6,
            },
            4,
            1,
        );
        let mut nlp = ProxyModel::new(nlp_cfg).unwrap();
        let out = nlp
            .forward_detailed(&Tensor::zeros(&[3, 6]), false)
            .unwrap();
        assert_eq!(out.logits.dims(), &[3, 4]);

        // HAR.
        let har_cfg =
            ProxyConfig::for_family(ModelFamily::HarCnn, InputKind::Features { dim: 12 }, 5, 2);
        let mut har = ProxyModel::new(har_cfg).unwrap();
        let out = har
            .forward_detailed(&Tensor::zeros(&[4, 12]), false)
            .unwrap();
        assert_eq!(out.logits.dims(), &[4, 5]);
    }

    #[test]
    fn width_scaling_changes_parameter_count_but_not_names() {
        let full = ProxyModel::new(cifar_config(ModelFamily::ResNet101)).unwrap();
        let half = ProxyModel::new(cifar_config(ModelFamily::ResNet101).with_width(0.5)).unwrap();
        assert!(half.num_parameters() < full.num_parameters());
        let full_names: Vec<String> = full.param_specs().iter().map(|s| s.name.clone()).collect();
        let half_names: Vec<String> = half.param_specs().iter().map(|s| s.name.clone()).collect();
        assert_eq!(
            full_names, half_names,
            "width scaling keeps parameter names"
        );
    }

    #[test]
    fn depth_scaling_drops_trailing_blocks() {
        let full = ProxyModel::new(cifar_config(ModelFamily::ResNet101)).unwrap();
        let half = ProxyModel::new(cifar_config(ModelFamily::ResNet101).with_depth(0.5)).unwrap();
        assert!(half.num_blocks() < full.num_blocks());
        let half_sd = half.state_dict();
        let full_sd = full.state_dict();
        // Every shallow parameter exists in the deep model with the same shape.
        for (name, tensor) in half_sd.iter() {
            let deep = full_sd.get(name).expect("prefix blocks share names");
            assert_eq!(deep.dims(), tensor.dims());
        }
    }

    #[test]
    fn aux_heads_produce_per_block_logits() {
        let cfg = cifar_config(ModelFamily::ResNet50).with_aux_heads(true);
        let mut model = ProxyModel::new(cfg).unwrap();
        let out = model
            .forward_detailed(&Tensor::zeros(&[2, 3, 8, 8]), true)
            .unwrap();
        assert_eq!(out.aux_logits.len(), model.num_blocks());
        for logits in &out.aux_logits {
            assert_eq!(logits.dims(), &[2, 10]);
        }
        // Backward with aux gradients must not error.
        let grads: Vec<Option<Tensor>> = out
            .aux_logits
            .iter()
            .map(|l| Some(Tensor::ones(l.dims())))
            .collect();
        model
            .backward_detailed(&Tensor::ones(out.logits.dims()), None, &grads)
            .unwrap();
    }

    #[test]
    fn state_dict_round_trips() {
        let model = ProxyModel::new(cifar_config(ModelFamily::MobileNetV2)).unwrap();
        let sd = model.state_dict();
        let mut model2 =
            ProxyModel::new(cifar_config(ModelFamily::MobileNetV2).with_width(1.0)).unwrap();
        model2.load_state_dict(&sd).unwrap();
        assert_eq!(model2.state_dict(), sd);
        // Loading into a different width fails with a shape mismatch.
        let mut half =
            ProxyModel::new(cifar_config(ModelFamily::MobileNetV2).with_width(0.5)).unwrap();
        assert!(half.load_state_dict(&sd).is_err());
        // A fresh init with a different seed differs from sd (sanity that load matters).
        let fresh = ProxyModel::new(ProxyConfig {
            seed: 99,
            ..cifar_config(ModelFamily::MobileNetV2)
        })
        .unwrap();
        assert!(fresh.state_dict().l2_distance_sq(&sd) > 0.0);
    }

    #[test]
    fn proxy_trains_on_separable_data() {
        let cfg =
            ProxyConfig::for_family(ModelFamily::HarCnn, InputKind::Features { dim: 8 }, 2, 3);
        let mut model = ProxyModel::new(cfg).unwrap();
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            grad_clip: Some(5.0),
        });
        let mut rng = SeededRng::new(42);
        // Two Gaussian blobs.
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..32 {
            let class = i % 2;
            let center = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..8 {
                xs.push(rng.normal(center, 0.3));
            }
            labels.push(class);
        }
        let x = Tensor::from_vec(xs, &[32, 8]).unwrap();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            model.zero_grad();
            let out = model.forward_detailed(&x, true).unwrap();
            let (loss, grad) = cross_entropy(&out.logits, &labels).unwrap();
            model.backward_detailed(&grad, None, &[]).unwrap();
            opt.step(&mut model).unwrap();
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.6,
            "training did not reduce loss: {last} vs {first:?}"
        );
    }

    #[test]
    fn from_state_matches_new_plus_load_exactly() {
        for cfg in [
            cifar_config(ModelFamily::ResNet50).with_width(0.5),
            cifar_config(ModelFamily::MobileNetV2).with_aux_heads(true),
            ProxyConfig::for_family(ModelFamily::HarCnn, InputKind::Features { dim: 12 }, 5, 3),
        ] {
            let original = ProxyModel::new(cfg).unwrap();
            let sd = original.state_dict();

            let mut via_load = ProxyModel::new(cfg).unwrap();
            via_load.load_state_dict(&sd).unwrap();
            let mut via_from_state = ProxyModel::from_state(cfg, &sd).unwrap();

            assert_eq!(via_from_state.state_dict(), via_load.state_dict());
            assert_eq!(via_from_state.num_parameters(), via_load.num_parameters());
            // Forward passes agree bit-for-bit.
            let x = match cfg.input {
                InputKind::Image {
                    channels,
                    height,
                    width,
                } => Tensor::ones(&[2, channels, height, width]),
                InputKind::Tokens { seq_len, .. } => Tensor::zeros(&[2, seq_len]),
                InputKind::Features { dim } => Tensor::ones(&[2, dim]),
            };
            let a = via_load.forward_detailed(&x, false).unwrap();
            let b = via_from_state.forward_detailed(&x, false).unwrap();
            assert_eq!(a.logits.as_slice(), b.logits.as_slice());
            assert_eq!(a.features.as_slice(), b.features.as_slice());
        }
    }

    #[test]
    fn from_state_rejects_mismatched_snapshots() {
        let full = ProxyModel::new(cifar_config(ModelFamily::ResNet34)).unwrap();
        let sd = full.state_dict();
        let half_cfg = cifar_config(ModelFamily::ResNet34).with_width(0.5);
        assert!(ProxyModel::from_state(half_cfg, &sd).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = cifar_config(ModelFamily::ResNet18);
        assert!(ProxyModel::new(ProxyConfig {
            num_classes: 0,
            ..cfg
        })
        .is_err());
        assert!(ProxyModel::new(ProxyConfig {
            width_fraction: 0.0,
            ..cfg
        })
        .is_err());
        assert!(ProxyModel::new(ProxyConfig {
            depth_fraction: -1.0,
            ..cfg
        })
        .is_err());
    }

    #[test]
    fn topology_families_have_distinct_shapes() {
        let a = ProxyModel::new(cifar_config(ModelFamily::ResNet18)).unwrap();
        let b = ProxyModel::new(cifar_config(ModelFamily::ResNet101)).unwrap();
        assert_ne!(a.num_parameters(), b.num_parameters());
        assert_ne!(a.num_blocks(), b.num_blocks());
    }
}
