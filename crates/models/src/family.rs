//! Model families, input kinds and heterogeneity levels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three heterogeneity levels PracMHBench evaluates (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityLevel {
    /// Same topology, different channel counts per layer.
    Width,
    /// Same topology, different number of layers.
    Depth,
    /// Entirely different architectures per client.
    Topology,
}

impl fmt::Display for HeterogeneityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeterogeneityLevel::Width => write!(f, "width"),
            HeterogeneityLevel::Depth => write!(f, "depth"),
            HeterogeneityLevel::Topology => write!(f, "topology"),
        }
    }
}

/// The kind of input a model consumes, which determines the stem of the
/// proxy model and the shape of the synthetic data task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// Images: `[batch, channels, height, width]`.
    Image {
        /// Number of input channels.
        channels: usize,
        /// Image height in pixels.
        height: usize,
        /// Image width in pixels.
        width: usize,
    },
    /// Token sequences: `[batch, seq_len]` of ids drawn from a vocabulary.
    Tokens {
        /// Vocabulary size.
        vocab: usize,
        /// Sequence length.
        seq_len: usize,
    },
    /// Flat feature vectors (sensor windows): `[batch, dim]`.
    Features {
        /// Feature dimension.
        dim: usize,
    },
}

impl InputKind {
    /// Number of scalar values per sample.
    pub fn numel(&self) -> usize {
        match *self {
            InputKind::Image {
                channels,
                height,
                width,
            } => channels * height * width,
            InputKind::Tokens { seq_len, .. } => seq_len,
            InputKind::Features { dim } => dim,
        }
    }
}

/// The concrete architectures named in the paper (Table II): the ResNet and
/// MobileNet families for CV, the ALBERT family and a custom transformer for
/// NLP, and a customised CNN for HAR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ModelFamily {
    ResNet18,
    ResNet34,
    ResNet50,
    ResNet101,
    MobileNetV2,
    MobileNetV3Small,
    MobileNetV3Large,
    AlbertBase,
    AlbertLarge,
    AlbertXxlarge,
    CustomTransformer,
    HarCnn,
}

impl ModelFamily {
    /// All families known to the platform.
    pub const ALL: [ModelFamily; 12] = [
        ModelFamily::ResNet18,
        ModelFamily::ResNet34,
        ModelFamily::ResNet50,
        ModelFamily::ResNet101,
        ModelFamily::MobileNetV2,
        ModelFamily::MobileNetV3Small,
        ModelFamily::MobileNetV3Large,
        ModelFamily::AlbertBase,
        ModelFamily::AlbertLarge,
        ModelFamily::AlbertXxlarge,
        ModelFamily::CustomTransformer,
        ModelFamily::HarCnn,
    ];

    /// The CV "ResNet family" used for topology-heterogeneous experiments.
    pub const RESNET_FAMILY: [ModelFamily; 4] = [
        ModelFamily::ResNet18,
        ModelFamily::ResNet34,
        ModelFamily::ResNet50,
        ModelFamily::ResNet101,
    ];

    /// The CV "MobileNet family" used for topology-heterogeneous experiments.
    pub const MOBILENET_FAMILY: [ModelFamily; 3] = [
        ModelFamily::MobileNetV2,
        ModelFamily::MobileNetV3Small,
        ModelFamily::MobileNetV3Large,
    ];

    /// The NLP "ALBERT family" used for topology-heterogeneous experiments.
    pub const ALBERT_FAMILY: [ModelFamily; 3] = [
        ModelFamily::AlbertBase,
        ModelFamily::AlbertLarge,
        ModelFamily::AlbertXxlarge,
    ];

    /// Returns `true` if the family processes images.
    pub fn is_vision(&self) -> bool {
        matches!(
            self,
            ModelFamily::ResNet18
                | ModelFamily::ResNet34
                | ModelFamily::ResNet50
                | ModelFamily::ResNet101
                | ModelFamily::MobileNetV2
                | ModelFamily::MobileNetV3Small
                | ModelFamily::MobileNetV3Large
        )
    }

    /// Returns `true` if the family processes token sequences.
    pub fn is_language(&self) -> bool {
        matches!(
            self,
            ModelFamily::AlbertBase
                | ModelFamily::AlbertLarge
                | ModelFamily::AlbertXxlarge
                | ModelFamily::CustomTransformer
        )
    }

    /// Returns `true` if the family processes sensor feature windows.
    pub fn is_har(&self) -> bool {
        matches!(self, ModelFamily::HarCnn)
    }

    /// Human-readable name matching the paper's notation.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelFamily::ResNet18 => "ResNet-18",
            ModelFamily::ResNet34 => "ResNet-34",
            ModelFamily::ResNet50 => "ResNet-50",
            ModelFamily::ResNet101 => "ResNet-101",
            ModelFamily::MobileNetV2 => "MobileNetV2",
            ModelFamily::MobileNetV3Small => "MobileNetV3-small",
            ModelFamily::MobileNetV3Large => "MobileNetV3-large",
            ModelFamily::AlbertBase => "ALBERT-base",
            ModelFamily::AlbertLarge => "ALBERT-large",
            ModelFamily::AlbertXxlarge => "ALBERT-xxlarge",
            ModelFamily::CustomTransformer => "Custom Transformer",
            ModelFamily::HarCnn => "HAR CNN",
        }
    }
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_groupings_are_consistent() {
        for fam in ModelFamily::RESNET_FAMILY {
            assert!(fam.is_vision());
        }
        for fam in ModelFamily::ALBERT_FAMILY {
            assert!(fam.is_language());
        }
        assert!(ModelFamily::HarCnn.is_har());
        // Exactly one modality per family.
        for fam in ModelFamily::ALL {
            let modalities = [fam.is_vision(), fam.is_language(), fam.is_har()]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(modalities, 1, "{fam} belongs to exactly one modality");
        }
    }

    #[test]
    fn input_kind_numel() {
        assert_eq!(
            InputKind::Image {
                channels: 3,
                height: 8,
                width: 8
            }
            .numel(),
            192
        );
        assert_eq!(
            InputKind::Tokens {
                vocab: 100,
                seq_len: 16
            }
            .numel(),
            16
        );
        assert_eq!(InputKind::Features { dim: 12 }.numel(), 12);
    }

    #[test]
    fn display_names_cover_all() {
        for fam in ModelFamily::ALL {
            assert!(!fam.display_name().is_empty());
        }
        assert_eq!(HeterogeneityLevel::Width.to_string(), "width");
    }
}
