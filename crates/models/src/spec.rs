//! Analytical architecture descriptions.
//!
//! These closed-form models of the paper's real architectures drive the
//! device cost model: they answer "how many parameters / FLOPs / bytes of
//! training memory does ResNet-101 at ×0.5 width have" without ever
//! materialising the network. The numbers are calibrated to match the
//! published sizes of the full models (ResNet-101 ≈ 44 M parameters,
//! ALBERT-base ≈ 12 M, MobileNetV2 ≈ 3 M, ...), which is what Table I and
//! Fig. 3 of the paper report.

use serde::{Deserialize, Serialize};

use crate::{scale_depth, scale_width, ModelFamily};

/// One layer of an analytical architecture description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum LayerDesc {
    /// 2-D convolution producing a `spatial × spatial` output map.
    Conv {
        c_in: usize,
        c_out: usize,
        kernel: usize,
        spatial: usize,
        depth_unit: bool,
        shared_group: Option<u8>,
    },
    /// Fully-connected layer.
    Dense {
        d_in: usize,
        d_out: usize,
        depth_unit: bool,
        shared_group: Option<u8>,
    },
    /// Token embedding table.
    Embedding { vocab: usize, dim: usize },
    /// Self-attention over a sequence.
    Attention {
        dim: usize,
        seq: usize,
        depth_unit: bool,
        shared_group: Option<u8>,
    },
    /// Final classifier (its output dimension never scales with width).
    Classifier { d_in: usize, classes: usize },
}

/// System statistics of a model at a particular width/depth configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ModelStats {
    /// Number of trainable parameters.
    pub params: u64,
    /// Forward-pass floating point operations per sample.
    pub flops_per_sample: u64,
    /// Bytes occupied by the parameters (f32).
    pub weight_bytes: u64,
    /// Bytes of activations stored per sample during training.
    pub activation_bytes_per_sample: u64,
}

impl ModelStats {
    /// Parameters in millions (the unit used by the paper's Table I).
    pub fn params_millions(&self) -> f64 {
        self.params as f64 / 1.0e6
    }

    /// Forward GFLOPs per sample (the unit used by Fig. 3).
    pub fn gflops(&self) -> f64 {
        self.flops_per_sample as f64 / 1.0e9
    }

    /// Training FLOPs per sample: forward plus roughly 2× for the backward pass.
    pub fn training_flops_per_sample(&self) -> u64 {
        self.flops_per_sample * 3
    }

    /// Estimated peak training memory in bytes for a given batch size:
    /// parameters + gradients + optimiser state, plus stored activations.
    pub fn training_memory_bytes(&self, batch_size: usize) -> u64 {
        self.weight_bytes * 3 + self.activation_bytes_per_sample * batch_size as u64 * 2
    }

    /// Serialized payload size when a full copy of the parameters is
    /// uploaded or downloaded (f32, no compression).
    pub fn payload_bytes(&self) -> u64 {
        self.weight_bytes
    }
}

/// An analytical description of one [`ModelFamily`].
///
/// ```
/// use mhfl_models::{ModelFamily, ModelSpec};
/// let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
/// let full = spec.stats(1.0, 1.0);
/// let half = spec.stats(0.5, 1.0);
/// assert!(full.params_millions() > 38.0 && full.params_millions() < 50.0);
/// assert!(half.params < full.params / 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    family: ModelFamily,
    num_classes: usize,
}

impl ModelSpec {
    /// Creates a spec for a family with the given number of output classes.
    pub fn new(family: ModelFamily, num_classes: usize) -> Self {
        ModelSpec {
            family,
            num_classes,
        }
    }

    /// The described family.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// The number of classes the classifier produces.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Builds the layer list at a width fraction (depth still full).
    fn layers_at(&self, width: f64) -> Vec<LayerDesc> {
        let w = |c: usize| scale_width(c, width);
        let classes = self.num_classes;
        match self.family {
            ModelFamily::ResNet18 => resnet_layers(&[2, 2, 2, 2], 1, w, classes),
            ModelFamily::ResNet34 => resnet_layers(&[3, 4, 6, 3], 1, w, classes),
            ModelFamily::ResNet50 => resnet_layers(&[3, 4, 6, 3], 4, w, classes),
            ModelFamily::ResNet101 => resnet_layers(&[3, 4, 23, 3], 4, w, classes),
            ModelFamily::MobileNetV2 => mobilenet_layers(&MOBILENET_V2_STAGES, 1280, w, classes),
            ModelFamily::MobileNetV3Small => {
                mobilenet_layers(&MOBILENET_V3_SMALL_STAGES, 1024, w, classes)
            }
            ModelFamily::MobileNetV3Large => {
                mobilenet_layers(&MOBILENET_V3_LARGE_STAGES, 1280, w, classes)
            }
            ModelFamily::AlbertBase => albert_layers(30_000, 128, 768, 12, true, w, classes),
            ModelFamily::AlbertLarge => albert_layers(30_000, 128, 1024, 24, true, w, classes),
            ModelFamily::AlbertXxlarge => albert_layers(30_000, 128, 4096, 12, true, w, classes),
            ModelFamily::CustomTransformer => albert_layers(20_000, 128, 256, 4, false, w, classes),
            ModelFamily::HarCnn => har_cnn_layers(w, classes),
        }
    }

    /// Computes the statistics of the architecture at the given width and
    /// depth fractions (both in `(0, 1]`; values are clamped to sane ranges).
    pub fn stats(&self, width_fraction: f64, depth_fraction: f64) -> ModelStats {
        let width = width_fraction.clamp(0.05, 1.0);
        let depth = depth_fraction.clamp(0.05, 1.0);
        let layers = self.layers_at(width);

        // Depth scaling keeps the first `k` of the depth-unit layers.
        let depth_units: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| is_depth_unit(l))
            .map(|(i, _)| i)
            .collect();
        let keep = scale_depth(depth_units.len().max(1), depth);
        let dropped: std::collections::HashSet<usize> =
            depth_units.iter().skip(keep).copied().collect();

        let mut stats = ModelStats::default();
        let mut counted_groups: std::collections::HashSet<u8> = std::collections::HashSet::new();
        for (i, layer) in layers.iter().enumerate() {
            if dropped.contains(&i) {
                continue;
            }
            let (params, flops, act) = layer_cost(layer);
            let count_params = match shared_group(layer) {
                Some(g) => counted_groups.insert(g),
                None => true,
            };
            if count_params {
                stats.params += params;
            }
            stats.flops_per_sample += flops;
            stats.activation_bytes_per_sample += act;
        }
        stats.weight_bytes = stats.params * 4;
        stats
    }
}

fn is_depth_unit(layer: &LayerDesc) -> bool {
    matches!(
        layer,
        LayerDesc::Conv {
            depth_unit: true,
            ..
        } | LayerDesc::Dense {
            depth_unit: true,
            ..
        } | LayerDesc::Attention {
            depth_unit: true,
            ..
        }
    )
}

fn shared_group(layer: &LayerDesc) -> Option<u8> {
    match layer {
        LayerDesc::Conv { shared_group, .. }
        | LayerDesc::Dense { shared_group, .. }
        | LayerDesc::Attention { shared_group, .. } => *shared_group,
        _ => None,
    }
}

/// Returns `(params, forward flops, activation bytes)` for one layer.
fn layer_cost(layer: &LayerDesc) -> (u64, u64, u64) {
    match *layer {
        LayerDesc::Conv {
            c_in,
            c_out,
            kernel,
            spatial,
            ..
        } => {
            let params = (c_in * c_out * kernel * kernel + c_out) as u64;
            let flops = 2 * (c_in * c_out * kernel * kernel * spatial * spatial) as u64;
            let act = (c_out * spatial * spatial * 4) as u64;
            (params, flops, act)
        }
        LayerDesc::Dense { d_in, d_out, .. } => {
            let params = (d_in * d_out + d_out) as u64;
            let flops = 2 * (d_in * d_out) as u64;
            let act = (d_out * 4) as u64;
            (params, flops, act)
        }
        LayerDesc::Embedding { vocab, dim } => {
            let params = (vocab * dim) as u64;
            let flops = dim as u64;
            let act = (dim * 4) as u64;
            (params, flops, act)
        }
        LayerDesc::Attention { dim, seq, .. } => {
            let params = (4 * dim * dim) as u64;
            let flops = (8 * seq * dim * dim + 4 * seq * seq * dim) as u64;
            let act = (3 * seq * dim * 4 + seq * seq * 4) as u64;
            (params, flops, act)
        }
        LayerDesc::Classifier { d_in, classes } => {
            let params = (d_in * classes + classes) as u64;
            let flops = 2 * (d_in * classes) as u64;
            let act = (classes * 4) as u64;
            (params, flops, act)
        }
    }
}

/// CIFAR-style ResNet: 3×3 stem, four stages at 32/16/8/4 spatial resolution.
fn resnet_layers(
    blocks: &[usize; 4],
    expansion: usize,
    w: impl Fn(usize) -> usize,
    classes: usize,
) -> Vec<LayerDesc> {
    let stage_channels = [64usize, 128, 256, 512];
    let spatials = [32usize, 16, 8, 4];
    let mut layers = vec![LayerDesc::Conv {
        c_in: 3,
        c_out: w(64),
        kernel: 3,
        spatial: 32,
        depth_unit: false,
        shared_group: None,
    }];
    let mut prev = w(64);
    for (stage, (&count, (&base_c, &spatial))) in blocks
        .iter()
        .zip(stage_channels.iter().zip(spatials.iter()))
        .enumerate()
    {
        let c = w(base_c);
        let c_out = c * expansion;
        for b in 0..count {
            let c_in = if b == 0 { prev } else { c_out };
            if expansion == 1 {
                // Basic block: two 3×3 convolutions.
                layers.push(LayerDesc::Conv {
                    c_in,
                    c_out: c,
                    kernel: 3,
                    spatial,
                    depth_unit: true,
                    shared_group: None,
                });
                layers.push(LayerDesc::Conv {
                    c_in: c,
                    c_out: c,
                    kernel: 3,
                    spatial,
                    depth_unit: true,
                    shared_group: None,
                });
            } else {
                // Bottleneck block: 1×1 reduce, 3×3, 1×1 expand.
                layers.push(LayerDesc::Conv {
                    c_in,
                    c_out: c,
                    kernel: 1,
                    spatial,
                    depth_unit: true,
                    shared_group: None,
                });
                layers.push(LayerDesc::Conv {
                    c_in: c,
                    c_out: c,
                    kernel: 3,
                    spatial,
                    depth_unit: true,
                    shared_group: None,
                });
                layers.push(LayerDesc::Conv {
                    c_in: c,
                    c_out,
                    kernel: 1,
                    spatial,
                    depth_unit: true,
                    shared_group: None,
                });
            }
            if b == 0 && c_in != c_out {
                // Projection shortcut.
                layers.push(LayerDesc::Conv {
                    c_in,
                    c_out,
                    kernel: 1,
                    spatial,
                    depth_unit: false,
                    shared_group: None,
                });
            }
        }
        prev = c_out;
        let _ = stage;
    }
    layers.push(LayerDesc::Classifier {
        d_in: prev,
        classes,
    });
    layers
}

/// `(expansion, channels, repeats, spatial)` stages of the MobileNet variants.
const MOBILENET_V2_STAGES: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 32),
    (6, 24, 2, 16),
    (6, 32, 3, 16),
    (6, 64, 4, 8),
    (6, 96, 3, 8),
    (6, 160, 3, 4),
    (6, 320, 1, 4),
];

const MOBILENET_V3_SMALL_STAGES: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 16),
    (4, 24, 2, 8),
    (4, 40, 3, 8),
    (6, 48, 2, 4),
    (6, 96, 3, 4),
    (6, 96, 1, 4),
    (6, 96, 1, 4),
];

const MOBILENET_V3_LARGE_STAGES: [(usize, usize, usize, usize); 7] = [
    (1, 16, 2, 32),
    (4, 24, 2, 16),
    (4, 40, 3, 16),
    (6, 80, 4, 8),
    (6, 112, 2, 8),
    (6, 160, 3, 4),
    (6, 160, 1, 4),
];

/// MobileNet-style inverted residual stack.
fn mobilenet_layers(
    stages: &[(usize, usize, usize, usize)],
    head_dim: usize,
    w: impl Fn(usize) -> usize,
    classes: usize,
) -> Vec<LayerDesc> {
    let mut layers = vec![LayerDesc::Conv {
        c_in: 3,
        c_out: w(32),
        kernel: 3,
        spatial: 32,
        depth_unit: false,
        shared_group: None,
    }];
    let mut prev = w(32);
    for &(expansion, channels, repeats, spatial) in stages {
        let c = w(channels);
        for r in 0..repeats {
            let c_in = if r == 0 { prev } else { c };
            let hidden = c_in * expansion;
            // Expand (1×1), depthwise (3×3, cost ≈ hidden·k², modelled with c_in=1), project (1×1).
            layers.push(LayerDesc::Conv {
                c_in,
                c_out: hidden,
                kernel: 1,
                spatial,
                depth_unit: true,
                shared_group: None,
            });
            layers.push(LayerDesc::Conv {
                c_in: 1,
                c_out: hidden,
                kernel: 3,
                spatial,
                depth_unit: true,
                shared_group: None,
            });
            layers.push(LayerDesc::Conv {
                c_in: hidden,
                c_out: c,
                kernel: 1,
                spatial,
                depth_unit: true,
                shared_group: None,
            });
        }
        prev = c;
    }
    let head = w(head_dim);
    layers.push(LayerDesc::Conv {
        c_in: prev,
        c_out: head,
        kernel: 1,
        spatial: 4,
        depth_unit: false,
        shared_group: None,
    });
    layers.push(LayerDesc::Classifier {
        d_in: head,
        classes,
    });
    layers
}

/// ALBERT / transformer encoder: embedding (+ factorised projection), a stack
/// of attention + FFN layers (optionally parameter-shared), classifier.
fn albert_layers(
    vocab: usize,
    emb_dim: usize,
    hidden: usize,
    num_layers: usize,
    share_params: bool,
    w: impl Fn(usize) -> usize,
    classes: usize,
) -> Vec<LayerDesc> {
    let seq = 64usize;
    let h = w(hidden);
    let e = w(emb_dim);
    let mut layers = vec![
        LayerDesc::Embedding { vocab, dim: e },
        LayerDesc::Dense {
            d_in: e,
            d_out: h,
            depth_unit: false,
            shared_group: None,
        },
    ];
    for layer_idx in 0..num_layers {
        let group = if share_params { Some(1u8) } else { None };
        let group_ffn = if share_params { Some(2u8) } else { None };
        let _ = layer_idx;
        layers.push(LayerDesc::Attention {
            dim: h,
            seq,
            depth_unit: true,
            shared_group: group,
        });
        layers.push(LayerDesc::Dense {
            d_in: h,
            d_out: 4 * h,
            depth_unit: true,
            shared_group: group_ffn,
        });
        layers.push(LayerDesc::Dense {
            d_in: 4 * h,
            d_out: h,
            depth_unit: true,
            shared_group: group_ffn.map(|g| g + 1),
        });
    }
    layers.push(LayerDesc::Classifier { d_in: h, classes });
    layers
}

/// The customised HAR CNN from the paper's HAR tasks: a small feature
/// extractor over flattened sensor windows.
fn har_cnn_layers(w: impl Fn(usize) -> usize, classes: usize) -> Vec<LayerDesc> {
    let input_dim = 900usize; // 9 channels × 100-sample window
    let c1 = w(196);
    let c2 = w(196);
    let c3 = w(128);
    vec![
        LayerDesc::Dense {
            d_in: input_dim,
            d_out: c1,
            depth_unit: false,
            shared_group: None,
        },
        LayerDesc::Dense {
            d_in: c1,
            d_out: c2,
            depth_unit: true,
            shared_group: None,
        },
        LayerDesc::Dense {
            d_in: c2,
            d_out: c2,
            depth_unit: true,
            shared_group: None,
        },
        LayerDesc::Dense {
            d_in: c2,
            d_out: c3,
            depth_unit: true,
            shared_group: None,
        },
        LayerDesc::Classifier { d_in: c3, classes },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet101_full_size_matches_published_ballpark() {
        let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
        let stats = spec.stats(1.0, 1.0);
        let m = stats.params_millions();
        assert!(m > 38.0 && m < 50.0, "ResNet-101 ≈ 44 M params, got {m}");
    }

    #[test]
    fn resnet101_half_width_matches_table1() {
        // Paper Table I: ×0.5 ResNet-101 has ≈ 10.3–10.8 M parameters.
        let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
        let half = spec.stats(0.5, 1.0);
        let m = half.params_millions();
        assert!(
            m > 8.0 && m < 14.0,
            "×0.5 ResNet-101 ≈ 10.5 M params, got {m}"
        );
    }

    #[test]
    fn albert_family_ordering() {
        let base = ModelSpec::new(ModelFamily::AlbertBase, 10).stats(1.0, 1.0);
        let large = ModelSpec::new(ModelFamily::AlbertLarge, 10).stats(1.0, 1.0);
        let xxl = ModelSpec::new(ModelFamily::AlbertXxlarge, 10).stats(1.0, 1.0);
        assert!(base.params < large.params && large.params < xxl.params);
        // ALBERT-base ≈ 12 M.
        let m = base.params_millions();
        assert!(m > 8.0 && m < 16.0, "ALBERT-base ≈ 12 M params, got {m}");
    }

    #[test]
    fn albert_depth_scaling_keeps_params_but_cuts_flops() {
        // ALBERT shares parameters across layers, so depth scaling should not
        // change the parameter count much but should cut compute.
        let spec = ModelSpec::new(ModelFamily::AlbertBase, 10);
        let full = spec.stats(1.0, 1.0);
        let half = spec.stats(1.0, 0.5);
        assert_eq!(full.params, half.params);
        assert!(half.flops_per_sample < full.flops_per_sample);
    }

    #[test]
    fn width_scaling_is_roughly_quadratic() {
        let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
        let full = spec.stats(1.0, 1.0).params as f64;
        let half = spec.stats(0.5, 1.0).params as f64;
        let ratio = full / half;
        assert!(
            ratio > 3.0 && ratio < 5.0,
            "quadratic shrinkage expected, ratio {ratio}"
        );
    }

    #[test]
    fn depth_scaling_reduces_params_for_non_shared_models() {
        let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
        let full = spec.stats(1.0, 1.0);
        let half = spec.stats(1.0, 0.5);
        let quarter = spec.stats(1.0, 0.25);
        assert!(half.params < full.params);
        assert!(quarter.params < half.params);
        assert!(quarter.flops_per_sample < half.flops_per_sample);
    }

    #[test]
    fn mobilenets_are_much_smaller_than_resnets() {
        let r = ModelSpec::new(ModelFamily::ResNet50, 10).stats(1.0, 1.0);
        let m = ModelSpec::new(ModelFamily::MobileNetV2, 10).stats(1.0, 1.0);
        assert!(m.params * 4 < r.params);
        let small = ModelSpec::new(ModelFamily::MobileNetV3Small, 10).stats(1.0, 1.0);
        let large = ModelSpec::new(ModelFamily::MobileNetV3Large, 10).stats(1.0, 1.0);
        assert!(small.params < large.params);
    }

    #[test]
    fn training_memory_grows_with_batch_size() {
        let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
        let s = spec.stats(1.0, 1.0);
        assert!(s.training_memory_bytes(16) > s.training_memory_bytes(1));
        assert!(s.training_memory_bytes(1) > s.weight_bytes);
    }

    #[test]
    fn resnet_family_is_monotone_in_depth_label() {
        let sizes: Vec<u64> = ModelFamily::RESNET_FAMILY
            .iter()
            .map(|f| ModelSpec::new(*f, 100).stats(1.0, 1.0).params)
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "R18 < R34 < R50 < R101: {sizes:?}"
        );
    }

    #[test]
    fn har_cnn_is_tiny() {
        let s = ModelSpec::new(ModelFamily::HarCnn, 5).stats(1.0, 1.0);
        assert!(s.params_millions() < 1.0);
    }

    #[test]
    fn stats_are_deterministic_and_clamped() {
        let spec = ModelSpec::new(ModelFamily::ResNet18, 10);
        assert_eq!(spec.stats(0.5, 0.5), spec.stats(0.5, 0.5));
        // Out-of-range fractions are clamped rather than panicking.
        let tiny = spec.stats(0.0, 0.0);
        assert!(tiny.params > 0);
        let over = spec.stats(2.0, 2.0);
        assert_eq!(over, spec.stats(1.0, 1.0));
    }
}
