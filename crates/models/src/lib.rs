//! # mhfl-models
//!
//! Model families for the PracMHBench reproduction, in two complementary
//! representations:
//!
//! * **Analytical specs** ([`ModelSpec`], [`ModelFamily`]): closed-form
//!   descriptions of the real architectures the paper benchmarks (ResNet,
//!   MobileNet, ALBERT, a custom transformer and a HAR CNN). They compute
//!   parameter counts, forward FLOPs and training memory at any width and
//!   depth fraction, and feed the device cost model used by the practical
//!   constraint cases (Table I, Table III, Fig. 3 of the paper).
//!
//! * **Trainable proxies** ([`ProxyModel`], [`ProxyConfig`]): small
//!   from-scratch networks with the same *structural handles* — named
//!   parameters, width-scalable channels, stackable depth blocks, optional
//!   auxiliary classifiers, distinct topologies per family — that the MHFL
//!   algorithms actually train during simulation. The paper's algorithms
//!   only manipulate structure (channel slices, block prefixes, logits and
//!   prototypes), so exercising them on proxies preserves the comparisons
//!   while staying laptop-fast.
//!
//! The width/depth scaling rules are shared between the two representations
//! through [`scale_width`] and [`scale_depth`], so a client whose analytical
//! model is "ResNet-101 at ×0.5 width" trains a proxy that is also at ×0.5
//! width.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod family;
mod method;
mod proxy;
mod spec;

pub use blocks::{BlockKind, ProxyBlock};
pub use family::{HeterogeneityLevel, InputKind, ModelFamily};
pub use method::MhflMethod;
pub use proxy::{ForwardOutput, ProxyConfig, ProxyModel};
pub use spec::{ModelSpec, ModelStats};

/// Scales a channel/feature count by a width fraction, never dropping below
/// a minimum of 2 channels (so normalisation and attention stay well-defined).
pub fn scale_width(base: usize, fraction: f64) -> usize {
    ((base as f64 * fraction).round() as usize).max(2)
}

/// Scales a block count by a depth fraction, never dropping below one block.
pub fn scale_depth(base: usize, fraction: f64) -> usize {
    ((base as f64 * fraction).round() as usize).clamp(1, base.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_scaling_rounds_and_clamps() {
        assert_eq!(scale_width(64, 1.0), 64);
        assert_eq!(scale_width(64, 0.5), 32);
        assert_eq!(scale_width(64, 0.25), 16);
        assert_eq!(scale_width(3, 0.25), 2);
        assert_eq!(scale_width(10, 0.75), 8);
    }

    #[test]
    fn depth_scaling_rounds_and_clamps() {
        assert_eq!(scale_depth(8, 1.0), 8);
        assert_eq!(scale_depth(8, 0.5), 4);
        assert_eq!(scale_depth(8, 0.25), 2);
        assert_eq!(scale_depth(2, 0.1), 1);
        assert_eq!(scale_depth(8, 2.0), 8, "cannot exceed the full depth");
    }
}
