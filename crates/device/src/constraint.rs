//! The practical device-constraint cases (paper §IV).

use mhfl_models::MhflMethod;
use mhfl_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::{
    CostModel, DeviceCapability, DeviceProfile, ImaPopulation, ModelPool, PoolEntry, RoundCost,
};

/// A practical resource-constraint case under which MHFL is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstraintCase {
    /// Computation-limited MHFL (Definition IV.1): every client must finish
    /// local training within the same deadline, so slower devices get
    /// smaller models.
    Computation {
        /// Per-round local-training deadline in seconds.
        deadline_secs: f64,
    },
    /// Communication-limited MHFL (Definition IV.2): every client must
    /// complete its upload/download within the same time budget.
    Communication {
        /// Per-round communication budget in seconds (the paper uses 200 s).
        budget_secs: f64,
    },
    /// Memory-limited MHFL (Definition IV.3): the model must fit in the
    /// client device's training memory.
    Memory,
    /// A combination of the above (paper Fig. 7 evaluates Mem+Comm and
    /// Mem+Comm+Comp).
    Combined {
        /// Optional training deadline in seconds.
        deadline_secs: Option<f64>,
        /// Optional communication budget in seconds.
        comm_budget_secs: Option<f64>,
        /// Whether the memory constraint is active.
        memory: bool,
    },
}

impl ConstraintCase {
    /// The Mem+Comm combination from Fig. 7.
    pub fn memory_plus_communication(comm_budget_secs: f64) -> Self {
        ConstraintCase::Combined {
            deadline_secs: None,
            comm_budget_secs: Some(comm_budget_secs),
            memory: true,
        }
    }

    /// The Mem+Comm+Comp combination from Fig. 7.
    pub fn all_combined(deadline_secs: f64, comm_budget_secs: f64) -> Self {
        ConstraintCase::Combined {
            deadline_secs: Some(deadline_secs),
            comm_budget_secs: Some(comm_budget_secs),
            memory: true,
        }
    }

    /// Short name used in tables and figures.
    pub fn label(&self) -> String {
        match self {
            ConstraintCase::Computation { .. } => "Comp".to_string(),
            ConstraintCase::Communication { .. } => "Comm".to_string(),
            ConstraintCase::Memory => "Mem".to_string(),
            ConstraintCase::Combined {
                deadline_secs,
                comm_budget_secs,
                memory,
            } => {
                let mut parts = Vec::new();
                if *memory {
                    parts.push("Mem");
                }
                if comm_budget_secs.is_some() {
                    parts.push("Comm");
                }
                if deadline_secs.is_some() {
                    parts.push("Comp");
                }
                parts.join("+")
            }
        }
    }

    /// Builds the per-client device population appropriate for this case.
    ///
    /// * Computation/communication-limited cases draw from the IMA-like
    ///   smartphone population.
    /// * The memory-limited case samples the three device classes of
    ///   Table III (16 GB / 4 GB / CPU-only) with proportions following the
    ///   real-world RAM distribution the paper cites (roughly 25 % high-end,
    ///   50 % mid-range, 25 % low-end).
    /// * Combined cases use the IMA population (which carries memory tiers).
    pub fn build_population(&self, num_clients: usize, seed: u64) -> Vec<DeviceCapability> {
        match self {
            ConstraintCase::Memory => {
                let classes = DeviceProfile::memory_classes();
                let weights = [0.25f64, 0.50, 0.25];
                let mut rng = SeededRng::new(seed);
                (0..num_clients)
                    .map(|_| DeviceCapability::from(&classes[rng.weighted_index(&weights)]))
                    .collect()
            }
            _ => {
                let pop = ImaPopulation::generate(num_clients.max(1), seed);
                (0..num_clients).map(|i| pop.device_for_client(i)).collect()
            }
        }
    }

    /// Derives the device of a single client from `(seed, client_id)` alone
    /// — the lazy counterpart of
    /// [`build_population`](ConstraintCase::build_population) for
    /// populations too large to materialise.
    ///
    /// Per-client derivations use their own derived RNG streams, so they are
    /// order-free; the marginal distributions match the eager builder (the
    /// Table III memory classes for [`ConstraintCase::Memory`], the IMA-like
    /// population otherwise), but the eager builder consumes one sequential
    /// stream across the population, so eager and lazy populations of the
    /// same seed are distinct by construction.
    pub fn derive_device(&self, seed: u64, client_id: usize) -> DeviceCapability {
        match self {
            ConstraintCase::Memory => {
                let classes = DeviceProfile::memory_classes();
                let weights = [0.25f64, 0.50, 0.25];
                let mut rng = SeededRng::new(seed).derive(client_id as u64);
                DeviceCapability::from(&classes[rng.weighted_index(&weights)])
            }
            _ => ImaPopulation::device_at(seed, client_id),
        }
    }

    /// Assigns one client the largest model from the pool its device can
    /// handle under this constraint — the shared per-device body of
    /// [`assign_clients`](ConstraintCase::assign_clients), exposed so lazy
    /// populations can derive a single assignment on demand.
    pub fn assign_client(
        &self,
        pool: &ModelPool,
        method: MhflMethod,
        device: &DeviceCapability,
        cost_model: &CostModel,
        client_id: usize,
    ) -> ClientAssignment {
        let entry = pool
            .select_largest_feasible(method, |e| {
                let cost = cost_model.round_cost(&e.stats, method, device);
                self.is_feasible(&cost, device)
            })
            .expect("pool contains at least one entry per method");
        let cost = cost_model.round_cost(&entry.stats, method, device);
        ClientAssignment {
            client_id,
            device: *device,
            entry,
            cost,
        }
    }

    /// Whether a model with per-round cost `cost` is feasible on `device`
    /// under this constraint.
    pub fn is_feasible(&self, cost: &RoundCost, device: &DeviceCapability) -> bool {
        match self {
            ConstraintCase::Computation { deadline_secs } => cost.train_time_secs <= *deadline_secs,
            ConstraintCase::Communication { budget_secs } => cost.comm_time_secs <= *budget_secs,
            ConstraintCase::Memory => cost.memory_bytes <= device.memory_bytes,
            ConstraintCase::Combined {
                deadline_secs,
                comm_budget_secs,
                memory,
            } => {
                deadline_secs.is_none_or(|d| cost.train_time_secs <= d)
                    && comm_budget_secs.is_none_or(|b| cost.comm_time_secs <= b)
                    && (!memory || cost.memory_bytes <= device.memory_bytes)
            }
        }
    }

    /// Assigns every client the largest model from the pool that its device
    /// can handle under this constraint (paper §IV: "the largest trainable
    /// model is assigned to the client").
    pub fn assign_clients(
        &self,
        pool: &ModelPool,
        method: MhflMethod,
        devices: &[DeviceCapability],
        cost_model: &CostModel,
    ) -> Vec<ClientAssignment> {
        devices
            .iter()
            .enumerate()
            .map(|(client_id, device)| {
                self.assign_client(pool, method, device, cost_model, client_id)
            })
            .collect()
    }
}

/// The model and cost assigned to one client under a constraint case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientAssignment {
    /// Index of the client in the federation.
    pub client_id: usize,
    /// The client's device capability.
    pub device: DeviceCapability,
    /// The pool entry (model choice + stats) selected for the client.
    pub entry: PoolEntry,
    /// The per-round cost of that choice on the client's device.
    pub cost: RoundCost,
}

impl ClientAssignment {
    /// The width fraction of the assigned model.
    pub fn width_fraction(&self) -> f64 {
        self.entry.choice.width_fraction
    }

    /// The depth fraction of the assigned model.
    pub fn depth_fraction(&self) -> f64 {
        self.entry.choice.depth_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_models::ModelFamily;

    fn pool() -> ModelPool {
        ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::HETEROGENEOUS,
            100,
        )
    }

    #[test]
    fn computation_constraint_gives_slow_devices_smaller_models() {
        let pool = pool();
        let cost_model = CostModel::default();
        let case = ConstraintCase::Computation {
            deadline_secs: 300.0,
        };
        let slow = DeviceCapability {
            compute_gflops: 5.0,
            bandwidth_mbps: 50.0,
            memory_bytes: 1 << 33,
            availability: 1.0,
        };
        let fast = DeviceCapability {
            compute_gflops: 500.0,
            bandwidth_mbps: 50.0,
            memory_bytes: 1 << 33,
            availability: 1.0,
        };
        let assignments =
            case.assign_clients(&pool, MhflMethod::SHeteroFl, &[slow, fast], &cost_model);
        assert!(assignments[0].entry.stats.params <= assignments[1].entry.stats.params);
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[1].client_id, 1);
    }

    #[test]
    fn communication_constraint_reacts_to_bandwidth() {
        let pool = pool();
        let cost_model = CostModel::default();
        let case = ConstraintCase::Communication { budget_secs: 200.0 };
        let narrow = DeviceCapability {
            compute_gflops: 100.0,
            bandwidth_mbps: 1.0,
            memory_bytes: 1 << 33,
            availability: 1.0,
        };
        let wide = DeviceCapability {
            compute_gflops: 100.0,
            bandwidth_mbps: 300.0,
            memory_bytes: 1 << 33,
            availability: 1.0,
        };
        let a = case.assign_clients(&pool, MhflMethod::FedRolex, &[narrow, wide], &cost_model);
        assert!(a[0].entry.stats.params <= a[1].entry.stats.params);
        // The wide-bandwidth client can afford the full model within 200 s.
        assert!((a[1].width_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_constraint_penalises_depthfl_more() {
        // Under the same 4 GB device, DepthFL's memory overhead forces a
        // smaller model than SHeteroFL — the mechanism behind the paper's
        // Fig. 6 observations.
        let pool = pool();
        let cost_model = CostModel::default();
        let case = ConstraintCase::Memory;
        let device = DeviceCapability::from(&DeviceProfile::jetson_tx2_nx());
        let shetero = case.assign_clients(&pool, MhflMethod::SHeteroFl, &[device], &cost_model)[0];
        let depthfl = case.assign_clients(&pool, MhflMethod::DepthFl, &[device], &cost_model)[0];
        assert!(
            depthfl.entry.stats.params <= shetero.entry.stats.params,
            "DepthFL should be forced to a smaller model under memory pressure"
        );
    }

    #[test]
    fn combined_constraints_are_at_least_as_restrictive() {
        let pool = pool();
        let cost_model = CostModel::default();
        let devices = ConstraintCase::Memory.build_population(20, 3);
        let single = ConstraintCase::Memory;
        let combined = ConstraintCase::all_combined(200.0, 100.0);
        for method in [
            MhflMethod::SHeteroFl,
            MhflMethod::DepthFl,
            MhflMethod::FedRolex,
        ] {
            let a_single = single.assign_clients(&pool, method, &devices, &cost_model);
            let a_comb = combined.assign_clients(&pool, method, &devices, &cost_model);
            for (s, c) in a_single.iter().zip(&a_comb) {
                assert!(c.entry.stats.params <= s.entry.stats.params);
            }
        }
    }

    #[test]
    fn populations_match_case_semantics() {
        let mem_pop = ConstraintCase::Memory.build_population(50, 1);
        // Memory populations only contain the three Table III classes.
        let classes: Vec<u64> = DeviceProfile::memory_classes()
            .iter()
            .map(|p| p.memory_bytes)
            .collect();
        assert!(mem_pop.iter().all(|d| classes.contains(&d.memory_bytes)));

        let comp_pop = ConstraintCase::Computation {
            deadline_secs: 100.0,
        }
        .build_population(50, 1);
        assert_eq!(comp_pop.len(), 50);
        // Reproducible.
        let comp_pop2 = ConstraintCase::Computation {
            deadline_secs: 100.0,
        }
        .build_population(50, 1);
        assert_eq!(comp_pop, comp_pop2);
    }

    #[test]
    fn derived_devices_and_assignments_are_order_free() {
        let pool = pool();
        let cost_model = CostModel::default();
        for case in [
            ConstraintCase::Memory,
            ConstraintCase::Computation {
                deadline_secs: 300.0,
            },
        ] {
            // Same (seed, client) → same device, regardless of derivation
            // order, even at indices far beyond any materialised population.
            let a = case.derive_device(11, 987_654);
            let _ = case.derive_device(11, 3);
            assert_eq!(a, case.derive_device(11, 987_654));
            assert_ne!(a, case.derive_device(11, 987_655));
            // The per-client assignment equals the per-device body of the
            // eager assigner for the same device.
            let lazy = case.assign_client(&pool, MhflMethod::SHeteroFl, &a, &cost_model, 987_654);
            let eager = case.assign_clients(&pool, MhflMethod::SHeteroFl, &[a], &cost_model)[0];
            assert_eq!(lazy.entry, eager.entry);
            assert_eq!(lazy.cost, eager.cost);
            assert_eq!(lazy.client_id, 987_654);
        }
        // Memory-case lazy devices stay within the Table III classes.
        let classes: Vec<u64> = DeviceProfile::memory_classes()
            .iter()
            .map(|p| p.memory_bytes)
            .collect();
        for c in 0..200 {
            let d = ConstraintCase::Memory.derive_device(5, c);
            assert!(classes.contains(&d.memory_bytes));
        }
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(
            ConstraintCase::Computation { deadline_secs: 1.0 }.label(),
            "Comp"
        );
        assert_eq!(ConstraintCase::Memory.label(), "Mem");
        assert_eq!(
            ConstraintCase::memory_plus_communication(200.0).label(),
            "Mem+Comm"
        );
        assert_eq!(
            ConstraintCase::all_combined(100.0, 200.0).label(),
            "Mem+Comm+Comp"
        );
    }

    #[test]
    fn infeasible_everywhere_falls_back_to_smallest() {
        let pool = pool();
        let cost_model = CostModel::default();
        let case = ConstraintCase::Computation {
            deadline_secs: 1e-9,
        };
        let device = DeviceCapability {
            compute_gflops: 1.0,
            bandwidth_mbps: 1.0,
            memory_bytes: 1 << 30,
            availability: 1.0,
        };
        let a = case.assign_clients(&pool, MhflMethod::Fjord, &[device], &cost_model);
        assert!((a[0].width_fraction() - 0.25).abs() < 1e-9);
    }
}
