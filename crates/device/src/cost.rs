//! The analytical cost model converting model statistics into per-round
//! system costs on a device.

use mhfl_models::{MhflMethod, ModelStats};
use serde::{Deserialize, Serialize};

use crate::{DeviceCapability, DeviceProfile};

/// Per-method multipliers on the raw architecture statistics.
///
/// The paper's Table I shows that four methods producing a "×0.5 ResNet-101"
/// end up with visibly different training times and, above all, memory
/// footprints (DepthFL needs roughly twice the memory of SHeteroFL because it
/// keeps every intermediate classifier and its activations; FedRolex's rolling
/// windows defeat activation reuse; FeDepth's block-wise training is lean).
/// These factors encode that calibration so the constraint cases reproduce
/// the same feasibility differences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodOverhead {
    /// Multiplier on the parameter count.
    pub param_factor: f64,
    /// Multiplier on per-round training time.
    pub time_factor: f64,
    /// Multiplier on peak training memory.
    pub memory_factor: f64,
    /// Multiplier on the exchanged payload (1.0 = full sub-model weights;
    /// prototype/logit-exchange methods transmit far less).
    pub comm_factor: f64,
}

impl MethodOverhead {
    /// The calibrated overhead of a method (SHeteroFL is the 1.0 reference).
    pub fn for_method(method: MhflMethod) -> Self {
        match method {
            MhflMethod::SHeteroFl => MethodOverhead {
                param_factor: 1.0,
                time_factor: 1.0,
                memory_factor: 1.0,
                comm_factor: 1.0,
            },
            MhflMethod::Fjord => MethodOverhead {
                // Ordered dropout samples several widths per step.
                param_factor: 1.0,
                time_factor: 1.06,
                memory_factor: 1.05,
                comm_factor: 1.0,
            },
            MhflMethod::FedRolex => MethodOverhead {
                // Table I: 10.75 M params, 780 MB vs SHeteroFL's 10.66 M / 593 MB.
                param_factor: 1.01,
                time_factor: 1.08,
                memory_factor: 1.32,
                comm_factor: 1.0,
            },
            MhflMethod::FeDepth => MethodOverhead {
                // Table I: 10.54 M params, 631 MB — block-wise training is lean.
                param_factor: 0.99,
                time_factor: 1.05,
                memory_factor: 1.06,
                comm_factor: 1.0,
            },
            MhflMethod::InclusiveFl => MethodOverhead {
                param_factor: 0.98,
                time_factor: 1.10,
                memory_factor: 1.15,
                comm_factor: 1.0,
            },
            MhflMethod::DepthFl => MethodOverhead {
                // Table I: 1220 MB — every intermediate classifier kept alive.
                param_factor: 0.97,
                time_factor: 1.20,
                memory_factor: 2.06,
                comm_factor: 1.0,
            },
            MhflMethod::FedProto => MethodOverhead {
                // Full local model, but only class prototypes travel.
                param_factor: 1.0,
                time_factor: 1.05,
                memory_factor: 1.0,
                comm_factor: 0.02,
            },
            MhflMethod::FedEt => MethodOverhead {
                // Clients exchange logits on the public set plus small heads.
                param_factor: 1.0,
                time_factor: 1.12,
                memory_factor: 1.10,
                comm_factor: 0.10,
            },
            MhflMethod::HomogeneousSmallest => MethodOverhead {
                param_factor: 1.0,
                time_factor: 1.0,
                memory_factor: 1.0,
                comm_factor: 1.0,
            },
        }
    }
}

/// The simulated system cost of one federated round on one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundCost {
    /// Local training time in seconds.
    pub train_time_secs: f64,
    /// Upload + download time in seconds.
    pub comm_time_secs: f64,
    /// Peak training memory in bytes.
    pub memory_bytes: u64,
    /// Bytes exchanged with the server per round.
    pub payload_bytes: u64,
}

impl RoundCost {
    /// Total wall-clock contribution of this client to a synchronous round.
    pub fn total_secs(&self) -> f64 {
        self.train_time_secs + self.comm_time_secs
    }
}

/// Converts architecture statistics into device-level costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Number of local optimisation steps per round.
    pub local_steps: usize,
    /// Fraction of a device's theoretical throughput achievable during
    /// training (kernel launch overheads, memory stalls, ...).
    pub compute_efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            batch_size: 16,
            local_steps: 30,
            compute_efficiency: 0.30,
        }
    }
}

impl CostModel {
    /// Creates a cost model with explicit batch size and local steps.
    pub fn new(batch_size: usize, local_steps: usize) -> Self {
        CostModel {
            batch_size,
            local_steps,
            ..CostModel::default()
        }
    }

    /// Computes the per-round cost of training a model with statistics
    /// `stats` under `method` on a device with the given capability.
    pub fn round_cost(
        &self,
        stats: &ModelStats,
        method: MhflMethod,
        device: &DeviceCapability,
    ) -> RoundCost {
        let overhead = MethodOverhead::for_method(method);
        let samples = (self.batch_size * self.local_steps) as f64;
        let flops = stats.training_flops_per_sample() as f64 * samples * overhead.time_factor;
        let throughput = (device.compute_gflops.max(0.1)) * 1e9 * self.compute_efficiency;
        let train_time_secs = flops / throughput;

        let payload_bytes =
            (2.0 * stats.payload_bytes() as f64 * overhead.comm_factor).round() as u64;
        let comm_time_secs = payload_bytes as f64 * 8.0 / (device.bandwidth_mbps.max(0.1) * 1e6);

        let memory_bytes = (stats.training_memory_bytes(self.batch_size) as f64
            * overhead.memory_factor)
            .round() as u64;

        RoundCost {
            train_time_secs,
            comm_time_secs,
            memory_bytes,
            payload_bytes,
        }
    }

    /// Effective parameter count of a method's instantiation of a model.
    pub fn effective_params(&self, stats: &ModelStats, method: MhflMethod) -> u64 {
        (stats.params as f64 * MethodOverhead::for_method(method).param_factor).round() as u64
    }
}

impl From<&DeviceProfile> for DeviceCapability {
    fn from(profile: &DeviceProfile) -> Self {
        DeviceCapability {
            compute_gflops: profile.gflops,
            bandwidth_mbps: profile.bandwidth_mbps,
            memory_bytes: profile.memory_bytes,
            availability: profile.availability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_models::{ModelFamily, ModelSpec};

    fn half_resnet101() -> ModelStats {
        ModelSpec::new(ModelFamily::ResNet101, 100).stats(0.5, 1.0)
    }

    #[test]
    fn table1_memory_ordering_is_reproduced() {
        let stats = half_resnet101();
        let cost = CostModel::default();
        let device = DeviceCapability::from(&DeviceProfile::jetson_orin_nx());
        let mem = |m: MhflMethod| cost.round_cost(&stats, m, &device).memory_bytes;
        // DepthFL > FedRolex > FeDepth > SHeteroFL, as in Table I.
        assert!(mem(MhflMethod::DepthFl) > mem(MhflMethod::FedRolex));
        assert!(mem(MhflMethod::FedRolex) > mem(MhflMethod::FeDepth));
        assert!(mem(MhflMethod::FeDepth) > mem(MhflMethod::SHeteroFl));
        // DepthFL is roughly 2× SHeteroFL (Table I: 1220 MB vs 593 MB).
        let ratio = mem(MhflMethod::DepthFl) as f64 / mem(MhflMethod::SHeteroFl) as f64;
        assert!(
            ratio > 1.7 && ratio < 2.4,
            "DepthFL/SHeteroFL memory ratio {ratio}"
        );
    }

    #[test]
    fn table1_training_time_ordering() {
        let stats = half_resnet101();
        let cost = CostModel::default();
        let nano = DeviceCapability::from(&DeviceProfile::jetson_nano());
        let orin = DeviceCapability::from(&DeviceProfile::jetson_orin_nx());
        let t = |m: MhflMethod, d: &DeviceCapability| cost.round_cost(&stats, m, d).train_time_secs;
        // Nano is roughly 2× slower than Orin NX, like Table I.
        let ratio = t(MhflMethod::SHeteroFl, &nano) / t(MhflMethod::SHeteroFl, &orin);
        assert!(ratio > 1.5 && ratio < 3.0, "Nano/Orin time ratio {ratio}");
        // DepthFL is the slowest of the four Table I methods.
        for m in [
            MhflMethod::SHeteroFl,
            MhflMethod::FedRolex,
            MhflMethod::FeDepth,
        ] {
            assert!(t(MhflMethod::DepthFl, &orin) > t(m, &orin));
        }
    }

    #[test]
    fn prototype_methods_transmit_far_less() {
        let stats = half_resnet101();
        let cost = CostModel::default();
        let device = DeviceCapability::from(&DeviceProfile::jetson_tx2_nx());
        let proto = cost.round_cost(&stats, MhflMethod::FedProto, &device);
        let full = cost.round_cost(&stats, MhflMethod::SHeteroFl, &device);
        assert!(proto.payload_bytes * 10 < full.payload_bytes);
        assert!(proto.comm_time_secs < full.comm_time_secs);
    }

    #[test]
    fn costs_scale_with_device_and_model() {
        let cost = CostModel::default();
        let small = ModelSpec::new(ModelFamily::ResNet101, 100).stats(0.25, 1.0);
        let large = ModelSpec::new(ModelFamily::ResNet101, 100).stats(1.0, 1.0);
        let fast = DeviceCapability {
            compute_gflops: 500.0,
            bandwidth_mbps: 100.0,
            memory_bytes: 1 << 34,
            availability: 1.0,
        };
        let slow = DeviceCapability {
            compute_gflops: 10.0,
            bandwidth_mbps: 2.0,
            memory_bytes: 1 << 31,
            availability: 1.0,
        };
        let c_small_fast = cost.round_cost(&small, MhflMethod::SHeteroFl, &fast);
        let c_large_fast = cost.round_cost(&large, MhflMethod::SHeteroFl, &fast);
        let c_small_slow = cost.round_cost(&small, MhflMethod::SHeteroFl, &slow);
        assert!(c_large_fast.train_time_secs > c_small_fast.train_time_secs);
        assert!(c_small_slow.train_time_secs > c_small_fast.train_time_secs);
        assert!(c_small_slow.comm_time_secs > c_small_fast.comm_time_secs);
        assert!(c_large_fast.memory_bytes > c_small_fast.memory_bytes);
        assert!(c_large_fast.total_secs() > 0.0);
    }

    #[test]
    fn every_method_has_an_overhead() {
        for m in MhflMethod::ALL {
            let o = MethodOverhead::for_method(m);
            assert!(o.param_factor > 0.0 && o.time_factor > 0.0);
            assert!(o.memory_factor > 0.0 && o.comm_factor > 0.0);
        }
    }

    #[test]
    fn device_profile_converts_to_capability() {
        let cap = DeviceCapability::from(&DeviceProfile::raspberry_pi_4b());
        assert_eq!(
            cap.memory_bytes,
            DeviceProfile::raspberry_pi_4b().memory_bytes
        );
        assert!(!DeviceProfile::raspberry_pi_4b().has_gpu);
        assert!(cap.compute_gflops < 50.0);
    }
}
