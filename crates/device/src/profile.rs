//! Named edge-device profiles (paper Table III plus the Jetson Nano of Table I).

use serde::{Deserialize, Serialize};

/// A class of edge device with its resource envelope.
///
/// The numbers are effective training figures, not peak datasheet numbers:
/// `gflops` is sustained training throughput, `memory_bytes` the RAM usable
/// for training and `bandwidth_mbps` the uplink available during federated
/// rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Sustained training throughput in GFLOP/s.
    pub gflops: f64,
    /// Memory usable for training, in bytes.
    pub memory_bytes: u64,
    /// Network bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Whether the device has a usable GPU.
    pub has_gpu: bool,
    /// Expected fraction of time the device is reachable for dispatch
    /// (powered on, on network, not opted out). Wall-powered edge boxes sit
    /// near 1.0; battery/mobile devices churn. Consumed by
    /// availability-trace scheduling.
    pub availability: f64,
}

impl DeviceProfile {
    /// Creates a profile.
    pub fn new(
        name: impl Into<String>,
        gflops: f64,
        memory_bytes: u64,
        bandwidth_mbps: f64,
        has_gpu: bool,
    ) -> Self {
        DeviceProfile {
            name: name.into(),
            gflops,
            memory_bytes,
            bandwidth_mbps,
            has_gpu,
            availability: 1.0,
        }
    }

    /// Returns a copy with the given expected availability fraction
    /// (clamped to `[0, 1]`).
    pub fn with_availability(mut self, availability: f64) -> Self {
        self.availability = availability.clamp(0.0, 1.0);
        self
    }

    /// NVIDIA Jetson Orin NX: 1024-core Ampere GPU, 16 GB (Table III).
    pub fn jetson_orin_nx() -> Self {
        DeviceProfile::new("Jetson Orin NX", 1200.0, 16 * GIB, 100.0, true).with_availability(0.95)
    }

    /// NVIDIA Jetson TX2 NX: 256-core Pascal GPU, 4 GB (Table III).
    pub fn jetson_tx2_nx() -> Self {
        DeviceProfile::new("Jetson TX2 NX", 350.0, 4 * GIB, 80.0, true).with_availability(0.90)
    }

    /// NVIDIA Jetson Nano: the slower reference device of Table I (≈2× the
    /// Orin NX's per-round training time in the paper's measurements).
    pub fn jetson_nano() -> Self {
        DeviceProfile::new("Jetson Nano", 550.0, 4 * GIB, 60.0, true).with_availability(0.85)
    }

    /// Raspberry Pi 4B: quad-core Cortex-A72, no GPU (Table III).
    pub fn raspberry_pi_4b() -> Self {
        DeviceProfile::new("Raspberry Pi 4B", 12.0, 4 * GIB, 40.0, false).with_availability(0.75)
    }

    /// The device classes used by the memory-limited case: 16 GB GPU, 4 GB
    /// GPU and CPU-only (paper §IV-C).
    pub fn memory_classes() -> Vec<DeviceProfile> {
        vec![
            Self::jetson_orin_nx(),
            Self::jetson_tx2_nx(),
            Self::raspberry_pi_4b(),
        ]
    }

    /// All named profiles.
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            Self::jetson_orin_nx(),
            Self::jetson_tx2_nx(),
            Self::jetson_nano(),
            Self::raspberry_pi_4b(),
        ]
    }

    /// Memory capacity in gibibytes.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / GIB as f64
    }
}

/// One gibibyte in bytes.
pub(crate) const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_devices_have_expected_memory() {
        assert_eq!(DeviceProfile::jetson_orin_nx().memory_gib(), 16.0);
        assert_eq!(DeviceProfile::jetson_tx2_nx().memory_gib(), 4.0);
        assert!(!DeviceProfile::raspberry_pi_4b().has_gpu);
        assert!(DeviceProfile::jetson_orin_nx().has_gpu);
    }

    #[test]
    fn orin_is_faster_than_nano_is_faster_than_pi() {
        let orin = DeviceProfile::jetson_orin_nx();
        let nano = DeviceProfile::jetson_nano();
        let pi = DeviceProfile::raspberry_pi_4b();
        assert!(orin.gflops > nano.gflops);
        assert!(nano.gflops > pi.gflops);
    }

    #[test]
    fn memory_classes_cover_three_tiers() {
        let classes = DeviceProfile::memory_classes();
        assert_eq!(classes.len(), 3);
        assert!(classes[0].memory_bytes > classes[1].memory_bytes);
        assert!(!classes[2].has_gpu);
    }
}
