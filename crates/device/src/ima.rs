//! Synthetic stand-in for the IMA smartphone-capability dataset.
//!
//! The paper builds its computation- and communication-limited cases from
//! the IMA dataset (Yang et al., WWW'21), which records the compute power
//! and network bandwidth of more than 1,000 real smartphones. That dataset
//! is not redistributable here, so [`ImaPopulation`] samples a population
//! with the same qualitative properties: long-tailed compute capability
//! (flagships ≫ entry-level phones), long-tailed bandwidth (Wi-Fi vs.
//! congested cellular), and weak correlation between the two.

use mhfl_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::profile::GIB;

/// The resources of one simulated participant device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceCapability {
    /// Sustained training throughput in GFLOP/s.
    pub compute_gflops: f64,
    /// Uplink bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Memory available for training, in bytes.
    pub memory_bytes: u64,
    /// Expected fraction of time the device is reachable for dispatch
    /// (see [`crate::DeviceProfile::availability`]).
    pub availability: f64,
}

/// A seeded population of heterogeneous device capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImaPopulation {
    devices: Vec<DeviceCapability>,
    seed: u64,
}

impl ImaPopulation {
    /// Generates a population of `size` devices from `seed`.
    ///
    /// Compute capability and bandwidth are log-normally distributed;
    /// memory is drawn from the discrete RAM tiers reported by the
    /// ScientiaMobile smartphone survey the paper cites (2/4/6/8/12 GB),
    /// weighted toward the mid-range.
    pub fn generate(size: usize, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        // Availability draws come from a separate stream so adding them did
        // not shift the compute/bandwidth/RAM draws of existing seeds.
        let mut avail_rng = SeededRng::new(seed ^ 0xA7A1_1AB1);
        let ram_tiers: [(u64, f64); 5] = [
            (2 * GIB, 0.10),
            (4 * GIB, 0.30),
            (6 * GIB, 0.30),
            (8 * GIB, 0.22),
            (12 * GIB, 0.08),
        ];
        let weights: Vec<f64> = ram_tiers.iter().map(|(_, w)| *w).collect();
        let devices = (0..size)
            .map(|_| {
                // Median ≈ 25 GFLOP/s with a heavy upper tail (flagship SoCs).
                let compute = (rng.log_normal(3.2, 0.7) as f64).clamp(2.0, 600.0);
                // Median ≈ 20 Mbps uplink, between slow cellular and fast Wi-Fi.
                let bandwidth = (rng.log_normal(3.0, 0.8) as f64).clamp(1.0, 400.0);
                let memory_bytes = ram_tiers[rng.weighted_index(&weights)].0;
                // Phones churn: most are reachable 60–95 % of the time.
                let availability = f64::from(avail_rng.uniform(0.60, 0.95));
                DeviceCapability {
                    compute_gflops: compute,
                    bandwidth_mbps: bandwidth,
                    memory_bytes,
                    availability,
                }
            })
            .collect();
        ImaPopulation { devices, seed }
    }

    /// Derives the capability of a single device from `(seed, index)` alone,
    /// without materialising a population — the lazy counterpart of
    /// [`generate`](ImaPopulation::generate) for populations too large to
    /// hold resident.
    ///
    /// Each device draws from its own derived stream, so derivations are
    /// order-free: `device_at(seed, i)` is bit-identical whether or not any
    /// other device was derived first. The marginals match `generate` —
    /// log-normal compute and bandwidth, discrete RAM tiers, uniform
    /// availability from the dedicated `seed ^ 0xA7A1_1AB1` stream — but
    /// `generate` consumes one *sequential* stream across its whole
    /// population, so the two constructors define distinct population kinds
    /// for the same seed (eager contexts keep using `generate`; lazy
    /// contexts use this).
    pub fn device_at(seed: u64, index: usize) -> DeviceCapability {
        let mut rng = SeededRng::new(seed).derive(index as u64);
        let mut avail_rng = SeededRng::new(seed ^ 0xA7A1_1AB1).derive(index as u64);
        let ram_tiers: [(u64, f64); 5] = [
            (2 * GIB, 0.10),
            (4 * GIB, 0.30),
            (6 * GIB, 0.30),
            (8 * GIB, 0.22),
            (12 * GIB, 0.08),
        ];
        let weights: Vec<f64> = ram_tiers.iter().map(|(_, w)| *w).collect();
        let compute = (rng.log_normal(3.2, 0.7) as f64).clamp(2.0, 600.0);
        let bandwidth = (rng.log_normal(3.0, 0.8) as f64).clamp(1.0, 400.0);
        let memory_bytes = ram_tiers[rng.weighted_index(&weights)].0;
        let availability = f64::from(avail_rng.uniform(0.60, 0.95));
        DeviceCapability {
            compute_gflops: compute,
            bandwidth_mbps: bandwidth,
            memory_bytes,
            availability,
        }
    }

    /// Number of devices in the population.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The seed the population was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceCapability] {
        &self.devices
    }

    /// The device assigned to client `index` (wraps around if the federation
    /// has more clients than the population).
    pub fn device_for_client(&self, index: usize) -> DeviceCapability {
        self.devices[index % self.devices.len()]
    }

    /// Population percentile (0–100) of compute capability.
    pub fn compute_percentile(&self, pct: f64) -> f64 {
        percentile(self.devices.iter().map(|d| d.compute_gflops), pct)
    }

    /// Population percentile (0–100) of bandwidth.
    pub fn bandwidth_percentile(&self, pct: f64) -> f64 {
        percentile(self.devices.iter().map(|d| d.bandwidth_mbps), pct)
    }
}

fn percentile(values: impl Iterator<Item = f64>, pct: f64) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = (pct.clamp(0.0, 100.0) / 100.0 * (v.len() - 1) as f64).round() as usize;
    v[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_reproducible_and_sized() {
        let a = ImaPopulation::generate(200, 42);
        let b = ImaPopulation::generate(200, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        let c = ImaPopulation::generate(200, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn capability_spread_is_heterogeneous() {
        let pop = ImaPopulation::generate(500, 7);
        let p10 = pop.compute_percentile(10.0);
        let p90 = pop.compute_percentile(90.0);
        assert!(
            p90 / p10 > 3.0,
            "compute spread should be wide: p10={p10}, p90={p90}"
        );
        let b10 = pop.bandwidth_percentile(10.0);
        let b90 = pop.bandwidth_percentile(90.0);
        assert!(
            b90 / b10 > 3.0,
            "bandwidth spread should be wide: p10={b10}, p90={b90}"
        );
    }

    #[test]
    fn memory_comes_from_discrete_tiers() {
        let pop = ImaPopulation::generate(300, 9);
        for d in pop.devices() {
            let gib = d.memory_bytes / GIB;
            assert!(
                [2, 4, 6, 8, 12].contains(&gib),
                "unexpected RAM tier {gib} GiB"
            );
        }
    }

    #[test]
    fn client_assignment_wraps_around() {
        let pop = ImaPopulation::generate(10, 1);
        assert_eq!(
            pop.device_for_client(3).compute_gflops,
            pop.device_for_client(13).compute_gflops
        );
    }

    #[test]
    fn device_at_is_order_free_and_in_distribution() {
        // Same (seed, index) → same device, no matter what else was derived.
        let a = ImaPopulation::device_at(42, 123_456);
        let _ = ImaPopulation::device_at(42, 7);
        let b = ImaPopulation::device_at(42, 123_456);
        assert_eq!(a, b);
        // Distinct indices and seeds give distinct devices.
        assert_ne!(a, ImaPopulation::device_at(42, 123_457));
        assert_ne!(a, ImaPopulation::device_at(43, 123_456));
        // The marginals respect the same physical bounds and RAM tiers.
        for i in 0..500 {
            let d = ImaPopulation::device_at(7, i);
            assert!(d.compute_gflops >= 2.0 && d.compute_gflops <= 600.0);
            assert!(d.bandwidth_mbps >= 1.0 && d.bandwidth_mbps <= 400.0);
            assert!([2, 4, 6, 8, 12].contains(&(d.memory_bytes / GIB)));
            assert!((0.60..=0.95).contains(&d.availability));
        }
    }

    #[test]
    fn values_are_within_physical_bounds() {
        let pop = ImaPopulation::generate(1000, 3);
        for d in pop.devices() {
            assert!(d.compute_gflops >= 2.0 && d.compute_gflops <= 600.0);
            assert!(d.bandwidth_mbps >= 1.0 && d.bandwidth_mbps <= 400.0);
        }
    }
}
