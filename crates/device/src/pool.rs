//! The model pool: candidate model instantiations with measured statistics.

use mhfl_models::{HeterogeneityLevel, MhflMethod, ModelFamily, ModelSpec, ModelStats};
use serde::{Deserialize, Serialize};

/// The scaling fractions used throughout the paper (100 %, 75 %, 50 %, 25 %).
pub const STANDARD_FRACTIONS: [f64; 4] = [1.0, 0.75, 0.5, 0.25];

/// A concrete model instantiation a client could be assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelChoice {
    /// Architecture family.
    pub family: ModelFamily,
    /// Width fraction relative to the full model.
    pub width_fraction: f64,
    /// Depth fraction relative to the full model.
    pub depth_fraction: f64,
}

impl ModelChoice {
    /// The full-size model of a family.
    pub fn full(family: ModelFamily) -> Self {
        ModelChoice {
            family,
            width_fraction: 1.0,
            depth_fraction: 1.0,
        }
    }

    /// A short human-readable label, e.g. `"ResNet-101 ×0.50w"`.
    pub fn label(&self) -> String {
        if (self.width_fraction - 1.0).abs() > 1e-9 {
            format!("{} ×{:.2}w", self.family, self.width_fraction)
        } else if (self.depth_fraction - 1.0).abs() > 1e-9 {
            format!("{} ×{:.2}d", self.family, self.depth_fraction)
        } else {
            self.family.to_string()
        }
    }
}

/// One entry of the model pool: a choice, the method that would instantiate
/// it, and its analytical statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The model instantiation.
    pub choice: ModelChoice,
    /// The MHFL method this entry belongs to.
    pub method: MhflMethod,
    /// Analytical statistics of the instantiation (before method overheads).
    pub stats: ModelStats,
}

/// The pool of candidate models the constraint cases select from (Fig. 3).
///
/// For width-level methods the pool contains the base family at the standard
/// width fractions; for depth-level methods the standard depth fractions;
/// for topology-level methods the members of the family group (e.g. the
/// whole ResNet family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ModelPool {
    entries: Vec<PoolEntry>,
}

impl ModelPool {
    /// Builds the pool for one base family (and its topology group) across a
    /// set of methods.
    pub fn build(
        base_family: ModelFamily,
        topology_group: &[ModelFamily],
        methods: &[MhflMethod],
        num_classes: usize,
    ) -> Self {
        let mut entries = Vec::new();
        for &method in methods {
            match method.level() {
                HeterogeneityLevel::Width => {
                    for &w in &STANDARD_FRACTIONS {
                        let choice = ModelChoice {
                            family: base_family,
                            width_fraction: w,
                            depth_fraction: 1.0,
                        };
                        entries.push(PoolEntry {
                            choice,
                            method,
                            stats: ModelSpec::new(base_family, num_classes).stats(w, 1.0),
                        });
                    }
                }
                HeterogeneityLevel::Depth => {
                    for &d in &STANDARD_FRACTIONS {
                        let choice = ModelChoice {
                            family: base_family,
                            width_fraction: 1.0,
                            depth_fraction: d,
                        };
                        entries.push(PoolEntry {
                            choice,
                            method,
                            stats: ModelSpec::new(base_family, num_classes).stats(1.0, d),
                        });
                    }
                }
                HeterogeneityLevel::Topology => {
                    let group: Vec<ModelFamily> = if topology_group.is_empty() {
                        vec![base_family]
                    } else {
                        topology_group.to_vec()
                    };
                    for family in group {
                        entries.push(PoolEntry {
                            choice: ModelChoice::full(family),
                            method,
                            stats: ModelSpec::new(family, num_classes).stats(1.0, 1.0),
                        });
                    }
                }
            }
        }
        ModelPool { entries }
    }

    /// All entries.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the pool has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries belonging to one method, largest (by parameters) first.
    pub fn entries_for_method(&self, method: MhflMethod) -> Vec<&PoolEntry> {
        let mut v: Vec<&PoolEntry> = self.entries.iter().filter(|e| e.method == method).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.stats.params));
        v
    }

    /// The largest entry of a method satisfying `feasible`, falling back to
    /// the smallest entry of that method when none is feasible (a client must
    /// always be assigned *some* model to participate at all).
    pub fn select_largest_feasible(
        &self,
        method: MhflMethod,
        mut feasible: impl FnMut(&PoolEntry) -> bool,
    ) -> Option<PoolEntry> {
        let candidates = self.entries_for_method(method);
        if candidates.is_empty() {
            return None;
        }
        for entry in &candidates {
            if feasible(entry) {
                return Some(**entry);
            }
        }
        candidates.last().map(|e| **e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ModelPool {
        ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::HETEROGENEOUS,
            100,
        )
    }

    #[test]
    fn pool_has_entries_for_every_method() {
        let pool = pool();
        for m in MhflMethod::HETEROGENEOUS {
            assert!(
                !pool.entries_for_method(m).is_empty(),
                "{m} missing from pool"
            );
        }
        // Width/depth methods get 4 fractions; topology methods get the family group.
        assert_eq!(pool.entries_for_method(MhflMethod::SHeteroFl).len(), 4);
        assert_eq!(pool.entries_for_method(MhflMethod::DepthFl).len(), 4);
        assert_eq!(pool.entries_for_method(MhflMethod::FedProto).len(), 4);
    }

    #[test]
    fn width_entries_shrink_quadratically_depth_linearly() {
        let pool = pool();
        let widths = pool.entries_for_method(MhflMethod::FedRolex);
        assert!(widths
            .windows(2)
            .all(|w| w[0].stats.params >= w[1].stats.params));
        let full = widths.first().unwrap().stats.params as f64;
        let quarter = widths.last().unwrap().stats.params as f64;
        assert!(
            full / quarter > 8.0,
            "×0.25 width should be ≫4× smaller in params"
        );

        let depths = pool.entries_for_method(MhflMethod::FeDepth);
        let full_d = depths.first().unwrap().stats.params as f64;
        let quarter_d = depths.last().unwrap().stats.params as f64;
        let ratio_d = full_d / quarter_d;
        assert!(
            ratio_d > 2.0 && ratio_d < 8.0,
            "depth scaling is roughly linear, got {ratio_d}"
        );
    }

    #[test]
    fn topology_entries_are_family_members() {
        let pool = pool();
        let topo = pool.entries_for_method(MhflMethod::FedProto);
        let fams: Vec<ModelFamily> = topo.iter().map(|e| e.choice.family).collect();
        for f in ModelFamily::RESNET_FAMILY {
            assert!(fams.contains(&f));
        }
    }

    #[test]
    fn selection_picks_largest_feasible_or_falls_back() {
        let pool = pool();
        // Generous budget: the full model is selected.
        let full = pool
            .select_largest_feasible(MhflMethod::SHeteroFl, |_| true)
            .unwrap();
        assert!((full.choice.width_fraction - 1.0).abs() < 1e-9);
        // Impossible budget: fall back to the smallest.
        let fallback = pool
            .select_largest_feasible(MhflMethod::SHeteroFl, |_| false)
            .unwrap();
        assert!((fallback.choice.width_fraction - 0.25).abs() < 1e-9);
        // Budget that only a mid-size model satisfies.
        let threshold = pool.entries_for_method(MhflMethod::SHeteroFl)[1]
            .stats
            .params;
        let mid = pool
            .select_largest_feasible(MhflMethod::SHeteroFl, |e| e.stats.params <= threshold)
            .unwrap();
        assert_eq!(mid.stats.params, threshold);
    }

    #[test]
    fn labels_are_informative() {
        let c = ModelChoice {
            family: ModelFamily::ResNet101,
            width_fraction: 0.5,
            depth_fraction: 1.0,
        };
        assert!(c.label().contains("0.50w"));
        let d = ModelChoice {
            family: ModelFamily::ResNet101,
            width_fraction: 1.0,
            depth_fraction: 0.25,
        };
        assert!(d.label().contains("0.25d"));
        assert_eq!(
            ModelChoice::full(ModelFamily::ResNet18).label(),
            "ResNet-18"
        );
    }
}
