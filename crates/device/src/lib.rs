//! # mhfl-device
//!
//! Edge-device modelling for the PracMHBench reproduction: everything the
//! paper measured on physical hardware (Jetson Orin NX / TX2 NX / Nano,
//! Raspberry Pi 4B and the IMA smartphone traces) is simulated here by an
//! analytical cost model so the *practical constraint cases* can be built
//! without the devices themselves.
//!
//! Components:
//!
//! * [`DeviceProfile`] — named device classes with compute throughput,
//!   memory capacity and network bandwidth (Table III of the paper);
//! * [`ImaPopulation`] — a seeded synthetic population standing in for the
//!   IMA dataset of >1,000 smartphone capability/bandwidth traces;
//! * [`CostModel`] — converts a model's analytical statistics
//!   ([`mhfl_models::ModelStats`]) into per-round training time,
//!   communication time and peak training memory on a given device,
//!   including the per-method overheads responsible for the differences the
//!   paper's Table I highlights;
//! * [`ModelPool`] — the pool of candidate (family, method, scale) entries
//!   with their measured statistics (Fig. 3);
//! * [`ConstraintCase`] — the computation-, communication- and
//!   memory-limited cases (plus combinations) that assign every client the
//!   largest feasible model from the pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod cost;
mod ima;
mod pool;
mod profile;

pub use constraint::{ClientAssignment, ConstraintCase};
pub use cost::{CostModel, MethodOverhead, RoundCost};
pub use ima::{DeviceCapability, ImaPopulation};
pub use pool::{ModelChoice, ModelPool, PoolEntry};
pub use profile::DeviceProfile;
