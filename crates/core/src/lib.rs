//! # pracmhbench-core
//!
//! The PracMHBench platform itself: experiment configuration, the evaluation
//! track of the paper's Fig. 1 (pick a constraint → run every algorithm on a
//! data task → record the four metrics) and result reporting.
//!
//! ```no_run
//! use pracmhbench_core::{ExperimentSpec, RunScale};
//! use mhfl_data::DataTask;
//! use mhfl_device::ConstraintCase;
//! use mhfl_models::MhflMethod;
//!
//! let spec = ExperimentSpec::new(
//!     DataTask::Cifar10,
//!     MhflMethod::SHeteroFl,
//!     ConstraintCase::Computation { deadline_secs: 300.0 },
//! )
//! .with_scale(RunScale::Quick);
//! let outcome = spec.run()?;
//! println!("global accuracy = {:.3}", outcome.summary.global_accuracy);
//! # Ok::<(), mhfl_fl::FlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod platform;
mod report;

pub use experiment::{
    ExperimentOutcome, ExperimentSpec, LazyClientSource, MetricSummary, RunScale,
};
pub use mhfl_data::Drift;
pub use mhfl_fl::{
    AlgorithmState, Checkpoint, CheckpointObserver, ClientRoundStat, Corruption, CsvTelemetry,
    EarlyStop, EventCounter, Execution, MetricsReport, Observer, Parallelism, PersistError,
    ProgressLogger, RobustAggregation, RoundEvent, Schedule, Session, Staleness, TraceReplay,
};
pub use platform::{base_family_for_task, topology_group_for_task, PlatformInventory};
pub use report::{format_table, ComparisonRow};
