//! Static platform inventory (the paper's Table II) and task→model mapping.

use mhfl_data::DataTask;
use mhfl_models::{HeterogeneityLevel, MhflMethod, ModelFamily};
use serde::{Deserialize, Serialize};

/// The base architecture family the paper pairs with each data task for
/// width/depth-heterogeneous experiments.
pub fn base_family_for_task(task: DataTask) -> ModelFamily {
    match task {
        // The paper uses ResNet-101 on CIFAR-100 and MobileNetV2 on CIFAR-10.
        DataTask::Cifar100 => ModelFamily::ResNet101,
        DataTask::Cifar10 => ModelFamily::MobileNetV2,
        // ALBERT on Stack Overflow, a customised transformer on AG-News.
        DataTask::StackOverflow => ModelFamily::AlbertBase,
        DataTask::AgNews => ModelFamily::CustomTransformer,
        // Customised CNNs for both HAR tasks.
        DataTask::HarBox | DataTask::UciHar => ModelFamily::HarCnn,
    }
}

/// The family group used for topology-heterogeneous experiments on a task
/// (ResNet family on CIFAR-100, MobileNet family on CIFAR-10, ALBERT family
/// on Stack Overflow; single-family groups elsewhere).
pub fn topology_group_for_task(task: DataTask) -> Vec<ModelFamily> {
    match task {
        DataTask::Cifar100 => ModelFamily::RESNET_FAMILY.to_vec(),
        DataTask::Cifar10 => ModelFamily::MOBILENET_FAMILY.to_vec(),
        DataTask::StackOverflow => ModelFamily::ALBERT_FAMILY.to_vec(),
        DataTask::AgNews => vec![ModelFamily::CustomTransformer],
        DataTask::HarBox | DataTask::UciHar => vec![ModelFamily::HarCnn],
    }
}

/// One row of the platform inventory (Table II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformInventory {
    /// Heterogeneity level.
    pub level: HeterogeneityLevel,
    /// Algorithm.
    pub method: MhflMethod,
    /// CV models/datasets paired with the algorithm.
    pub cv: String,
    /// NLP models/datasets (empty when the paper omits the combination).
    pub nlp: String,
    /// HAR models/datasets.
    pub har: String,
}

impl PlatformInventory {
    /// The full inventory, one row per heterogeneous algorithm.
    pub fn rows() -> Vec<PlatformInventory> {
        MhflMethod::HETEROGENEOUS
            .iter()
            .map(|&method| PlatformInventory {
                level: method.level(),
                method,
                cv: "ResNet-101 / MobileNetV2 variants on CIFAR-100 / CIFAR-10".to_string(),
                nlp: if method.supports_nlp() {
                    "ALBERT / custom transformer variants on Stack Overflow / AG-News".to_string()
                } else {
                    "—".to_string()
                },
                har: "Customised CNN on HAR-BOX / UCI-HAR".to_string(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_has_a_base_family_of_matching_modality() {
        for task in DataTask::ALL {
            let family = base_family_for_task(task);
            match task.modality() {
                mhfl_data::Modality::Cv => assert!(family.is_vision()),
                mhfl_data::Modality::Nlp => assert!(family.is_language()),
                mhfl_data::Modality::Har => assert!(family.is_har()),
            }
        }
    }

    #[test]
    fn topology_groups_contain_the_base_family_modality() {
        for task in DataTask::ALL {
            let group = topology_group_for_task(task);
            assert!(!group.is_empty());
        }
        assert_eq!(topology_group_for_task(DataTask::Cifar100).len(), 4);
        assert_eq!(topology_group_for_task(DataTask::Cifar10).len(), 3);
        assert_eq!(topology_group_for_task(DataTask::StackOverflow).len(), 3);
    }

    #[test]
    fn inventory_has_eight_rows_and_marks_nlp_gaps() {
        let rows = PlatformInventory::rows();
        assert_eq!(rows.len(), 8);
        let fedet = rows.iter().find(|r| r.method == MhflMethod::FedEt).unwrap();
        assert_eq!(fedet.nlp, "—");
        let fjord = rows.iter().find(|r| r.method == MhflMethod::Fjord).unwrap();
        assert_ne!(fjord.nlp, "—");
    }
}
