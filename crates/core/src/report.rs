//! Plain-text result tables for the benchmark harness.

use serde::{Deserialize, Serialize};

use crate::ExperimentOutcome;

/// One printable row of a method-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Method name.
    pub method: String,
    /// Heterogeneity level.
    pub level: String,
    /// Final global accuracy.
    pub global_accuracy: f32,
    /// Time-to-accuracy in simulated hours (`None` if the target was not reached).
    pub time_to_accuracy_hours: Option<f64>,
    /// Stability (variance of client accuracies).
    pub stability: f32,
    /// Effectiveness over the homogeneous baseline.
    pub effectiveness: Option<f32>,
}

impl ComparisonRow {
    /// Builds a row from an experiment outcome.
    pub fn from_outcome(outcome: &ExperimentOutcome) -> Self {
        ComparisonRow {
            method: outcome.method.display_name().to_string(),
            level: outcome.method.level().to_string(),
            global_accuracy: outcome.summary.global_accuracy,
            time_to_accuracy_hours: outcome.summary.time_to_accuracy_secs.map(|s| s / 3600.0),
            stability: outcome.summary.stability,
            effectiveness: outcome.summary.effectiveness,
        }
    }
}

/// Formats rows of strings into an aligned plain-text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let format_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:<width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = format_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricSummary;
    use mhfl_data::DataTask;
    use mhfl_fl::MetricsReport;
    use mhfl_models::MhflMethod;

    #[test]
    fn comparison_row_converts_units() {
        let outcome = ExperimentOutcome {
            method: MhflMethod::SHeteroFl,
            task: DataTask::Cifar100,
            constraint: "Comp".into(),
            summary: MetricSummary {
                global_accuracy: 0.61,
                time_to_accuracy_secs: Some(7200.0),
                stability: 0.002,
                effectiveness: Some(0.05),
                total_time_secs: 9000.0,
            },
            report: MetricsReport::new("SHeteroFL"),
        };
        let row = ComparisonRow::from_outcome(&outcome);
        assert_eq!(row.method, "SHeteroFL");
        assert_eq!(row.level, "width");
        assert_eq!(row.time_to_accuracy_hours, Some(2.0));
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let table = format_table(
            &["Method", "Acc"],
            &[
                vec!["SHeteroFL".into(), "0.61".into()],
                vec!["Fjord".into(), "0.55".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].contains("SHeteroFL"));
        // Columns are aligned: "Acc" column starts at the same offset in every row.
        let offset = lines[0].find("Acc").unwrap();
        assert_eq!(&lines[2][offset..offset + 4], "0.61");
    }

    #[test]
    fn empty_rows_still_produce_header() {
        let table = format_table(&["A", "B"], &[]);
        assert!(table.starts_with("A"));
        assert_eq!(table.lines().count(), 2);
    }
}
