//! Experiment specification and the evaluation track.

use std::sync::Arc;

use mhfl_algorithms::build_algorithm;
use mhfl_data::{DataTask, Dataset, Drift, FederatedDataset, Partition, ShardPlan};
use mhfl_device::{ClientAssignment, ConstraintCase, CostModel, ModelPool};
use mhfl_fl::{
    ClientSource, Corruption, EngineConfig, Execution, FederationContext, FlEngine, FlResult,
    LocalTrainConfig, MetricsReport, Parallelism, RobustAggregation, Schedule, Staleness,
};
use mhfl_models::MhflMethod;
use serde::{Deserialize, Serialize};

use crate::{base_family_for_task, topology_group_for_task};

/// How large an experiment to run.
///
/// `Paper` mirrors the paper's setup (hundreds of clients, 1000 rounds) and
/// is only practical on a beefy machine; `Quick` is used by the test suite
/// and the `--quick` mode of the benchmark binaries; `Standard` is the
/// default for the figure-regeneration harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunScale {
    /// Tiny runs for CI and smoke tests.
    Quick,
    /// Default scale for regenerating figures on a laptop.
    Standard,
    /// The paper's own scale (1000 rounds, paper client counts).
    Paper,
}

impl RunScale {
    /// `(num_clients, samples_per_client, rounds, sample_ratio)` for a task.
    fn parameters(&self, task: DataTask) -> (usize, usize, usize, f64) {
        match self {
            RunScale::Quick => (6, 16, 4, 0.5),
            RunScale::Standard => (20, 30, 20, 0.25),
            RunScale::Paper => (task.paper_num_clients(), 50, 1000, 0.1),
        }
    }
}

/// Summary of one experiment in terms of the paper's four metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricSummary {
    /// Metric (i): final global accuracy.
    pub global_accuracy: f32,
    /// Metric (ii): simulated seconds to reach the target accuracy
    /// (`None` if never reached).
    pub time_to_accuracy_secs: Option<f64>,
    /// Metric (iii): variance of per-client accuracies (lower = more stable).
    pub stability: f32,
    /// Metric (iv): accuracy improvement over the smallest-homogeneous
    /// baseline (only populated when a baseline accuracy was supplied).
    pub effectiveness: Option<f32>,
    /// Total simulated wall-clock time of the run.
    pub total_time_secs: f64,
}

/// The result of running one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// The method that was evaluated.
    pub method: MhflMethod,
    /// The task it ran on.
    pub task: DataTask,
    /// The constraint label (e.g. `"Comp"`).
    pub constraint: String,
    /// Four-metric summary.
    pub summary: MetricSummary,
    /// The full per-round metric report.
    pub report: MetricsReport,
}

/// A fully-specified experiment of the evaluation track (Fig. 1): one data
/// task, one algorithm, one practical constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// The data task.
    pub task: DataTask,
    /// The MHFL algorithm.
    pub method: MhflMethod,
    /// The device constraint case.
    pub constraint: ConstraintCase,
    /// Run scale.
    pub scale: RunScale,
    /// Optional override of the data partition (IID / Dirichlet / by-user).
    pub partition: Option<Partition>,
    /// Optional override of the number of clients.
    pub num_clients: Option<usize>,
    /// Target accuracy for the time-to-accuracy metric.
    pub target_accuracy: f32,
    /// Experiment seed.
    pub seed: u64,
    /// Client-selection policy for each round.
    pub schedule: Schedule,
    /// Thread-level execution mode of the per-round client phase. Does not
    /// affect results: threaded and sequential runs produce identical
    /// reports.
    pub parallelism: Parallelism,
    /// Round-advancement mode: classic synchronous rounds or FedBuff-style
    /// asynchronous buffered aggregation on an event-driven clock.
    pub execution: Execution,
    /// Staleness-discount curve for asynchronous execution (sqrt /
    /// polynomial / hinge, per the FedBuff ablations).
    pub staleness: Staleness,
    /// Per-update staleness bound for asynchronous execution: updates
    /// staler than this are discarded before aggregation (counted by
    /// [`MetricsReport::dropped_updates`](mhfl_fl::MetricsReport)).
    /// `None` keeps every update.
    pub max_staleness: Option<usize>,
    /// Byzantine-client policy: seeded corruption applied to the uploads of
    /// a fixed sub-population ([`Corruption::None`] is inert).
    pub corruption: Corruption,
    /// Server-side robust-aggregation counter-measure
    /// ([`RobustAggregation::None`] preserves plain weighted averaging
    /// bit-for-bit).
    pub robust: RobustAggregation,
    /// Probability in `[0, 1]` that a dispatched client silently churns
    /// mid-round and its update never arrives (`0.0` is inert).
    pub churn_fraction: f64,
    /// Label/concept drift schedule over rounds ([`Drift::None`] is inert).
    pub drift: Drift,
}

impl ExperimentSpec {
    /// Creates a specification with standard-scale defaults.
    pub fn new(task: DataTask, method: MhflMethod, constraint: ConstraintCase) -> Self {
        ExperimentSpec {
            task,
            method,
            constraint,
            scale: RunScale::Standard,
            partition: None,
            num_clients: None,
            target_accuracy: 0.5,
            seed: 42,
            schedule: Schedule::Uniform,
            parallelism: Parallelism::Sequential,
            execution: Execution::Synchronous,
            staleness: Staleness::Sqrt,
            max_staleness: None,
            corruption: Corruption::None,
            robust: RobustAggregation::None,
            churn_fraction: 0.0,
            drift: Drift::None,
        }
    }

    /// Sets the run scale.
    pub fn with_scale(mut self, scale: RunScale) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the data partition.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Overrides the number of clients (the scalability analysis of Fig. 9).
    pub fn with_num_clients(mut self, clients: usize) -> Self {
        self.num_clients = Some(clients);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the time-to-accuracy target.
    pub fn with_target_accuracy(mut self, target: f32) -> Self {
        self.target_accuracy = target;
        self
    }

    /// Sets the client-selection policy (deadline-aware, fastest-of-k, ...).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the client-phase execution mode (sequential or thread pool).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the round-advancement mode (synchronous rounds or asynchronous
    /// buffered aggregation).
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the asynchronous staleness-discount curve.
    pub fn with_staleness(mut self, staleness: Staleness) -> Self {
        self.staleness = staleness;
        self
    }

    /// Bounds per-update staleness for asynchronous execution: staler
    /// updates are dropped before aggregation.
    pub fn with_max_staleness(mut self, max_staleness: Option<usize>) -> Self {
        self.max_staleness = max_staleness;
        self
    }

    /// Sets the byzantine-client corruption policy.
    pub fn with_corruption(mut self, corruption: Corruption) -> Self {
        self.corruption = corruption;
        self
    }

    /// Sets the server-side robust-aggregation counter-measure.
    pub fn with_robust_aggregation(mut self, robust: RobustAggregation) -> Self {
        self.robust = robust;
        self
    }

    /// Sets the mid-round churn probability (clamped to `[0, 1]`).
    pub fn with_churn(mut self, fraction: f64) -> Self {
        self.churn_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the label/concept drift schedule.
    pub fn with_drift(mut self, drift: Drift) -> Self {
        self.drift = drift;
        self
    }

    /// Builds the federation context this spec describes.
    ///
    /// # Errors
    /// Returns an error if the context is inconsistent (should not happen for
    /// specs built through the public API).
    pub fn build_context(&self) -> FlResult<FederationContext> {
        let (default_clients, samples_per_client, _rounds, _ratio) =
            self.scale.parameters(self.task);
        let num_clients = self.num_clients.unwrap_or(default_clients);
        let data = FederatedDataset::generate(
            self.task,
            num_clients,
            samples_per_client,
            self.partition,
            self.seed,
        );
        let pool = ModelPool::build(
            base_family_for_task(self.task),
            &topology_group_for_task(self.task),
            &MhflMethod::ALL,
            self.task.num_classes(),
        );
        let devices = self.constraint.build_population(num_clients, self.seed);
        let assignments =
            self.constraint
                .assign_clients(&pool, self.method, &devices, &CostModel::default());
        let train = LocalTrainConfig::default();
        Ok(FederationContext::new(data, assignments, train, self.seed)?.with_drift(self.drift))
    }

    /// Builds a *lazy* federation context for this spec: no per-client state
    /// is materialised up front. Device profiles and data shards are derived
    /// on demand from `(seed, client_id)` by a [`LazyClientSource`], so the
    /// resident footprint is O(active clients) regardless of the population —
    /// the construction behind the million-client runs of the
    /// `population_scale` benchmark.
    ///
    /// Lazy populations are a *distinct* population kind from the eager ones
    /// [`build_context`](ExperimentSpec::build_context) builds: both draw
    /// devices and shards from the same per-case distributions, but the
    /// per-client draws differ, so digests are not comparable across the two
    /// constructors. Within the lazy kind everything is deterministic in
    /// `(seed, client_id)` and independent of access order.
    ///
    /// # Errors
    /// Returns an error if the spec describes an empty federation.
    pub fn build_lazy_context(&self) -> FlResult<FederationContext> {
        let (default_clients, samples_per_client, _rounds, _ratio) =
            self.scale.parameters(self.task);
        let num_clients = self.num_clients.unwrap_or(default_clients);
        let plan = ShardPlan::new(
            self.task,
            num_clients,
            samples_per_client,
            self.partition,
            self.seed,
        );
        let test = plan.test();
        let public = plan.public();
        let source = LazyClientSource {
            plan,
            case: self.constraint,
            method: self.method,
            pool: ModelPool::build(
                base_family_for_task(self.task),
                &topology_group_for_task(self.task),
                &MhflMethod::ALL,
                self.task.num_classes(),
            ),
            cost_model: CostModel::default(),
            seed: self.seed,
        };
        Ok(FederationContext::lazy(
            self.task,
            num_clients,
            test,
            public,
            Arc::new(source),
            LocalTrainConfig::default(),
            self.seed,
        )?
        .with_drift(self.drift))
    }

    /// The engine this spec runs under — the entry point for driving the
    /// experiment through the streaming session API
    /// ([`FlEngine::session`]) instead of the blocking
    /// [`run`](ExperimentSpec::run):
    ///
    /// ```no_run
    /// # use mhfl_data::DataTask;
    /// # use mhfl_device::ConstraintCase;
    /// # use mhfl_models::MhflMethod;
    /// # use pracmhbench_core::ExperimentSpec;
    /// let spec = ExperimentSpec::new(
    ///     DataTask::UciHar,
    ///     MhflMethod::SHeteroFl,
    ///     ConstraintCase::Memory,
    /// );
    /// let ctx = spec.build_context()?;
    /// let mut algorithm = mhfl_algorithms::build_algorithm(spec.method);
    /// let mut session = spec.engine().session(algorithm.as_mut(), &ctx)?;
    /// while let Some(_event) = session.next_event()? {
    ///     // observe, checkpoint, stop early ...
    /// }
    /// # Ok::<(), mhfl_fl::FlError>(())
    /// ```
    pub fn engine(&self) -> FlEngine {
        let (_clients, _spc, rounds, sample_ratio) = self.scale.parameters(self.task);
        FlEngine::new(EngineConfig {
            rounds,
            sample_ratio,
            eval_every: (rounds / 4).max(1),
            stability_clients: 8,
            schedule: self.schedule,
            parallelism: self.parallelism,
            execution: self.execution,
            staleness: self.staleness,
            max_staleness: self.max_staleness,
        })
    }

    /// Runs the experiment.
    ///
    /// # Errors
    /// Propagates engine/algorithm failures.
    pub fn run(&self) -> FlResult<ExperimentOutcome> {
        let ctx = self.build_context()?;
        let engine = self.engine();
        let mut algorithm = build_algorithm(self.method);
        algorithm.set_robust_aggregation(self.robust);
        let mut session = engine.session(algorithm.as_mut(), &ctx)?;
        session.set_corruption(self.corruption);
        session.set_churn(self.churn_fraction);
        let report = session.drain()?;
        let summary = MetricSummary {
            global_accuracy: report.final_accuracy(),
            time_to_accuracy_secs: report.time_to_accuracy(self.target_accuracy),
            stability: report.stability(),
            effectiveness: None,
            total_time_secs: report.total_sim_time_secs(),
        };
        Ok(ExperimentOutcome {
            method: self.method,
            task: self.task,
            constraint: self.constraint.label(),
            summary,
            report,
        })
    }

    /// Runs a set of methods on this spec's task/constraint, including the
    /// smallest-homogeneous baseline, and fills in the effectiveness metric
    /// of every outcome relative to that baseline.
    ///
    /// # Errors
    /// Propagates failures from any individual run.
    pub fn run_comparison(&self, methods: &[MhflMethod]) -> FlResult<Vec<ExperimentOutcome>> {
        let baseline = ExperimentSpec {
            method: MhflMethod::HomogeneousSmallest,
            ..*self
        }
        .run()?;
        let baseline_acc = baseline.summary.global_accuracy;
        let mut outcomes = Vec::with_capacity(methods.len() + 1);
        for &method in methods {
            let mut outcome = ExperimentSpec { method, ..*self }.run()?;
            outcome.summary.effectiveness = Some(outcome.summary.global_accuracy - baseline_acc);
            outcomes.push(outcome);
        }
        outcomes.push(baseline);
        Ok(outcomes)
    }
}

/// The production [`ClientSource`]: derives a client's device profile and
/// data shard on first touch, entirely from `(seed, client_id)`. Holds only
/// O(1) state (a [`ShardPlan`] recipe, the model pool, the constraint case),
/// so cloning a lazy context or sharing it across threads stays cheap at any
/// population size.
#[derive(Debug)]
pub struct LazyClientSource {
    plan: ShardPlan,
    case: ConstraintCase,
    method: MhflMethod,
    pool: ModelPool,
    cost_model: CostModel,
    seed: u64,
}

impl ClientSource for LazyClientSource {
    fn assignment(&self, client: usize) -> ClientAssignment {
        let device = self.case.derive_device(self.seed, client);
        self.case
            .assign_client(&self.pool, self.method, &device, &self.cost_model, client)
    }

    fn client_shard(&self, client: usize) -> Dataset {
        self.plan.client_shard(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_spec_runs_end_to_end() {
        let spec = ExperimentSpec::new(
            DataTask::UciHar,
            MhflMethod::SHeteroFl,
            ConstraintCase::Computation {
                deadline_secs: 300.0,
            },
        )
        .with_scale(RunScale::Quick)
        .with_seed(7);
        let outcome = spec.run().unwrap();
        assert_eq!(outcome.method, MhflMethod::SHeteroFl);
        assert!(outcome.summary.global_accuracy > 0.0);
        assert!(outcome.summary.total_time_secs > 0.0);
        assert!(!outcome.report.records.is_empty());
        assert_eq!(outcome.constraint, "Comp");
    }

    #[test]
    fn comparison_fills_effectiveness() {
        let spec = ExperimentSpec::new(
            DataTask::UciHar,
            MhflMethod::FeDepth,
            ConstraintCase::Memory,
        )
        .with_scale(RunScale::Quick)
        .with_seed(3);
        let outcomes = spec
            .run_comparison(&[MhflMethod::FeDepth, MhflMethod::SHeteroFl])
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].summary.effectiveness.is_some());
        assert!(outcomes[1].summary.effectiveness.is_some());
        // The baseline row itself has no effectiveness value.
        assert_eq!(outcomes[2].method, MhflMethod::HomogeneousSmallest);
        assert!(outcomes[2].summary.effectiveness.is_none());
    }

    #[test]
    fn scalability_override_changes_client_count() {
        let spec = ExperimentSpec::new(DataTask::UciHar, MhflMethod::Fjord, ConstraintCase::Memory)
            .with_scale(RunScale::Quick)
            .with_num_clients(9);
        let ctx = spec.build_context().unwrap();
        assert_eq!(ctx.num_clients(), 9);
    }

    #[test]
    fn lazy_context_matches_spec_and_derives_on_demand() {
        let spec = ExperimentSpec::new(
            DataTask::UciHar,
            MhflMethod::SHeteroFl,
            ConstraintCase::Computation {
                deadline_secs: 300.0,
            },
        )
        .with_scale(RunScale::Quick)
        .with_num_clients(1_000_000)
        .with_seed(9);
        let ctx = spec.build_lazy_context().unwrap();
        assert!(ctx.is_lazy());
        assert_eq!(ctx.num_clients(), 1_000_000);
        // A far-out client is derivable without touching the rest, and the
        // derivation is a pure function of (seed, client).
        let a = ctx.assignment(999_999);
        assert_eq!(a, ctx.assignment(999_999));
        let shard = ctx.client_shard(999_999);
        assert_eq!(shard.len(), ctx.client_shard(999_999).len());
        assert!(!ctx.test_set().is_empty());
    }

    #[test]
    fn scale_parameters_grow_monotonically() {
        let (qc, _, qr, _) = RunScale::Quick.parameters(DataTask::Cifar10);
        let (sc, _, sr, _) = RunScale::Standard.parameters(DataTask::Cifar10);
        let (pc, _, pr, _) = RunScale::Paper.parameters(DataTask::Cifar10);
        assert!(qc < sc && sc < pc);
        assert!(qr < sr && sr < pr);
        assert_eq!(pc, 100);
        assert_eq!(pr, 1000);
    }
}
