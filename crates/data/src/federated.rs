//! Federated dataset assembly: per-client shards plus a global test set.

use mhfl_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::{generate_dataset, DataTask, Dataset, Partition};

/// A fully materialised federated learning task: one training shard per
/// client, a held-out global test set and a small public "proxy" set used by
/// distillation-based algorithms (Fed-ET).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederatedDataset {
    task: DataTask,
    clients: Vec<Dataset>,
    test: Dataset,
    public: Dataset,
    partition: Partition,
}

impl FederatedDataset {
    /// Generates a federated dataset.
    ///
    /// * `num_clients` — number of participating clients.
    /// * `samples_per_client` — average training samples per client.
    /// * `partition` — IID / Dirichlet / by-user split. When `None`, the
    ///   paper's default for the task is used (IID for CIFAR-10/100 and
    ///   AG-News, natural per-user for the rest).
    /// * `seed` — controls data generation and partitioning end to end.
    pub fn generate(
        task: DataTask,
        num_clients: usize,
        samples_per_client: usize,
        partition: Option<Partition>,
        seed: u64,
    ) -> Self {
        let partition = partition.unwrap_or(if task.naturally_non_iid() {
            Partition::ByUser {
                dominant_classes: (task.num_classes() / 2).max(1),
            }
        } else {
            Partition::Iid
        });
        let total_train = (num_clients * samples_per_client).max(num_clients);
        // All three splits share the class templates (same template seed) but
        // contain different samples (different sample seeds).
        let train = generate_dataset(task, total_train, seed, None);
        let test = crate::generate_dataset_with_seeds(
            task,
            (total_train / 4).clamp(64, 2048),
            seed,
            seed ^ 0x7E57,
            None,
        );
        let public = crate::generate_dataset_with_seeds(task, 64, seed, seed ^ 0x9B11C, None);

        let mut rng = SeededRng::new(seed ^ 0x5917);
        let shards = partition.split(&train, num_clients, &mut rng);
        let clients = shards.iter().map(|idx| train.subset(idx)).collect();
        FederatedDataset {
            task,
            clients,
            test,
            public,
            partition,
        }
    }

    /// Assembles a federated dataset from already-built parts — the bridge
    /// from lazy population plans ([`crate::ShardPlan::materialise`]) and
    /// from tests that construct bespoke shard layouts.
    ///
    /// # Panics
    /// Panics if `clients` is empty.
    pub fn from_parts(
        task: DataTask,
        clients: Vec<Dataset>,
        test: Dataset,
        public: Dataset,
        partition: Partition,
    ) -> Self {
        assert!(!clients.is_empty(), "at least one client is required");
        FederatedDataset {
            task,
            clients,
            test,
            public,
            partition,
        }
    }

    /// The task this dataset realises.
    pub fn task(&self) -> DataTask {
        self.task
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// A particular client's training shard.
    pub fn client(&self, index: usize) -> &Dataset {
        &self.clients[index]
    }

    /// All client shards.
    pub fn clients(&self) -> &[Dataset] {
        &self.clients
    }

    /// The held-out global test set (for the global-accuracy metric).
    pub fn test(&self) -> &Dataset {
        &self.test
    }

    /// The public proxy dataset shared by server and clients
    /// (used by knowledge-distillation aggregation).
    pub fn public(&self) -> &Dataset {
        &self.public
    }

    /// The partition strategy that was applied.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The label-skew statistic of the realised partition (0 = IID).
    pub fn label_skew(&self) -> f64 {
        // Reconstruct shard histograms directly from the client datasets.
        let num_classes = self.task.num_classes();
        let mut global = vec![0usize; num_classes];
        for c in &self.clients {
            for (class, count) in c.class_histogram().into_iter().enumerate() {
                global[class] += count;
            }
        }
        let total: usize = global.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let global_dist: Vec<f64> = global.iter().map(|&c| c as f64 / total as f64).collect();
        let mut sum_tv = 0.0;
        let mut counted = 0;
        for c in &self.clients {
            if c.is_empty() {
                continue;
            }
            let tv: f64 = c
                .class_histogram()
                .iter()
                .zip(&global_dist)
                .map(|(&h, &g)| (h as f64 / c.len() as f64 - g).abs())
                .sum::<f64>()
                / 2.0;
            sum_tv += tv;
            counted += 1;
        }
        sum_tv / counted.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_expected_structure() {
        let fed = FederatedDataset::generate(DataTask::Cifar10, 10, 20, None, 0);
        assert_eq!(fed.num_clients(), 10);
        assert_eq!(fed.task(), DataTask::Cifar10);
        assert!(fed.test().len() >= 50);
        assert_eq!(fed.public().len(), 64);
        let total: usize = fed.clients().iter().map(Dataset::len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn default_partition_follows_paper() {
        let iid = FederatedDataset::generate(DataTask::Cifar100, 10, 30, None, 1);
        assert_eq!(iid.partition(), Partition::Iid);
        let natural = FederatedDataset::generate(DataTask::HarBox, 10, 30, None, 1);
        assert!(matches!(natural.partition(), Partition::ByUser { .. }));
        assert!(natural.label_skew() > iid.label_skew());
    }

    #[test]
    fn explicit_dirichlet_partition_is_respected() {
        let fed = FederatedDataset::generate(
            DataTask::Cifar10,
            8,
            40,
            Some(Partition::Dirichlet { alpha: 0.5 }),
            2,
        );
        assert!(matches!(fed.partition(), Partition::Dirichlet { .. }));
        assert!(fed.label_skew() > 0.1);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = FederatedDataset::generate(DataTask::AgNews, 5, 10, None, 7);
        let b = FederatedDataset::generate(DataTask::AgNews, 5, 10, None, 7);
        for (ca, cb) in a.clients().iter().zip(b.clients()) {
            assert_eq!(ca, cb);
        }
        assert_eq!(a.test(), b.test());
    }

    #[test]
    fn every_client_has_data() {
        for task in DataTask::ALL {
            let fed = FederatedDataset::generate(task, 6, 15, None, 3);
            assert!(
                fed.clients().iter().all(|c| !c.is_empty()),
                "{task} has empty clients"
            );
        }
    }
}
