//! Seeded synthetic sample generators, one per task modality.

use mhfl_models::InputKind;
use mhfl_tensor::{SeededRng, Tensor};

use crate::{DataTask, Dataset};

/// Generates `num_samples` labelled samples for a task.
///
/// Samples are drawn from class-conditional generators: each class owns a
/// "template" (an image pattern, a token distribution or a feature centroid)
/// derived deterministically from `seed`, and samples are noisy realisations
/// of their class template. `class_weights`, when provided, skews the label
/// marginal (used to build non-IID client shards); otherwise labels are
/// uniform.
pub fn generate_dataset(
    task: DataTask,
    num_samples: usize,
    seed: u64,
    class_weights: Option<&[f64]>,
) -> Dataset {
    generate_dataset_with_seeds(task, num_samples, seed, seed, class_weights)
}

/// Like [`generate_dataset`], but with independent seeds for the class
/// templates and the per-sample noise.
///
/// Training, test and public splits of the same federated task must share
/// `template_seed` (so they describe the same underlying classes) while using
/// different `sample_seed`s (so they contain different samples).
pub fn generate_dataset_with_seeds(
    task: DataTask,
    num_samples: usize,
    template_seed: u64,
    sample_seed: u64,
    class_weights: Option<&[f64]>,
) -> Dataset {
    let num_classes = task.num_classes();
    let template_rng = SeededRng::new(template_seed ^ 0xA11C_E5EE_D000_0000);
    let mut sample_rng = SeededRng::new(sample_seed);
    let separation = task.class_separation();

    let uniform = vec![1.0f64; num_classes];
    let weights = class_weights.unwrap_or(&uniform);

    let mut labels = Vec::with_capacity(num_samples);
    for _ in 0..num_samples {
        labels.push(sample_rng.weighted_index(weights));
    }

    let inputs = match task.input_kind() {
        InputKind::Image {
            channels,
            height,
            width,
        } => image_samples(
            &labels,
            channels,
            height,
            width,
            separation,
            &template_rng,
            &mut sample_rng,
        ),
        InputKind::Tokens { vocab, seq_len } => token_samples(
            &labels,
            vocab,
            seq_len,
            separation,
            num_classes,
            &template_rng,
            &mut sample_rng,
        ),
        InputKind::Features { dim } => {
            feature_samples(&labels, dim, separation, &template_rng, &mut sample_rng)
        }
    };
    Dataset::new(inputs, labels, num_classes)
}

fn image_samples(
    labels: &[usize],
    channels: usize,
    height: usize,
    width: usize,
    separation: f32,
    template_rng: &SeededRng,
    sample_rng: &mut SeededRng,
) -> Tensor {
    let sample_len = channels * height * width;
    // Per-class template image.
    let templates: Vec<Vec<f32>> = (0..labels.iter().max().map_or(0, |m| m + 1))
        .map(|class| {
            let mut rng = template_rng.derive(class as u64);
            (0..sample_len)
                .map(|_| rng.normal(0.0, separation))
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(labels.len() * sample_len);
    for &label in labels {
        let template = &templates[label];
        for &t in template {
            data.push(t + sample_rng.normal(0.0, 1.0));
        }
    }
    let mut dims = vec![labels.len()];
    dims.extend_from_slice(&[channels, height, width]);
    Tensor::from_vec(data, &dims).expect("consistent image dimensions")
}

fn token_samples(
    labels: &[usize],
    vocab: usize,
    seq_len: usize,
    separation: f32,
    num_classes: usize,
    template_rng: &SeededRng,
    sample_rng: &mut SeededRng,
) -> Tensor {
    // Each class owns a set of "topical" tokens it prefers; the separation
    // controls how often a sample draws from its class topic vs. the shared
    // background distribution.
    let topic_size = (vocab / num_classes.max(1)).max(1);
    let topic_prob = (0.35 + 0.15 * separation as f64).min(0.95);
    let mut data = Vec::with_capacity(labels.len() * seq_len);
    for &label in labels {
        let mut topic_rng = template_rng.derive(label as u64 + 101);
        let topic_start = topic_rng.index(vocab.saturating_sub(topic_size).max(1));
        for _ in 0..seq_len {
            let token = if sample_rng.bernoulli(topic_prob) {
                topic_start + sample_rng.index(topic_size)
            } else {
                sample_rng.index(vocab)
            };
            data.push(token.min(vocab - 1) as f32);
        }
    }
    Tensor::from_vec(data, &[labels.len(), seq_len]).expect("consistent token dimensions")
}

fn feature_samples(
    labels: &[usize],
    dim: usize,
    separation: f32,
    template_rng: &SeededRng,
    sample_rng: &mut SeededRng,
) -> Tensor {
    let centroids: Vec<Vec<f32>> = (0..labels.iter().max().map_or(0, |m| m + 1))
        .map(|class| {
            let mut rng = template_rng.derive(class as u64 + 7);
            (0..dim).map(|_| rng.normal(0.0, separation)).collect()
        })
        .collect();
    let mut data = Vec::with_capacity(labels.len() * dim);
    for &label in labels {
        let centroid = &centroids[label];
        for &c in centroid {
            data.push(c + sample_rng.normal(0.0, 0.7));
        }
    }
    Tensor::from_vec(data, &[labels.len(), dim]).expect("consistent feature dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_task_input_kind() {
        let cv = generate_dataset(DataTask::Cifar10, 20, 0, None);
        assert_eq!(cv.inputs().dims(), &[20, 3, 8, 8]);
        let nlp = generate_dataset(DataTask::AgNews, 15, 0, None);
        assert_eq!(nlp.inputs().dims(), &[15, 12]);
        let har = generate_dataset(DataTask::UciHar, 10, 0, None);
        assert_eq!(har.inputs().dims(), &[10, 36]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_dataset(DataTask::Cifar100, 30, 5, None);
        let b = generate_dataset(DataTask::Cifar100, 30, 5, None);
        assert_eq!(a, b);
        let c = generate_dataset(DataTask::Cifar100, 30, 6, None);
        assert_ne!(a, c);
    }

    #[test]
    fn class_weights_skew_label_marginal() {
        let mut weights = vec![0.0f64; DataTask::Cifar10.num_classes()];
        weights[3] = 1.0;
        let ds = generate_dataset(DataTask::Cifar10, 50, 1, Some(&weights));
        assert!(ds.labels().iter().all(|&l| l == 3));
    }

    #[test]
    fn labels_are_in_range_and_roughly_uniform() {
        let ds = generate_dataset(DataTask::HarBox, 500, 2, None);
        let hist = ds.class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 500);
        assert!(hist.iter().all(|&c| c > 50), "uniform-ish labels: {hist:?}");
    }

    #[test]
    fn token_ids_stay_within_vocab() {
        let ds = generate_dataset(DataTask::StackOverflow, 100, 3, None);
        let max = ds
            .inputs()
            .as_slice()
            .iter()
            .cloned()
            .fold(0.0f32, f32::max);
        assert!(max < 96.0);
    }

    #[test]
    fn classes_are_separable_in_feature_space() {
        // Same-class samples should be closer together than cross-class ones
        // on average — otherwise nothing is learnable.
        let ds = generate_dataset(DataTask::UciHar, 200, 4, None);
        let dim = 36;
        let mut same = (0.0f32, 0usize);
        let mut diff = (0.0f32, 0usize);
        let x = ds.inputs().as_slice();
        for i in 0..100 {
            for j in (i + 1)..100 {
                let dist: f32 = (0..dim)
                    .map(|k| (x[i * dim + k] - x[j * dim + k]).powi(2))
                    .sum();
                if ds.labels()[i] == ds.labels()[j] {
                    same = (same.0 + dist, same.1 + 1);
                } else {
                    diff = (diff.0 + dist, diff.1 + 1);
                }
            }
        }
        let avg_same = same.0 / same.1 as f32;
        let avg_diff = diff.0 / diff.1 as f32;
        assert!(avg_diff > avg_same * 1.2, "same={avg_same} diff={avg_diff}");
    }
}
