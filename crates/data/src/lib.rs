//! # mhfl-data
//!
//! Synthetic federated data tasks for the PracMHBench reproduction.
//!
//! The paper evaluates on six datasets across three modalities:
//! CIFAR-10 / CIFAR-100 (CV), AG-News / Stack Overflow (NLP) and
//! HAR-BOX / UCI-HAR (HAR). Those datasets are not redistributable inside
//! this repository, so the crate generates *seeded synthetic equivalents*
//! that preserve the properties the benchmark actually varies:
//!
//! * the number of classes and input modality of each task,
//! * the partition structure — IID, Dirichlet(α) label skew, or natural
//!   per-user partitions for the tasks the paper treats as naturally
//!   non-IID (Stack Overflow, HAR-BOX, UCI-HAR),
//! * a held-out global test set for the *global accuracy* metric.
//!
//! Samples are drawn from class-conditional generators (per-class templates
//! plus noise), which makes the tasks learnable by the proxy models while
//! remaining fully reproducible from a single seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod drift;
mod federated;
mod lazy;
mod partition;
mod synth;
mod task;

pub use dataset::{Batch, Dataset};
pub use drift::{apply_drift, Drift};
pub use federated::FederatedDataset;
pub use lazy::ShardPlan;
pub use partition::Partition;
pub use synth::{generate_dataset, generate_dataset_with_seeds};
pub use task::{DataTask, Modality};
