//! In-memory labelled datasets and mini-batching.

use mhfl_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

/// One mini-batch: inputs stacked along axis 0 plus the matching labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor whose leading dimension is the batch size.
    pub inputs: Tensor,
    /// One label per sample.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A labelled dataset held fully in memory.
///
/// Inputs are stored as a single tensor whose leading dimension indexes
/// samples; the per-sample shape depends on the task modality
/// (`[3, 8, 8]` images, `[seq]` token ids, `[dim]` feature vectors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from stacked inputs and labels.
    ///
    /// # Panics
    /// Panics if the number of labels differs from the leading input
    /// dimension — that indicates a bug in a generator, not a user error.
    pub fn new(inputs: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            inputs.dims().first().copied().unwrap_or(0),
            labels.len(),
            "inputs and labels must describe the same number of samples"
        );
        Dataset {
            inputs,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of label classes the task defines (not the number of classes
    /// present in this particular shard).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The stacked input tensor.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            if l < self.num_classes {
                hist[l] += 1;
            }
        }
        hist
    }

    /// Extracts the samples at `indices` into a new dataset.
    ///
    /// # Panics
    /// Panics if an index is out of range (generator bug).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let inputs = self
            .inputs
            .gather_axis0(indices)
            .expect("indices must be valid");
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            inputs,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Returns the whole dataset as a single batch.
    pub fn as_batch(&self) -> Batch {
        Batch {
            inputs: self.inputs.clone(),
            labels: self.labels.clone(),
        }
    }

    /// Splits sample indices into shuffled mini-batches of at most
    /// `batch_size` samples and materialises each as a [`Batch`].
    pub fn batches(&self, batch_size: usize, rng: &mut SeededRng) -> Vec<Batch> {
        let batch_size = batch_size.max(1);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut indices);
        indices
            .chunks(batch_size)
            .map(|chunk| {
                let inputs = self.inputs.gather_axis0(chunk).expect("indices in range");
                let labels = chunk.iter().map(|&i| self.labels[i]).collect();
                Batch { inputs, labels }
            })
            .collect()
    }

    /// Splits the dataset into two parts: the first `count` samples and the
    /// rest (used to carve a public/proxy dataset for Fed-ET off the test set).
    pub fn split_at(&self, count: usize) -> (Dataset, Dataset) {
        let count = count.min(self.len());
        let first: Vec<usize> = (0..count).collect();
        let second: Vec<usize> = (count..self.len()).collect();
        (self.subset(&first), self.subset(&second))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let inputs = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[6, 2]).unwrap();
        Dataset::new(inputs, vec![0, 1, 0, 1, 2, 2], 3)
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.class_histogram(), vec![2, 2, 2]);
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "same number of samples")]
    fn mismatched_labels_panics() {
        let inputs = Tensor::zeros(&[3, 2]);
        let _ = Dataset::new(inputs, vec![0, 1], 2);
    }

    #[test]
    fn subset_selects_rows_and_labels() {
        let ds = toy();
        let sub = ds.subset(&[0, 4]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[0, 2]);
        assert_eq!(sub.inputs().as_slice(), &[0.0, 1.0, 8.0, 9.0]);
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let ds = toy();
        let mut rng = SeededRng::new(0);
        let batches = ds.batches(4, &mut rng);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, ds.len());
        let mut label_count = 0;
        for b in &batches {
            assert_eq!(b.inputs.dims()[0], b.len());
            label_count += b.len();
        }
        assert_eq!(label_count, 6);
    }

    #[test]
    fn split_at_partitions_dataset() {
        let ds = toy();
        let (a, b) = ds.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 4);
        let (all, none) = ds.split_at(100);
        assert_eq!(all.len(), 6);
        assert!(none.is_empty());
    }
}
