//! Client partitioning strategies.

use mhfl_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::Dataset;

/// How a task's samples are split across federated clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Independent and identically distributed: samples are shuffled and
    /// dealt round-robin, so every client sees (approximately) the global
    /// label distribution. Used for CIFAR-10/100 and AG-News in the paper.
    Iid,
    /// Label-skewed non-IID via a symmetric Dirichlet prior over the label
    /// distribution of each client. Small `alpha` (e.g. 0.5) is strongly
    /// skewed, large `alpha` (e.g. 5) is close to IID — the two settings of
    /// the paper's Fig. 8.
    Dirichlet {
        /// Concentration parameter of the Dirichlet prior.
        alpha: f64,
    },
    /// Natural per-user partition: each client corresponds to a simulated
    /// user who concentrates on a small number of dominant classes
    /// (Stack Overflow, HAR-BOX, UCI-HAR in the paper).
    ByUser {
        /// Number of dominant classes per user.
        dominant_classes: usize,
    },
}

impl Partition {
    /// Splits the dataset's sample indices into `num_clients` shards.
    ///
    /// Every sample is assigned to exactly one client; clients are guaranteed
    /// at least one sample as long as there are at least as many samples as
    /// clients.
    pub fn split(
        &self,
        dataset: &Dataset,
        num_clients: usize,
        rng: &mut SeededRng,
    ) -> Vec<Vec<usize>> {
        assert!(num_clients > 0, "at least one client is required");
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
        match *self {
            Partition::Iid => {
                let mut indices: Vec<usize> = (0..dataset.len()).collect();
                rng.shuffle(&mut indices);
                for (i, idx) in indices.into_iter().enumerate() {
                    shards[i % num_clients].push(idx);
                }
            }
            Partition::Dirichlet { alpha } => {
                let num_classes = dataset.num_classes();
                // Indices grouped by class.
                let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
                for (i, &l) in dataset.labels().iter().enumerate() {
                    by_class[l.min(num_classes - 1)].push(i);
                }
                for class_indices in by_class.iter_mut() {
                    rng.shuffle(class_indices);
                    if class_indices.is_empty() {
                        continue;
                    }
                    let proportions = rng.dirichlet(alpha.max(1e-3), num_clients);
                    // Convert proportions into contiguous slices of this class.
                    let mut cursor = 0usize;
                    for (client, &p) in proportions.iter().enumerate() {
                        let take = if client + 1 == num_clients {
                            class_indices.len() - cursor
                        } else {
                            ((p * class_indices.len() as f64).round() as usize)
                                .min(class_indices.len() - cursor)
                        };
                        shards[client].extend_from_slice(&class_indices[cursor..cursor + take]);
                        cursor += take;
                    }
                }
            }
            Partition::ByUser { dominant_classes } => {
                let num_classes = dataset.num_classes();
                let dominant = dominant_classes.clamp(1, num_classes);
                // Each user prefers a few classes; samples are routed to a
                // user that prefers their class (or uniformly if none does).
                let preferences: Vec<Vec<usize>> = (0..num_clients)
                    .map(|c| {
                        let mut user_rng = rng.derive(c as u64 + 17);
                        user_rng.choose_indices(num_classes, dominant)
                    })
                    .collect();
                for (i, &label) in dataset.labels().iter().enumerate() {
                    let candidates: Vec<usize> = (0..num_clients)
                        .filter(|&c| preferences[c].contains(&label))
                        .collect();
                    let client = if candidates.is_empty() {
                        rng.index(num_clients)
                    } else {
                        candidates[rng.index(candidates.len())]
                    };
                    shards[client].push(i);
                }
            }
        }
        // Rebalance: make sure no client is left empty when samples allow it.
        if dataset.len() >= num_clients {
            while let Some(empty) = shards.iter().position(Vec::is_empty) {
                let donor = shards
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, s)| s.len())
                    .map(|(i, _)| i)
                    .expect("at least one shard");
                if shards[donor].len() <= 1 {
                    break;
                }
                let moved = shards[donor].pop().expect("donor non-empty");
                shards[empty].push(moved);
            }
        }
        shards
    }

    /// Measures the label-skew of a partition as the mean total-variation
    /// distance between each client's label distribution and the global one.
    /// 0 means perfectly IID; values near 1 mean single-class clients.
    pub fn label_skew(dataset: &Dataset, shards: &[Vec<usize>]) -> f64 {
        let num_classes = dataset.num_classes();
        let global = dataset.class_histogram();
        let total: usize = global.iter().sum();
        if total == 0 || shards.is_empty() {
            return 0.0;
        }
        let global_dist: Vec<f64> = global.iter().map(|&c| c as f64 / total as f64).collect();
        let mut sum_tv = 0.0;
        let mut counted = 0usize;
        for shard in shards {
            if shard.is_empty() {
                continue;
            }
            let mut hist = vec![0usize; num_classes];
            for &i in shard {
                hist[dataset.labels()[i].min(num_classes - 1)] += 1;
            }
            let tv: f64 = hist
                .iter()
                .zip(&global_dist)
                .map(|(&h, &g)| (h as f64 / shard.len() as f64 - g).abs())
                .sum::<f64>()
                / 2.0;
            sum_tv += tv;
            counted += 1;
        }
        sum_tv / counted.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_dataset, DataTask};

    fn dataset() -> Dataset {
        generate_dataset(DataTask::Cifar10, 600, 0, None)
    }

    fn assert_covers_all(shards: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), n, "every sample assigned exactly once");
        all.dedup();
        assert_eq!(all.len(), n, "no duplicates");
    }

    #[test]
    fn iid_split_is_balanced_and_complete() {
        let ds = dataset();
        let mut rng = SeededRng::new(1);
        let shards = Partition::Iid.split(&ds, 10, &mut rng);
        assert_covers_all(&shards, ds.len());
        for s in &shards {
            assert!((s.len() as i64 - 60).abs() <= 1);
        }
        assert!(Partition::label_skew(&ds, &shards) < 0.2);
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed() {
        let ds = dataset();
        let mut rng = SeededRng::new(2);
        let skewed = Partition::Dirichlet { alpha: 0.5 }.split(&ds, 10, &mut rng);
        let mut rng = SeededRng::new(2);
        let flat = Partition::Dirichlet { alpha: 5.0 }.split(&ds, 10, &mut rng);
        assert_covers_all(&skewed, ds.len());
        assert_covers_all(&flat, ds.len());
        let skew_small = Partition::label_skew(&ds, &skewed);
        let skew_large = Partition::label_skew(&ds, &flat);
        assert!(
            skew_small > skew_large,
            "alpha=0.5 ({skew_small}) should be more skewed than alpha=5 ({skew_large})"
        );
    }

    #[test]
    fn by_user_partition_concentrates_classes() {
        let ds = dataset();
        let mut rng = SeededRng::new(3);
        let shards = Partition::ByUser {
            dominant_classes: 2,
        }
        .split(&ds, 20, &mut rng);
        assert_covers_all(&shards, ds.len());
        let skew = Partition::label_skew(&ds, &shards);
        assert!(
            skew > 0.3,
            "natural partition should be clearly non-IID, got {skew}"
        );
    }

    #[test]
    fn no_client_left_empty_when_enough_samples() {
        let ds = generate_dataset(DataTask::AgNews, 40, 4, None);
        let mut rng = SeededRng::new(5);
        for partition in [
            Partition::Iid,
            Partition::Dirichlet { alpha: 0.1 },
            Partition::ByUser {
                dominant_classes: 1,
            },
        ] {
            let shards = partition.split(&ds, 8, &mut rng);
            assert!(
                shards.iter().all(|s| !s.is_empty()),
                "{partition:?} left a client empty"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let ds = dataset();
        let mut rng = SeededRng::new(6);
        let _ = Partition::Iid.split(&ds, 0, &mut rng);
    }
}
