//! The six data tasks of the benchmark.

use mhfl_models::InputKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Application domain of a task (paper §III, "Data Tasks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modality {
    /// Computer vision.
    Cv,
    /// Natural language processing.
    Nlp,
    /// Human activity recognition.
    Har,
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Modality::Cv => write!(f, "CV"),
            Modality::Nlp => write!(f, "NLP"),
            Modality::Har => write!(f, "HAR"),
        }
    }
}

/// The six data tasks evaluated by PracMHBench (two per modality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DataTask {
    Cifar10,
    Cifar100,
    AgNews,
    StackOverflow,
    HarBox,
    UciHar,
}

impl DataTask {
    /// All tasks in the paper's presentation order.
    pub const ALL: [DataTask; 6] = [
        DataTask::Cifar10,
        DataTask::Cifar100,
        DataTask::AgNews,
        DataTask::StackOverflow,
        DataTask::HarBox,
        DataTask::UciHar,
    ];

    /// The task's modality.
    pub fn modality(&self) -> Modality {
        match self {
            DataTask::Cifar10 | DataTask::Cifar100 => Modality::Cv,
            DataTask::AgNews | DataTask::StackOverflow => Modality::Nlp,
            DataTask::HarBox | DataTask::UciHar => Modality::Har,
        }
    }

    /// Number of label classes. CIFAR-100 is reduced from 100 to 20 classes
    /// (its coarse super-classes) to keep the proxy-scale task learnable by
    /// design; the relative difficulty ordering CIFAR-100 > CIFAR-10 is
    /// preserved.
    pub fn num_classes(&self) -> usize {
        match self {
            DataTask::Cifar10 => 10,
            DataTask::Cifar100 => 20,
            DataTask::AgNews => 4,
            DataTask::StackOverflow => 10,
            DataTask::HarBox => 5,
            DataTask::UciHar => 6,
        }
    }

    /// The input shape fed to the proxy models.
    pub fn input_kind(&self) -> InputKind {
        match self {
            DataTask::Cifar10 | DataTask::Cifar100 => InputKind::Image {
                channels: 3,
                height: 8,
                width: 8,
            },
            DataTask::AgNews => InputKind::Tokens {
                vocab: 64,
                seq_len: 12,
            },
            DataTask::StackOverflow => InputKind::Tokens {
                vocab: 96,
                seq_len: 12,
            },
            DataTask::HarBox => InputKind::Features { dim: 27 },
            DataTask::UciHar => InputKind::Features { dim: 36 },
        }
    }

    /// Whether the paper partitions this task naturally by user id
    /// (Stack Overflow, HAR-BOX, UCI-HAR) rather than IID.
    pub fn naturally_non_iid(&self) -> bool {
        matches!(
            self,
            DataTask::StackOverflow | DataTask::HarBox | DataTask::UciHar
        )
    }

    /// The client population the paper uses for this task
    /// (100, 100, 50, 500, 100, 30).
    pub fn paper_num_clients(&self) -> usize {
        match self {
            DataTask::Cifar10 | DataTask::Cifar100 | DataTask::HarBox => 100,
            DataTask::AgNews => 50,
            DataTask::StackOverflow => 500,
            DataTask::UciHar => 30,
        }
    }

    /// How separable the synthetic classes are (distance between class
    /// templates relative to noise). Calibrated so that CV tasks are harder
    /// than HAR tasks and CIFAR-100 is harder than CIFAR-10, mirroring the
    /// relative accuracy levels in the paper.
    pub fn class_separation(&self) -> f32 {
        match self {
            DataTask::Cifar10 => 1.2,
            DataTask::Cifar100 => 0.8,
            DataTask::AgNews => 1.5,
            DataTask::StackOverflow => 1.0,
            DataTask::HarBox => 2.0,
            DataTask::UciHar => 1.8,
        }
    }

    /// Display name matching the paper.
    pub fn display_name(&self) -> &'static str {
        match self {
            DataTask::Cifar10 => "CIFAR-10",
            DataTask::Cifar100 => "CIFAR-100",
            DataTask::AgNews => "AG-News",
            DataTask::StackOverflow => "Stack Overflow",
            DataTask::HarBox => "HAR-BOX",
            DataTask::UciHar => "UCI-HAR",
        }
    }
}

impl fmt::Display for DataTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tasks_per_modality() {
        for modality in [Modality::Cv, Modality::Nlp, Modality::Har] {
            let count = DataTask::ALL
                .iter()
                .filter(|t| t.modality() == modality)
                .count();
            assert_eq!(count, 2, "{modality} should have two tasks");
        }
    }

    #[test]
    fn paper_client_counts() {
        assert_eq!(DataTask::Cifar10.paper_num_clients(), 100);
        assert_eq!(DataTask::AgNews.paper_num_clients(), 50);
        assert_eq!(DataTask::StackOverflow.paper_num_clients(), 500);
        assert_eq!(DataTask::UciHar.paper_num_clients(), 30);
    }

    #[test]
    fn natural_noniid_tasks_match_paper() {
        assert!(!DataTask::Cifar10.naturally_non_iid());
        assert!(!DataTask::Cifar100.naturally_non_iid());
        assert!(!DataTask::AgNews.naturally_non_iid());
        assert!(DataTask::StackOverflow.naturally_non_iid());
        assert!(DataTask::HarBox.naturally_non_iid());
        assert!(DataTask::UciHar.naturally_non_iid());
    }

    #[test]
    fn input_kinds_match_modalities() {
        for task in DataTask::ALL {
            match (task.modality(), task.input_kind()) {
                (Modality::Cv, InputKind::Image { .. })
                | (Modality::Nlp, InputKind::Tokens { .. })
                | (Modality::Har, InputKind::Features { .. }) => {}
                other => panic!("unexpected input kind for {task}: {other:?}"),
            }
        }
    }

    #[test]
    fn cifar100_is_harder_than_cifar10() {
        assert!(DataTask::Cifar100.class_separation() < DataTask::Cifar10.class_separation());
        assert!(DataTask::Cifar100.num_classes() > DataTask::Cifar10.num_classes());
    }
}
