//! Label and concept drift over rounds for the synthetic tasks.
//!
//! Real federations are not stationary: the label distribution rotates
//! (seasonality, fashion), and the input distribution shifts under the same
//! labels (sensor aging, lighting). [`Drift`] describes a deterministic
//! schedule of such shifts over training rounds, and [`apply_drift`]
//! materialises the round-`r` view of a shard as a pure function of
//! `(shard, drift, seed, round)` — no hidden state, so lazy and eager
//! client materialisation, checkpoint restores and distributed runners all
//! see the same drifted data.
//!
//! The test set is never drifted: the benchmark measures how well training
//! under drift tracks the *reference* task.

use mhfl_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

use crate::Dataset;

/// Salt for the per-epoch concept-shift offset stream, disjoint from the
/// generator template streams.
const DRIFT_SALT: u64 = 0xD21F_75EE_D000_0000;

/// A deterministic schedule of distribution shift over training rounds.
///
/// Drift advances in *epochs* of `period_rounds` rounds: rounds
/// `1..=period_rounds` are epoch 0 (identical to the undrifted task — the
/// default knob is observably inert in every mode), rounds
/// `period_rounds+1..=2*period_rounds` are epoch 1, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Drift {
    /// No drift — the default; observably inert.
    #[default]
    None,
    /// Label drift: each epoch rotates every label by one class
    /// (`label → (label + epoch) mod num_classes`), so p(y) — and the
    /// meaning of each class — moves while inputs stay put.
    LabelShift {
        /// Rounds per drift epoch (clamped to at least 1).
        period_rounds: usize,
    },
    /// Concept drift: each epoch adds a fresh seeded offset vector to every
    /// sample's features (the same offset for all samples and clients of the
    /// epoch), so p(x|y) moves while labels stay put.
    ConceptShift {
        /// Rounds per drift epoch (clamped to at least 1).
        period_rounds: usize,
        /// Standard deviation of the per-feature offset.
        magnitude: f32,
    },
}

impl Drift {
    /// `true` when the schedule never changes anything (the hot-path guard).
    pub fn is_none(&self) -> bool {
        matches!(self, Drift::None)
    }

    /// The drift epoch a 1-based round falls into.
    fn epoch(period_rounds: usize, round: usize) -> usize {
        round.saturating_sub(1) / period_rounds.max(1)
    }
}

/// The round-`round` view of `data` under `drift`.
///
/// Returns `None` when the view is identical to `data` (no drift, or epoch
/// 0) so callers can keep the borrowed original instead of copying —
/// [`Drift::None`] therefore costs nothing and changes nothing.
pub fn apply_drift(data: &Dataset, drift: Drift, seed: u64, round: usize) -> Option<Dataset> {
    match drift {
        Drift::None => None,
        Drift::LabelShift { period_rounds } => {
            let epoch = Drift::epoch(period_rounds, round);
            if epoch == 0 {
                return None;
            }
            let classes = data.num_classes().max(1);
            let labels = data
                .labels()
                .iter()
                .map(|&label| (label + epoch) % classes)
                .collect();
            Some(Dataset::new(
                data.inputs().clone(),
                labels,
                data.num_classes(),
            ))
        }
        Drift::ConceptShift {
            period_rounds,
            magnitude,
        } => {
            let epoch = Drift::epoch(period_rounds, round);
            if epoch == 0 || data.is_empty() {
                return None;
            }
            let dims = data.inputs().dims().to_vec();
            let samples = dims.first().copied().unwrap_or(0);
            let feature_len = data.inputs().len() / samples.max(1);
            // One offset vector per epoch, shared across samples, shards
            // and clients: the whole federation's world shifts together.
            let mut rng = SeededRng::new(seed ^ DRIFT_SALT).derive(epoch as u64);
            let offsets: Vec<f32> = (0..feature_len)
                .map(|_| rng.normal(0.0, magnitude))
                .collect();
            let mut values = data.inputs().as_slice().to_vec();
            for (i, v) in values.iter_mut().enumerate() {
                *v += offsets[i % feature_len.max(1)];
            }
            let inputs = Tensor::from_vec(values, &dims).expect("same shape as the source");
            Some(Dataset::new(
                inputs,
                data.labels().to_vec(),
                data.num_classes(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let inputs = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[3, 2]).unwrap();
        Dataset::new(inputs, vec![0, 1, 2], 3)
    }

    #[test]
    fn none_and_epoch_zero_are_identity() {
        let data = toy();
        assert!(apply_drift(&data, Drift::None, 7, 500).is_none());
        let label = Drift::LabelShift { period_rounds: 10 };
        assert!(apply_drift(&data, label, 7, 1).is_none());
        assert!(apply_drift(&data, label, 7, 10).is_none());
        let concept = Drift::ConceptShift {
            period_rounds: 10,
            magnitude: 0.5,
        };
        assert!(apply_drift(&data, concept, 7, 10).is_none());
    }

    #[test]
    fn label_shift_rotates_by_epoch() {
        let data = toy();
        let drift = Drift::LabelShift { period_rounds: 2 };
        let e1 = apply_drift(&data, drift, 7, 3).unwrap();
        assert_eq!(e1.labels(), &[1, 2, 0]);
        assert_eq!(e1.inputs(), data.inputs(), "inputs untouched");
        let e2 = apply_drift(&data, drift, 7, 5).unwrap();
        assert_eq!(e2.labels(), &[2, 0, 1]);
    }

    #[test]
    fn concept_shift_is_seeded_per_epoch_and_shared_across_shards() {
        let data = toy();
        let drift = Drift::ConceptShift {
            period_rounds: 2,
            magnitude: 0.5,
        };
        let a = apply_drift(&data, drift, 7, 3).unwrap();
        let b = apply_drift(&data, drift, 7, 4).unwrap();
        assert_eq!(a, b, "same epoch, same offsets");
        assert_eq!(a.labels(), data.labels(), "labels untouched");
        let other_epoch = apply_drift(&data, drift, 7, 5).unwrap();
        assert_ne!(a.inputs(), other_epoch.inputs());
        let other_seed = apply_drift(&data, drift, 8, 3).unwrap();
        assert_ne!(a.inputs(), other_seed.inputs());
        // The offset is per feature, identical for every sample.
        let delta: Vec<f32> = a
            .inputs()
            .as_slice()
            .iter()
            .zip(data.inputs().as_slice())
            .map(|(x, y)| x - y)
            .collect();
        // Rounding of `value + offset` differs per value, so compare
        // approximately.
        assert!((delta[0] - delta[2]).abs() < 1e-5);
        assert!((delta[1] - delta[3]).abs() < 1e-5);
        assert!((delta[0] - delta[1]).abs() > 1e-5);
    }
}
