//! Lazy, order-free federated shard generation for very large populations.
//!
//! [`FederatedDataset::generate`] materialises every client shard up front,
//! which bounds the population at roughly what fits in memory (~10³
//! clients). A [`ShardPlan`] is the sub-linear alternative: it stores only
//! the *recipe* — task, partition, per-client sample budget and seed — and
//! derives any single client's shard on demand from `(seed, client_id)`
//! alone. Deriving client `i` never touches the generator state of any
//! other client, so shards are order-free: a run that visits clients
//! `{931_204, 7, 500_000}` produces bit-identical shards to one that visits
//! all million in order.
//!
//! The lazy partition contract is *defined here*, not inherited from the
//! eager splitter: the eager path shuffles one global sample pool, which is
//! inherently sequential, so a plan instead realises the partition as
//! per-client class-weight vectors feeding the class-conditional sample
//! generators of [`generate_dataset_with_seeds`]. The statistical shape
//! matches the eager strategies (uniform labels for IID, Dirichlet label
//! marginals per client, dominant-class concentration for by-user) but the
//! two populations are distinct by construction — a plan is a new population
//! kind, not a compressed encoding of an eager one. Within the lazy world
//! the determinism guarantee is exact: [`ShardPlan::materialise`] eagerly
//! assembles the identical [`FederatedDataset`] that per-client calls would
//! produce, which the property suite pins bit-for-bit.
//!
//! Test and public splits reuse the eager derivations (`seed ^ 0x7E57` and
//! `seed ^ 0x9B11C` sample streams over shared class templates), so global
//! evaluation works the same against either population kind.

use mhfl_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::{generate_dataset_with_seeds, DataTask, Dataset, FederatedDataset, Partition};

/// Sample-seed stream label for per-client shard draws (distinct from the
/// eager partition stream `seed ^ 0x5917` and the test/public streams).
const SHARD_STREAM: u64 = 0xC11E_57D5;

/// A seed-deterministic recipe for a federated population whose client
/// shards are derived on demand instead of stored.
///
/// The plan itself is a few words of memory regardless of `num_clients`;
/// resident data is bounded by the shards actually requested plus the shared
/// test/public splits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    task: DataTask,
    num_clients: usize,
    samples_per_client: usize,
    partition: Partition,
    seed: u64,
}

impl ShardPlan {
    /// Creates a plan. `partition` defaults to the task's paper default
    /// (IID for CIFAR-10/100 and AG-News, natural per-user otherwise),
    /// mirroring [`FederatedDataset::generate`].
    ///
    /// # Panics
    /// Panics if `num_clients` is zero.
    pub fn new(
        task: DataTask,
        num_clients: usize,
        samples_per_client: usize,
        partition: Option<Partition>,
        seed: u64,
    ) -> Self {
        assert!(num_clients > 0, "at least one client is required");
        let partition = partition.unwrap_or(if task.naturally_non_iid() {
            Partition::ByUser {
                dominant_classes: (task.num_classes() / 2).max(1),
            }
        } else {
            Partition::Iid
        });
        ShardPlan {
            task,
            num_clients,
            samples_per_client: samples_per_client.max(1),
            partition,
            seed,
        }
    }

    /// The task this plan realises.
    pub fn task(&self) -> DataTask {
        self.task
    }

    /// Population size (clients that *can* be derived, not clients resident).
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Training samples in every derived shard.
    pub fn samples_per_client(&self) -> usize {
        self.samples_per_client
    }

    /// The partition strategy the per-client class weights realise.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The seed every derivation flows from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The class-weight vector of one client's label marginal, or `None`
    /// for the uniform (IID) marginal. Order-free: depends only on
    /// `(seed, partition, client)`.
    pub fn client_class_weights(&self, client: usize) -> Option<Vec<f64>> {
        assert!(client < self.num_clients, "client {client} out of range");
        let num_classes = self.task.num_classes();
        match self.partition {
            Partition::Iid => None,
            Partition::Dirichlet { alpha } => Some(
                SeededRng::new(self.seed ^ 0x5917)
                    .derive(client as u64)
                    .dirichlet(alpha.max(1e-3), num_classes),
            ),
            Partition::ByUser { dominant_classes } => {
                let dominant = dominant_classes.clamp(1, num_classes);
                if dominant == num_classes {
                    return None;
                }
                let preferred = SeededRng::new(self.seed ^ 0x5917)
                    .derive(client as u64)
                    .choose_indices(num_classes, dominant);
                // The eager by-user router sends ~95% of a user's samples to
                // its dominant classes; realise the same concentration as an
                // explicit label marginal.
                let background = 0.05 / (num_classes - dominant) as f64;
                let mut weights = vec![background; num_classes];
                let boost = 0.95 / dominant as f64;
                for class in preferred {
                    weights[class] = boost;
                }
                Some(weights)
            }
        }
    }

    /// Derives one client's training shard. Bit-identical for the same
    /// `(seed, client)` regardless of which other clients were derived
    /// before it.
    ///
    /// # Panics
    /// Panics if `client >= num_clients`.
    pub fn client_shard(&self, client: usize) -> Dataset {
        let weights = self.client_class_weights(client);
        let sample_seed = SeededRng::new(self.seed ^ SHARD_STREAM)
            .derive(client as u64)
            .seed();
        generate_dataset_with_seeds(
            self.task,
            self.samples_per_client,
            self.seed,
            sample_seed,
            weights.as_deref(),
        )
    }

    /// Nominal total training samples across the whole population (used only
    /// to size the test split like the eager path; saturates instead of
    /// overflowing at extreme populations).
    fn total_train(&self) -> usize {
        self.num_clients
            .saturating_mul(self.samples_per_client)
            .max(self.num_clients)
    }

    /// The held-out global test set — same derivation as the eager path
    /// (`seed ^ 0x7E57` samples over the shared class templates), so lazy
    /// and eager populations of one spec evaluate against identical data.
    pub fn test(&self) -> Dataset {
        generate_dataset_with_seeds(
            self.task,
            (self.total_train() / 4).clamp(64, 2048),
            self.seed,
            self.seed ^ 0x7E57,
            None,
        )
    }

    /// The public proxy set shared by server and clients (`seed ^ 0x9B11C`),
    /// identical to the eager derivation.
    pub fn public(&self) -> Dataset {
        generate_dataset_with_seeds(self.task, 64, self.seed, self.seed ^ 0x9B11C, None)
    }

    /// Eagerly materialises the whole population into a
    /// [`FederatedDataset`]: every shard this plan would ever derive,
    /// assembled up front. O(population) memory — the bridge the property
    /// suite uses to pin lazy ≡ eager, and a convenience for small plans.
    pub fn materialise(&self) -> FederatedDataset {
        let clients = (0..self.num_clients)
            .map(|c| self.client_shard(c))
            .collect();
        FederatedDataset::from_parts(
            self.task,
            clients,
            self.test(),
            self.public(),
            self.partition,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_order_free_and_deterministic() {
        let plan = ShardPlan::new(DataTask::Cifar10, 1000, 8, None, 42);
        // Deriving 700 after 3 equals deriving it cold.
        let _ = plan.client_shard(3);
        let warm = plan.client_shard(700);
        let cold = ShardPlan::new(DataTask::Cifar10, 1000, 8, None, 42).client_shard(700);
        assert_eq!(warm, cold);
        // Distinct clients get distinct samples.
        assert_ne!(plan.client_shard(0), plan.client_shard(1));
        // Re-derivation is bit-stable.
        assert_eq!(plan.client_shard(0), plan.client_shard(0));
    }

    #[test]
    fn huge_populations_cost_nothing_until_derived() {
        let plan = ShardPlan::new(DataTask::UciHar, 1_000_000, 4, None, 7);
        assert_eq!(plan.num_clients(), 1_000_000);
        // Only the one requested shard is ever created.
        let shard = plan.client_shard(999_999);
        assert_eq!(shard.len(), 4);
        // Test/public splits are population-independent in size.
        assert_eq!(plan.test().len(), 2048);
        assert_eq!(plan.public().len(), 64);
    }

    #[test]
    fn materialise_matches_per_client_derivation() {
        let plan = ShardPlan::new(DataTask::AgNews, 6, 10, None, 11);
        let eager = plan.materialise();
        assert_eq!(eager.num_clients(), 6);
        for c in 0..6 {
            assert_eq!(eager.client(c), &plan.client_shard(c));
        }
        assert_eq!(eager.test(), &plan.test());
        assert_eq!(eager.public(), &plan.public());
        assert_eq!(eager.partition(), plan.partition());
    }

    #[test]
    fn partitions_shape_the_label_marginal() {
        let skewed = ShardPlan::new(
            DataTask::Cifar10,
            4,
            200,
            Some(Partition::Dirichlet { alpha: 0.2 }),
            5,
        );
        let iid = ShardPlan::new(DataTask::Cifar10, 4, 200, Some(Partition::Iid), 5);
        assert!(iid.client_class_weights(0).is_none());
        let weights = skewed.client_class_weights(0).unwrap();
        assert_eq!(weights.len(), 10);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // A strongly skewed client concentrates mass on few classes.
        assert!(weights.iter().cloned().fold(0.0, f64::max) > 0.3);
        // Materialised skew is visibly above the IID baseline.
        assert!(skewed.materialise().label_skew() > iid.materialise().label_skew());
    }

    #[test]
    fn by_user_weights_concentrate_on_dominant_classes() {
        let plan = ShardPlan::new(DataTask::UciHar, 8, 50, None, 9);
        assert!(matches!(plan.partition(), Partition::ByUser { .. }));
        let weights = plan.client_class_weights(2).unwrap();
        let heavy = weights.iter().filter(|&&w| w > 0.1).count();
        let Partition::ByUser { dominant_classes } = plan.partition() else {
            unreachable!()
        };
        assert_eq!(heavy, dominant_classes);
    }
}
