//! 2-D convolution.

use mhfl_tensor::{SeededRng, Tensor, TensorArena};

use crate::layer::join_name;
use crate::{AxisRole, Layer, NnError, Param, Result};

/// A 2-D convolution over `[batch, in_channels, h, w]` feature maps.
///
/// The weight has shape `[out_channels, in_channels, k, k]` with axis roles
/// `[OutFeatures, InFeatures, Fixed, Fixed]`, so width-heterogeneous
/// extraction slices channels but never the spatial kernel. The
/// implementation uses direct loops — the proxy models operate on tiny
/// feature maps where clarity beats an im2col + GEMM pipeline.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidConfig`] for zero-sized channels, kernel or stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(format!(
                "conv2d sizes must be positive (in={in_channels}, out={out_channels}, k={kernel}, stride={stride})"
            )));
        }
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(
            "weight",
            Tensor::kaiming(&[out_channels, in_channels, kernel, kernel], fan_in, rng),
            vec![
                AxisRole::OutFeatures,
                AxisRole::InFeatures,
                AxisRole::Fixed,
                AxisRole::Fixed,
            ],
        );
        let bias = Param::new(
            "bias",
            Tensor::zeros(&[out_channels]),
            vec![AxisRole::OutFeatures],
        );
        Ok(Conv2d {
            weight,
            bias,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, input: usize) -> usize {
        (input + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let dims = input.dims();
        if input.rank() != 4 || dims[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "Conv2d".into(),
                expected: format!("[batch, {}, h, w] input", self.in_channels),
                got: dims.to_vec(),
            });
        }
        let (batch, _, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let k = self.kernel;
        let s = self.stride;
        let p = self.padding as isize;
        let x = input.as_slice();
        let wgt = self.weight.value.as_slice();
        let b = self.bias.value.as_slice();
        let mut out = TensorArena::global().lease_zeroed(batch * self.out_channels * oh * ow);

        for n in 0..batch {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b[oc];
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xv = x[((n * self.in_channels + ic) * h + iy as usize) * w
                                        + ix as usize];
                                    let wv = wgt[((oc * self.in_channels + ic) * k + ky) * k + kx];
                                    acc += xv * wv;
                                }
                            }
                        }
                        out[((n * self.out_channels + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_pool(out, &[batch, self.out_channels, oh, ow])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Conv2d".into()))?;
        let dims = input.dims();
        let (batch, h, w) = (dims[0], dims[2], dims[3]);
        let odims = grad_output.dims();
        let (oh, ow) = (odims[2], odims[3]);
        let k = self.kernel;
        let s = self.stride;
        let p = self.padding as isize;
        let x = input.as_slice();
        let dy = grad_output.as_slice();
        let wgt = self.weight.value.as_slice();

        let mut dx = TensorArena::global().lease_zeroed(x.len());
        let dw = self.weight.grad.as_mut_slice();
        let db = self.bias.grad.as_mut_slice();

        for n in 0..batch {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dy[((n * self.out_channels + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        db[oc] += g;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let x_idx = ((n * self.in_channels + ic) * h + iy as usize) * w
                                        + ix as usize;
                                    let w_idx = ((oc * self.in_channels + ic) * k + ky) * k + kx;
                                    dw[w_idx] += g * x[x_idx];
                                    dx[x_idx] += g * wgt[w_idx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_pool(dx, dims)?)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_name(prefix, "weight"), &self.weight);
        f(&join_name(prefix, "bias"), &self.bias);
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_name(prefix, "weight"), &mut self.weight);
        f(&join_name(prefix, "bias"), &mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng).unwrap();
        // Set weight to a delta kernel.
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0).unwrap();
        conv.weight.value = w;
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn output_shape_with_stride() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        assert_eq!(conv.output_size(8), 4);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = SeededRng::new(2);
        assert!(Conv2d::new(0, 4, 3, 1, 1, &mut rng).is_err());
        assert!(Conv2d::new(4, 4, 0, 1, 1, &mut rng).is_err());
    }

    #[test]
    fn wrong_channel_count_rejected() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng).unwrap();
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 4, 4]), true).is_err());
    }

    #[test]
    fn gradient_check_small_conv() {
        let mut rng = SeededRng::new(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, true).unwrap();
        let loss_weights = Tensor::randn(y.dims(), 1.0, &mut rng);
        let dx = conv.backward(&loss_weights).unwrap();
        let dw_analytic = conv.weight.grad.clone();

        let eps = 1e-2;
        // Check a handful of input positions.
        for idx in [0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = conv
                .forward(&xp, true)
                .unwrap()
                .mul(&loss_weights)
                .unwrap()
                .sum();
            let fm = conv
                .forward(&xm, true)
                .unwrap()
                .mul(&loss_weights)
                .unwrap()
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 5e-2,
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
        // Check a handful of weight positions.
        for idx in [0usize, 10, 25, 50] {
            let orig = conv.weight.value.as_slice()[idx];
            conv.weight.value.as_mut_slice()[idx] = orig + eps;
            let fp = conv
                .forward(&x, true)
                .unwrap()
                .mul(&loss_weights)
                .unwrap()
                .sum();
            conv.weight.value.as_mut_slice()[idx] = orig - eps;
            let fm = conv
                .forward(&x, true)
                .unwrap()
                .mul(&loss_weights)
                .unwrap()
                .sum();
            conv.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dw_analytic.as_slice()[idx] - numeric).abs() < 5e-2,
                "dw[{idx}]: {} vs {numeric}",
                dw_analytic.as_slice()[idx]
            );
        }
    }

    #[test]
    fn axis_roles_mark_channels_only() {
        let mut rng = SeededRng::new(5);
        let conv = Conv2d::new(4, 8, 3, 1, 1, &mut rng).unwrap();
        conv.visit_params("c1", &mut |name, p| {
            if name.ends_with("weight") {
                assert_eq!(
                    p.roles,
                    vec![
                        AxisRole::OutFeatures,
                        AxisRole::InFeatures,
                        AxisRole::Fixed,
                        AxisRole::Fixed
                    ]
                );
            } else {
                assert_eq!(p.roles, vec![AxisRole::OutFeatures]);
            }
        });
    }
}
