//! # mhfl-nn
//!
//! Neural-network building blocks for the PracMHBench reproduction.
//!
//! The crate provides:
//!
//! * [`Param`] / [`AxisRole`] — named parameter tensors annotated with which
//!   axes correspond to output/input feature channels, the metadata that
//!   width-heterogeneous sub-model extraction relies on;
//! * [`StateDict`] — the serialisable map of parameter name → tensor that all
//!   federated aggregation operates on;
//! * [`Layer`] implementations — [`Linear`], [`Conv2d`], [`LayerNorm`],
//!   [`ChannelNorm2d`], [`Relu`], [`Gelu`], [`Embedding`], [`SelfAttention`],
//!   [`GlobalAvgPool2d`], [`Flatten`] and the [`Sequential`] container — each
//!   with an explicit, cache-based backward pass (no autograd tape needed for
//!   the small proxy models used by the benchmark);
//! * loss functions ([`loss`]) — cross-entropy, soft-label distillation,
//!   mean-squared error and prototype-distance regularisation;
//! * [`Sgd`] — stochastic gradient descent with momentum and weight decay.
//!
//! The design goal is that every model parameter is reachable by name through
//! [`Layer::visit_params`], so that the MHFL algorithms can slice, transmit
//! and aggregate parameters without knowing the concrete architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod attention;
mod conv;
mod embedding;
mod error;
mod layer;
mod linear;
pub mod loss;
mod norm;
mod optim;
mod param;
mod pool;
mod state;

pub use activation::{Gelu, Relu, Tanh};
pub use attention::SelfAttention;
pub use conv::Conv2d;
pub use embedding::Embedding;
pub use error::NnError;
pub use layer::{load_state_dict, num_params_of, param_specs_of, state_dict_of, Layer, Sequential};
pub use linear::Linear;
pub use norm::{ChannelNorm2d, LayerNorm};
pub use optim::{Sgd, SgdConfig};
pub use param::{AxisRole, Param, ParamSpec};
pub use pool::{Flatten, GlobalAvgPool2d, MeanPool1d};
pub use state::StateDict;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
