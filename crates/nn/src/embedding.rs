//! Token embedding layer for the NLP proxy models.

use mhfl_tensor::{SeededRng, Tensor, TensorArena};

use crate::layer::join_name;
use crate::{AxisRole, Layer, NnError, Param, Result};

/// A lookup table mapping token ids to dense vectors.
///
/// Input is a `[batch, seq]` tensor whose entries are token ids stored as
/// `f32` (rounded to the nearest integer, clamped to the vocabulary); output
/// is `[batch, seq, dim]`. The vocabulary axis is `Fixed` (every sub-model
/// must understand the full vocabulary) while the embedding dimension is
/// width-scalable.
#[derive(Debug)]
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
    cached_ids: Option<Vec<usize>>,
    cached_dims: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding table with normally-distributed entries.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidConfig`] for a zero-sized vocabulary or dimension.
    pub fn new(vocab: usize, dim: usize, rng: &mut SeededRng) -> Result<Self> {
        if vocab == 0 || dim == 0 {
            return Err(NnError::InvalidConfig(format!(
                "embedding requires positive sizes (vocab={vocab}, dim={dim})"
            )));
        }
        let table = Param::new(
            "weight",
            Tensor::randn(&[vocab, dim], 0.1, rng),
            vec![AxisRole::Fixed, AxisRole::OutFeatures],
        );
        Ok(Embedding {
            table,
            vocab,
            dim,
            cached_ids: None,
            cached_dims: None,
        })
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.rank() != 2 {
            return Err(NnError::BadInput {
                layer: "Embedding".into(),
                expected: "[batch, seq] token-id input".into(),
                got: input.dims().to_vec(),
            });
        }
        let dims = input.dims().to_vec();
        let (b, s) = (dims[0], dims[1]);
        let ids: Vec<usize> = input
            .as_slice()
            .iter()
            .map(|&v| (v.round().max(0.0) as usize).min(self.vocab - 1))
            .collect();
        let table = self.table.value.as_slice();
        let mut out = TensorArena::global().lease_zeroed(b * s * self.dim);
        for (pos, &id) in ids.iter().enumerate() {
            out[pos * self.dim..(pos + 1) * self.dim]
                .copy_from_slice(&table[id * self.dim..(id + 1) * self.dim]);
        }
        self.cached_ids = Some(ids);
        self.cached_dims = Some(dims);
        Ok(Tensor::from_pool(out, &[b, s, self.dim])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let ids = self
            .cached_ids
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Embedding".into()))?;
        let dims = self.cached_dims.as_ref().expect("cached with ids");
        let dy = grad_output.as_slice();
        let grad = self.table.grad.as_mut_slice();
        for (pos, &id) in ids.iter().enumerate() {
            for j in 0..self.dim {
                grad[id * self.dim + j] += dy[pos * self.dim + j];
            }
        }
        // Token ids are discrete inputs; the "gradient" w.r.t. them is zero.
        Ok(Tensor::zeros(dims))
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_name(prefix, "weight"), &self.table);
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_name(prefix, "weight"), &mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = SeededRng::new(0);
        let mut emb = Embedding::new(5, 3, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![0.0, 4.0], &[1, 2]).unwrap();
        let y = emb.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[1, 2, 3]);
        let table = emb.table.value.as_slice().to_vec();
        assert_eq!(&y.as_slice()[0..3], &table[0..3]);
        assert_eq!(&y.as_slice()[3..6], &table[12..15]);
    }

    #[test]
    fn out_of_range_ids_are_clamped() {
        let mut rng = SeededRng::new(1);
        let mut emb = Embedding::new(4, 2, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![100.0, -3.0], &[1, 2]).unwrap();
        let y = emb.forward(&x, true).unwrap();
        let table = emb.table.value.as_slice().to_vec();
        assert_eq!(&y.as_slice()[0..2], &table[6..8]); // clamped to vocab-1
        assert_eq!(&y.as_slice()[2..4], &table[0..2]); // clamped to 0
    }

    #[test]
    fn backward_accumulates_per_token() {
        let mut rng = SeededRng::new(2);
        let mut emb = Embedding::new(3, 2, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        emb.forward(&x, true).unwrap();
        let dy = Tensor::ones(&[1, 2, 2]);
        emb.backward(&dy).unwrap();
        // Token 1 appears twice, so its gradient rows accumulate to 2.
        assert_eq!(emb.table.grad.as_slice()[2], 2.0);
        assert_eq!(emb.table.grad.as_slice()[3], 2.0);
        assert_eq!(emb.table.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn config_and_shape_validation() {
        let mut rng = SeededRng::new(3);
        assert!(Embedding::new(0, 4, &mut rng).is_err());
        let mut emb = Embedding::new(4, 4, &mut rng).unwrap();
        assert!(emb.forward(&Tensor::zeros(&[4]), true).is_err());
        assert!(emb.backward(&Tensor::zeros(&[1, 1, 4])).is_err());
    }
}
