//! Named parameters and the axis-role metadata used by sub-model extraction.

use mhfl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The semantic role of one axis of a parameter tensor.
///
/// Width-heterogeneous algorithms (Fjord, SHeteroFL, FedRolex) shrink a model
/// by selecting a subset of feature channels. To do so generically they must
/// know, for every parameter, which axes index output features (rows of a
/// weight matrix, output channels of a convolution) and which index input
/// features. Axes that must never be sliced — e.g. the class dimension of the
/// final classifier or a convolution's spatial kernel axes — are `Fixed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AxisRole {
    /// Axis indexes output features/channels; scaled with model width.
    OutFeatures,
    /// Axis indexes input features/channels; scaled with the previous layer's width.
    InFeatures,
    /// Axis must keep its full extent in every sub-model.
    Fixed,
}

/// A trainable parameter: value, accumulated gradient and axis metadata.
#[derive(Debug, Clone)]
pub struct Param {
    /// Local (unqualified) parameter name, e.g. `"weight"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Role of each axis of `value`.
    pub roles: Vec<AxisRole>,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    ///
    /// # Panics
    /// Panics if `roles.len()` differs from the tensor rank — that is a
    /// programming error in layer construction, not a runtime condition.
    pub fn new(name: impl Into<String>, value: Tensor, roles: Vec<AxisRole>) -> Self {
        assert_eq!(
            roles.len(),
            value.rank(),
            "axis roles must cover every dimension of the parameter"
        );
        let grad = Tensor::zeros(value.dims());
        Param {
            name: name.into(),
            value,
            grad,
            roles,
        }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.dims());
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A lightweight description of a parameter: its fully-qualified name, shape
/// and axis roles. Used by the device cost model and the extraction planners
/// without holding the actual values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Fully qualified parameter name, e.g. `"block2.conv1.weight"`.
    pub name: String,
    /// Full-model shape of the parameter.
    pub shape: Vec<usize>,
    /// Role of each axis.
    pub roles: Vec<AxisRole>,
}

impl ParamSpec {
    /// Number of scalar elements described by the spec.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Returns `true` if any axis is width-scalable.
    pub fn is_width_scalable(&self) -> bool {
        self.roles
            .iter()
            .any(|r| matches!(r, AxisRole::OutFeatures | AxisRole::InFeatures))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_and_zero_grad() {
        let mut p = Param::new(
            "weight",
            Tensor::ones(&[4, 3]),
            vec![AxisRole::OutFeatures, AxisRole::InFeatures],
        );
        assert_eq!(p.grad.dims(), &[4, 3]);
        p.grad = Tensor::ones(&[4, 3]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "axis roles")]
    fn param_rejects_role_mismatch() {
        let _ = Param::new("w", Tensor::ones(&[2, 2]), vec![AxisRole::Fixed]);
    }

    #[test]
    fn spec_helpers() {
        let spec = ParamSpec {
            name: "head.weight".into(),
            shape: vec![10, 64],
            roles: vec![AxisRole::Fixed, AxisRole::InFeatures],
        };
        assert_eq!(spec.numel(), 640);
        assert!(spec.is_width_scalable());
        let fixed = ParamSpec {
            name: "norm.beta".into(),
            shape: vec![10],
            roles: vec![AxisRole::Fixed],
        };
        assert!(!fixed.is_width_scalable());
    }
}
