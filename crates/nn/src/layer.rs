//! The [`Layer`] trait, the [`Sequential`] container and state-dict plumbing.

use mhfl_tensor::Tensor;

use crate::{NnError, Param, ParamSpec, Result, StateDict};

/// Joins a parameter-name prefix with a local name using `.` separators.
pub(crate) fn join_name(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// A differentiable module with named parameters.
///
/// Layers cache whatever they need during [`Layer::forward`] so that
/// [`Layer::backward`] can compute input gradients and accumulate parameter
/// gradients without a global autograd tape. This is sufficient (and much
/// simpler) for the feed-forward proxy models used in the benchmark.
pub trait Layer {
    /// Runs the layer on `input`, caching activations for the backward pass.
    ///
    /// `train` distinguishes training from evaluation behaviour (normalisation
    /// layers and dropout-like layers may differ).
    ///
    /// # Errors
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Propagates `grad_output` backwards, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    ///
    /// # Errors
    /// Returns an error if called before [`Layer::forward`] or on a gradient
    /// of unexpected shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every parameter with its fully-qualified name.
    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param));

    /// Visits every parameter mutably with its fully-qualified name.
    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param));

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params_mut("", &mut |_, p| p.zero_grad());
    }
}

/// Extracts a [`StateDict`] (clone of every parameter value) from a layer tree.
pub fn state_dict_of(layer: &dyn Layer, prefix: &str) -> StateDict {
    let mut sd = StateDict::new();
    layer.visit_params(prefix, &mut |name, p| sd.insert(name, p.value.clone()));
    sd
}

/// Loads parameter values from a state dict into a layer tree.
///
/// Every parameter of the layer must be present in the dict with a matching
/// shape; extra entries in the dict are ignored (they may belong to deeper
/// models the sub-model was extracted from).
///
/// # Errors
/// Returns [`NnError::MissingParam`] or [`NnError::ParamShapeMismatch`].
pub fn load_state_dict(layer: &mut dyn Layer, prefix: &str, sd: &StateDict) -> Result<()> {
    let mut failure: Option<NnError> = None;
    layer.visit_params_mut(prefix, &mut |name, p| {
        if failure.is_some() {
            return;
        }
        match sd.get(name) {
            None => failure = Some(NnError::MissingParam(name.to_string())),
            Some(t) if t.dims() != p.value.dims() => {
                failure = Some(NnError::ParamShapeMismatch {
                    name: name.to_string(),
                    expected: p.value.dims().to_vec(),
                    got: t.dims().to_vec(),
                })
            }
            Some(t) => p.value = t.clone(),
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collects [`ParamSpec`]s (names, shapes, axis roles) for a layer tree.
pub fn param_specs_of(layer: &dyn Layer, prefix: &str) -> Vec<ParamSpec> {
    let mut specs = Vec::new();
    layer.visit_params(prefix, &mut |name, p| {
        specs.push(ParamSpec {
            name: name.to_string(),
            shape: p.value.dims().to_vec(),
            roles: p.roles.clone(),
        });
    });
    specs
}

/// Total number of scalar parameters in a layer tree.
pub fn num_params_of(layer: &dyn Layer) -> usize {
    let mut n = 0;
    layer.visit_params("", &mut |_, p| n += p.len());
    n
}

/// An ordered container of named sub-layers executed in sequence.
///
/// ```
/// use mhfl_nn::{Linear, Relu, Sequential, Layer};
/// use mhfl_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Sequential::new();
/// net.push("fc1", Linear::new(4, 8, &mut rng));
/// net.push("act", Relu::new());
/// net.push("fc2", Linear::new(8, 2, &mut rng));
/// let out = net.forward(&Tensor::zeros(&[3, 4]), true)?;
/// assert_eq!(out.dims(), &[3, 2]);
/// # Ok::<(), mhfl_nn::NnError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<(String, Box<dyn Layer>)>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a named sub-layer.
    pub fn push(&mut self, name: impl Into<String>, layer: impl Layer + 'static) {
        self.layers.push((name.into(), Box::new(layer)));
    }

    /// Appends an already-boxed sub-layer.
    pub fn push_boxed(&mut self, name: impl Into<String>, layer: Box<dyn Layer>) {
        self.layers.push((name.into(), layer));
    }

    /// Number of sub-layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the container has no sub-layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of the sub-layers in execution order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layer_names())
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut current = input.clone();
        for (_, layer) in self.layers.iter_mut() {
            current = layer.forward(&current, train)?;
        }
        Ok(current)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut grad = grad_output.clone();
        for (_, layer) in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        for (name, layer) in &self.layers {
            layer.visit_params(&join_name(prefix, name), f);
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        for (name, layer) in self.layers.iter_mut() {
            layer.visit_params_mut(&join_name(prefix, name), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use mhfl_tensor::SeededRng;

    fn small_net(rng: &mut SeededRng) -> Sequential {
        let mut net = Sequential::new();
        net.push("fc1", Linear::new(3, 5, rng));
        net.push("act", Relu::new());
        net.push("fc2", Linear::new(5, 2, rng));
        net
    }

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut rng = SeededRng::new(1);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        let dx = net.backward(&Tensor::ones(&[4, 2])).unwrap();
        assert_eq!(dx.dims(), &[4, 3]);
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut rng = SeededRng::new(2);
        let mut net = small_net(&mut rng);
        let sd = state_dict_of(&net, "");
        assert!(sd.contains("fc1.weight"));
        assert!(sd.contains("fc2.bias"));
        assert_eq!(sd.len(), 4);

        // Perturb then restore.
        net.visit_params_mut("", &mut |_, p| p.value.scale_inplace(0.0));
        load_state_dict(&mut net, "", &sd).unwrap();
        let restored = state_dict_of(&net, "");
        assert_eq!(restored, sd);
    }

    #[test]
    fn load_reports_missing_and_mismatched() {
        let mut rng = SeededRng::new(3);
        let mut net = small_net(&mut rng);
        let empty = StateDict::new();
        assert!(matches!(
            load_state_dict(&mut net, "", &empty),
            Err(NnError::MissingParam(_))
        ));

        let mut bad = state_dict_of(&net, "");
        bad.insert("fc1.weight", Tensor::zeros(&[1, 1]));
        assert!(matches!(
            load_state_dict(&mut net, "", &bad),
            Err(NnError::ParamShapeMismatch { .. })
        ));
    }

    #[test]
    fn param_specs_and_counts() {
        let mut rng = SeededRng::new(4);
        let net = small_net(&mut rng);
        let specs = param_specs_of(&net, "model");
        assert!(specs.iter().any(|s| s.name == "model.fc1.weight"));
        let total: usize = specs.iter().map(ParamSpec::numel).sum();
        assert_eq!(total, num_params_of(&net));
        assert_eq!(total, 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut rng = SeededRng::new(5);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let y = net.forward(&x, true).unwrap();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        let mut nonzero = 0;
        net.visit_params("", &mut |_, p| {
            if p.grad.norm() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero > 0);
        net.zero_grad();
        net.visit_params("", &mut |_, p| assert_eq!(p.grad.norm(), 0.0));
    }
}
