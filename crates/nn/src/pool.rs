//! Pooling and reshaping layers.

use mhfl_tensor::{Tensor, TensorArena};

use crate::{Layer, NnError, Param, Result};

/// Global average pooling over the spatial dimensions of a
/// `[batch, channels, h, w]` tensor, producing `[batch, channels]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a new global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool2d { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "GlobalAvgPool2d".into(),
                expected: "[batch, channels, h, w] input".into(),
                got: input.dims().to_vec(),
            });
        }
        let dims = input.dims().to_vec();
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = (h * w) as f32;
        let x = input.as_slice();
        let mut out = TensorArena::global().lease_zeroed(b * c);
        for n in 0..b {
            for ch in 0..c {
                let start = (n * c + ch) * h * w;
                out[n * c + ch] = x[start..start + h * w].iter().sum::<f32>() / spatial;
            }
        }
        self.cached_dims = Some(dims);
        Ok(Tensor::from_pool(out, &[b, c])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("GlobalAvgPool2d".into()))?;
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = (h * w) as f32;
        let dy = grad_output.as_slice();
        let mut dx = TensorArena::global().lease_zeroed(b * c * h * w);
        for n in 0..b {
            for ch in 0..c {
                let g = dy[n * c + ch] / spatial;
                let start = (n * c + ch) * h * w;
                dx[start..start + h * w].iter_mut().for_each(|v| *v = g);
            }
        }
        Ok(Tensor::from_pool(dx, dims)?)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}
    fn visit_params_mut(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}
}

/// Flattens all trailing dimensions into one: `[batch, ...] -> [batch, n]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a new flattening layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.rank() < 2 {
            return Err(NnError::BadInput {
                layer: "Flatten".into(),
                expected: "an input with a batch dimension".into(),
                got: input.dims().to_vec(),
            });
        }
        let dims = input.dims().to_vec();
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.cached_dims = Some(dims);
        Ok(input.reshape(&[batch, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Flatten".into()))?;
        Ok(grad_output.reshape(dims)?)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}
    fn visit_params_mut(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}
}

/// Mean pooling over the sequence dimension of a `[batch, seq, features]`
/// tensor, producing `[batch, features]`. Used to turn token embeddings into
/// a sequence representation in the NLP proxy models.
#[derive(Debug, Default)]
pub struct MeanPool1d {
    cached_dims: Option<Vec<usize>>,
}

impl MeanPool1d {
    /// Creates a new sequence mean-pooling layer.
    pub fn new() -> Self {
        MeanPool1d { cached_dims: None }
    }
}

impl Layer for MeanPool1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.rank() != 3 {
            return Err(NnError::BadInput {
                layer: "MeanPool1d".into(),
                expected: "[batch, seq, features] input".into(),
                got: input.dims().to_vec(),
            });
        }
        let dims = input.dims().to_vec();
        let (b, s, f) = (dims[0], dims[1], dims[2]);
        let x = input.as_slice();
        let mut out = TensorArena::global().lease_zeroed(b * f);
        for n in 0..b {
            for t in 0..s {
                for j in 0..f {
                    out[n * f + j] += x[(n * s + t) * f + j];
                }
            }
        }
        out.iter_mut().for_each(|v| *v /= s as f32);
        self.cached_dims = Some(dims);
        Ok(Tensor::from_pool(out, &[b, f])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("MeanPool1d".into()))?;
        let (b, s, f) = (dims[0], dims[1], dims[2]);
        let dy = grad_output.as_slice();
        let mut dx = TensorArena::global().lease_zeroed(b * s * f);
        for n in 0..b {
            for t in 0..s {
                for j in 0..f {
                    dx[(n * s + t) * f + j] = dy[n * f + j] / s as f32;
                }
            }
        }
        Ok(Tensor::from_pool(dx, dims)?)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}
    fn visit_params_mut(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_avg_pool_means_spatially() {
        let mut pool = GlobalAvgPool2d::new();
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let dx = pool
            .backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(dx.dims(), &[1, 2, 2, 2]);
        assert_eq!(dx.as_slice()[0], 1.0);
        assert_eq!(dx.as_slice()[4], 2.0);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut flat = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = flat.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let dx = flat.backward(&Tensor::ones(&[2, 12])).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn mean_pool_sequence() {
        let mut pool = MeanPool1d::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[3.0, 4.0]);
        let dx = pool
            .backward(&Tensor::from_vec(vec![3.0, 6.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn shape_validation() {
        let mut pool = GlobalAvgPool2d::new();
        assert!(pool.forward(&Tensor::zeros(&[2, 3]), true).is_err());
        let mut mp = MeanPool1d::new();
        assert!(mp.forward(&Tensor::zeros(&[2, 3]), true).is_err());
        let mut fl = Flatten::new();
        assert!(fl.forward(&Tensor::zeros(&[3]), true).is_err());
        assert!(fl.backward(&Tensor::zeros(&[3, 1])).is_err());
    }
}
