//! Loss functions used by the federated training loops.
//!
//! Every function returns both the scalar loss and the gradient with respect
//! to its first argument, averaged over the batch, so callers can feed the
//! gradient straight into [`crate::Layer::backward`].

use mhfl_tensor::Tensor;

use crate::{NnError, Result};

fn check_logits(logits: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: op.to_string(),
            expected: "[batch, classes] logits".into(),
            got: logits.dims().to_vec(),
        });
    }
    Ok((logits.dims()[0], logits.dims()[1]))
}

/// Softmax cross-entropy against integer class labels.
///
/// Returns `(mean loss, d loss / d logits)`.
///
/// # Errors
/// Returns an error if `logits` is not `[batch, classes]`, the label count
/// differs from the batch size, or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (batch, classes) = check_logits(logits, "cross_entropy")?;
    if labels.len() != batch {
        return Err(NnError::BadInput {
            layer: "cross_entropy".into(),
            expected: format!("{batch} labels"),
            got: vec![labels.len()],
        });
    }
    let probs = logits.softmax_rows()?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::BadInput {
                layer: "cross_entropy".into(),
                expected: format!("labels < {classes}"),
                got: vec![label],
            });
        }
        let p = probs.at(&[i, label])?.max(1e-12);
        loss -= p.ln();
        let current = grad.at(&[i, label])?;
        grad.set(&[i, label], current - 1.0)?;
    }
    let scale = 1.0 / batch as f32;
    Ok((loss * scale, grad.scale(scale)))
}

/// Knowledge-distillation loss: cross-entropy of the student's
/// temperature-softened predictions against teacher probabilities.
///
/// Returns `(mean loss, d loss / d student_logits)`. The gradient carries the
/// usual `T` factor so it can be mixed with a hard-label loss at comparable
/// magnitude.
///
/// # Errors
/// Returns an error if the logits/targets disagree in shape.
pub fn soft_cross_entropy(
    student_logits: &Tensor,
    teacher_probs: &Tensor,
    temperature: f32,
) -> Result<(f32, Tensor)> {
    let (batch, _classes) = check_logits(student_logits, "soft_cross_entropy")?;
    if teacher_probs.dims() != student_logits.dims() {
        return Err(NnError::BadInput {
            layer: "soft_cross_entropy".into(),
            expected: format!("teacher probabilities of shape {:?}", student_logits.dims()),
            got: teacher_probs.dims().to_vec(),
        });
    }
    let t = temperature.max(1e-3);
    let soft_student = student_logits.scale(1.0 / t).softmax_rows()?;
    let mut loss = 0.0f32;
    for (p, q) in teacher_probs.as_slice().iter().zip(soft_student.as_slice()) {
        if *p > 0.0 {
            loss -= p * q.max(1e-12).ln();
        }
    }
    // d/d logits of CE(teacher, softmax(logits / T)) = (softmax(logits/T) - teacher) / T;
    // multiply by T^2 (Hinton et al.) so gradient magnitudes match the hard loss: net factor T.
    let grad = soft_student.sub(teacher_probs)?.scale(t / batch as f32);
    Ok((loss / batch as f32, grad))
}

/// Mean squared error between two same-shaped tensors.
///
/// Returns `(mean loss, d loss / d prediction)`.
///
/// # Errors
/// Returns an error if the shapes differ.
pub fn mse(prediction: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    if prediction.dims() != target.dims() {
        return Err(NnError::BadInput {
            layer: "mse".into(),
            expected: format!("target of shape {:?}", prediction.dims()),
            got: target.dims().to_vec(),
        });
    }
    let n = prediction.len().max(1) as f32;
    let diff = prediction.sub(target)?;
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// Prototype-regularisation loss used by FedProto: the squared distance
/// between each sample's feature vector and the global prototype of its
/// class, for classes that have a prototype.
///
/// `features` is `[batch, dim]`, `prototypes` is `[classes, dim]` and
/// `has_prototype[c]` says whether class `c`'s row is valid.
///
/// Returns `(mean loss, d loss / d features)`.
///
/// # Errors
/// Returns an error on rank or dimension mismatches.
pub fn prototype_loss(
    features: &Tensor,
    labels: &[usize],
    prototypes: &Tensor,
    has_prototype: &[bool],
) -> Result<(f32, Tensor)> {
    if features.rank() != 2 || prototypes.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "prototype_loss".into(),
            expected: "rank-2 features and prototypes".into(),
            got: features.dims().to_vec(),
        });
    }
    let (batch, dim) = (features.dims()[0], features.dims()[1]);
    let classes = prototypes.dims()[0];
    if prototypes.dims()[1] != dim || has_prototype.len() != classes || labels.len() != batch {
        return Err(NnError::BadInput {
            layer: "prototype_loss".into(),
            expected: format!("prototypes [{classes}, {dim}], {batch} labels"),
            got: prototypes.dims().to_vec(),
        });
    }
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(&[batch, dim]);
    let mut active = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        if label >= classes || !has_prototype[label] {
            continue;
        }
        active += 1;
        for j in 0..dim {
            let diff = features.at(&[i, j])? - prototypes.at(&[label, j])?;
            loss += diff * diff;
            grad.set(&[i, j], 2.0 * diff)?;
        }
    }
    if active == 0 {
        return Ok((0.0, Tensor::zeros(&[batch, dim])));
    }
    let scale = 1.0 / (active as f32 * dim as f32);
    Ok((loss * scale, grad.scale(scale)))
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
/// Returns an error if `logits` is not `[batch, classes]` or label count differs.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let (batch, _classes) = check_logits(logits, "accuracy")?;
    if labels.len() != batch {
        return Err(NnError::BadInput {
            layer: "accuracy".into(),
            expected: format!("{batch} labels"),
            got: vec![labels.len()],
        });
    }
    if batch == 0 {
        return Ok(0.0);
    }
    let preds = logits.argmax_rows()?;
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / batch as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_tensor::SeededRng;

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let (loss, grad) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
        assert!(grad.norm() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_prediction() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, grad) = cross_entropy(&logits, &[2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient pushes probability toward the label.
        assert!(grad.at(&[0, 2]).unwrap() < 0.0);
        assert!(grad.at(&[0, 0]).unwrap() > 0.0);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let mut rng = SeededRng::new(0);
        let logits = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let labels = [1usize, 4, 0];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 7, 14] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = cross_entropy(&lp, &labels).unwrap().0;
            let fm = cross_entropy(&lm, &labels).unwrap().0;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((grad.as_slice()[idx] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 5]).is_err());
        assert!(cross_entropy(&Tensor::zeros(&[3]), &[0]).is_err());
    }

    #[test]
    fn soft_cross_entropy_matches_teacher_at_optimum() {
        let teacher = Tensor::from_vec(vec![0.7, 0.2, 0.1], &[1, 3]).unwrap();
        // Student logits already proportional to teacher log-probs.
        let student = teacher.map(|p| p.ln());
        let (_, grad) = soft_cross_entropy(&student, &teacher, 1.0).unwrap();
        assert!(grad.norm() < 1e-4);
        let off = Tensor::from_vec(vec![5.0, -5.0, 0.0], &[1, 3]).unwrap();
        let (loss_off, _) = soft_cross_entropy(&off, &teacher, 1.0).unwrap();
        let (loss_on, _) = soft_cross_entropy(&student, &teacher, 1.0).unwrap();
        assert!(loss_off > loss_on);
    }

    #[test]
    fn mse_basics() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, grad) = mse(&a, &b).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
        assert!(mse(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn prototype_loss_pulls_towards_prototype() {
        let features = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap();
        let protos = Tensor::from_vec(vec![0.0, 0.0, 5.0, 5.0], &[2, 2]).unwrap();
        let (loss, grad) = prototype_loss(&features, &[0], &protos, &[true, true]).unwrap();
        assert!(loss > 0.0);
        // Gradient points from prototype toward feature (positive along x).
        assert!(grad.at(&[0, 0]).unwrap() > 0.0);
        // Missing prototype: zero loss.
        let (loss2, grad2) = prototype_loss(&features, &[1], &protos, &[true, false]).unwrap();
        assert_eq!(loss2, 0.0);
        assert_eq!(grad2.norm(), 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
