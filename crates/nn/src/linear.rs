//! Fully-connected layer.

use mhfl_tensor::{SeededRng, Tensor};

use crate::layer::join_name;
use crate::{AxisRole, Layer, NnError, Param, Result};

/// A fully-connected (affine) layer: `y = x Wᵀ + b`.
///
/// * `weight` has shape `[out_features, in_features]` with axis roles
///   `[OutFeatures, InFeatures]` — both axes participate in width scaling.
/// * `bias` has shape `[out_features]` with role `[OutFeatures]`.
///
/// Layers used as classifier heads should be constructed with
/// [`Linear::new_head`], which marks the output axis `Fixed` so sub-model
/// extraction never drops classes.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        Self::with_roles(in_features, out_features, AxisRole::OutFeatures, rng)
    }

    /// Creates a classifier-head linear layer whose output dimension (the
    /// number of classes) is never sliced by width-heterogeneous extraction.
    pub fn new_head(in_features: usize, num_classes: usize, rng: &mut SeededRng) -> Self {
        Self::with_roles(in_features, num_classes, AxisRole::Fixed, rng)
    }

    fn with_roles(
        in_features: usize,
        out_features: usize,
        out_role: AxisRole,
        rng: &mut SeededRng,
    ) -> Self {
        let weight = Param::new(
            "weight",
            Tensor::kaiming(&[out_features, in_features], in_features, rng),
            vec![out_role, AxisRole::InFeatures],
        );
        let bias = Param::new("bias", Tensor::zeros(&[out_features]), vec![out_role]);
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Flattens a possibly 3-D `[batch, seq, features]` input into 2-D,
    /// remembering how to restore the gradient shape.
    fn to_2d(&self, input: &Tensor) -> Result<(Tensor, Option<Vec<usize>>)> {
        match input.rank() {
            2 => Ok((input.clone(), None)),
            3 => {
                let dims = input.dims().to_vec();
                let flat = input.reshape(&[dims[0] * dims[1], dims[2]])?;
                Ok((flat, Some(dims)))
            }
            _ => Err(NnError::BadInput {
                layer: "Linear".into(),
                expected: "rank-2 [batch, features] or rank-3 [batch, seq, features] input".into(),
                got: input.dims().to_vec(),
            }),
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (flat, orig) = self.to_2d(input)?;
        if flat.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: "Linear".into(),
                expected: format!("{} input features", self.in_features),
                got: input.dims().to_vec(),
            });
        }
        // y = x Wᵀ via the transpose-aware kernel: no explicit Wᵀ is ever
        // materialised, and the flattened input moves into the cache instead
        // of being cloned.
        let out = flat
            .matmul_nt(&self.weight.value)?
            .add_row_broadcast(&self.bias.value)?;
        self.cached_input = Some(flat);
        match orig {
            None => Ok(out),
            Some(dims) => Ok(out.reshape(&[dims[0], dims[1], self.out_features])?),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Linear".into()))?;
        let (grad_flat, orig) = self.to_2d(grad_output)?;
        // dW += dYᵀ X, db += colsum(dY), dX = dY W — all without
        // materialising dYᵀ.
        let dw = grad_flat.matmul_tn(input)?;
        self.weight.grad.axpy(1.0, &dw)?;
        let db = grad_flat.col_sums()?;
        self.bias.grad.axpy(1.0, &db)?;
        let dx = grad_flat.matmul(&self.weight.value)?;
        match orig {
            None => Ok(dx),
            Some(dims) => Ok(dx.reshape(&[dims[0], dims[1], self.in_features])?),
        }
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_name(prefix, "weight"), &self.weight);
        f(&join_name(prefix, "bias"), &self.bias);
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_name(prefix, "weight"), &mut self.weight);
        f(&join_name(prefix, "bias"), &mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::num_params_of;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = SeededRng::new(0);
        let mut lin = Linear::new(2, 3, &mut rng);
        // Overwrite with known values.
        lin.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        lin.bias.value = Tensor::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        let y = lin.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn backward_gradient_check() {
        // Finite-difference check of dL/dW and dL/dx for L = sum(y).
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = lin.forward(&x, true).unwrap();
        let dx = lin.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-3;
        // dL/dx[0,0] via finite differences.
        let mut x_plus = x.clone();
        x_plus.as_mut_slice()[0] += eps;
        let mut x_minus = x.clone();
        x_minus.as_mut_slice()[0] -= eps;
        let f_plus = lin.forward(&x_plus, true).unwrap().sum();
        let f_minus = lin.forward(&x_minus, true).unwrap().sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (dx.as_slice()[0] - numeric).abs() < 1e-2,
            "{} vs {numeric}",
            dx.as_slice()[0]
        );

        // dL/dW[0,0] via finite differences.
        let analytic_dw = lin.weight.grad.as_slice()[0];
        lin.weight.value.as_mut_slice()[0] += eps;
        let f_plus = lin.forward(&x, true).unwrap().sum();
        lin.weight.value.as_mut_slice()[0] -= 2.0 * eps;
        let f_minus = lin.forward(&x, true).unwrap().sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (analytic_dw - numeric).abs() < 1e-2,
            "{analytic_dw} vs {numeric}"
        );
    }

    #[test]
    fn head_marks_output_axis_fixed() {
        let mut rng = SeededRng::new(2);
        let head = Linear::new_head(8, 10, &mut rng);
        head.visit_params("", &mut |name, p| {
            if name == "weight" {
                assert_eq!(p.roles[0], AxisRole::Fixed);
                assert_eq!(p.roles[1], AxisRole::InFeatures);
            }
        });
        let body = Linear::new(8, 10, &mut rng);
        body.visit_params("", &mut |name, p| {
            if name == "weight" {
                assert_eq!(p.roles[0], AxisRole::OutFeatures);
            }
        });
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = SeededRng::new(3);
        let mut lin = Linear::new(4, 2, &mut rng);
        assert!(lin.forward(&Tensor::zeros(&[2, 3]), true).is_err());
        assert!(lin.forward(&Tensor::zeros(&[2]), true).is_err());
    }

    #[test]
    fn three_dimensional_input_support() {
        let mut rng = SeededRng::new(4);
        let mut lin = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(&[2, 5, 6], 1.0, &mut rng);
        let y = lin.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 5, 4]);
        let dx = lin.backward(&Tensor::ones(&[2, 5, 4])).unwrap();
        assert_eq!(dx.dims(), &[2, 5, 6]);
    }

    #[test]
    fn param_count() {
        let mut rng = SeededRng::new(5);
        let lin = Linear::new(7, 3, &mut rng);
        assert_eq!(num_params_of(&lin), 7 * 3 + 3);
    }
}
