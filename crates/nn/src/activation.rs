//! Parameter-free activation layers.

use mhfl_tensor::Tensor;

use crate::{Layer, NnError, Param, Result};

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Relu".into()))?;
        Ok(grad_output.zip_with(input, |g, x| if x > 0.0 { g } else { 0.0 })?)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}
    fn visit_params_mut(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}
}

/// Gaussian error linear unit (tanh approximation), used by the transformer
/// and ALBERT proxy models.
#[derive(Debug, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
}

impl Gelu {
    /// Creates a new GELU layer.
    pub fn new() -> Self {
        Gelu { cached_input: None }
    }

    fn gelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
    }

    fn gelu_grad(x: f32) -> f32 {
        const C: f32 = 0.797_884_6;
        let inner = C * (x + 0.044_715 * x * x * x);
        let t = inner.tanh();
        let sech2 = 1.0 - t * t;
        0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
    }
}

impl Layer for Gelu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(input.map(Self::gelu))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Gelu".into()))?;
        Ok(grad_output.zip_with(input, |g, x| g * Self::gelu_grad(x))?)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}
    fn visit_params_mut(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}
}

/// Hyperbolic tangent activation, used by the HAR CNN proxy.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a new Tanh layer.
    pub fn new() -> Self {
        Tanh {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let out = self
            .cached_output
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("Tanh".into()))?;
        Ok(grad_output.zip_with(out, |g, y| g * (1.0 - y * y))?)
    }

    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &Param)) {}
    fn visit_params_mut(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_tensor::SeededRng;

    fn finite_diff(layer: &mut dyn Layer, x: &Tensor, idx: usize) -> f32 {
        let eps = 1e-3;
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let fp = layer.forward(&xp, true).unwrap().sum();
        let fm = layer.forward(&xm, true).unwrap().sum();
        (fp - fm) / (2.0 * eps)
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let dx = relu.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[1])).is_err());
        let mut gelu = Gelu::new();
        assert!(gelu.backward(&Tensor::ones(&[1])).is_err());
        let mut tanh = Tanh::new();
        assert!(tanh.backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    fn gelu_gradient_check() {
        let mut rng = SeededRng::new(0);
        let x = Tensor::randn(&[6], 1.0, &mut rng);
        let mut gelu = Gelu::new();
        gelu.forward(&x, true).unwrap();
        let dx = gelu.backward(&Tensor::ones(&[6])).unwrap();
        for i in 0..x.len() {
            let numeric = finite_diff(&mut gelu, &x, i);
            assert!((dx.as_slice()[i] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn tanh_gradient_check() {
        let mut rng = SeededRng::new(1);
        let x = Tensor::randn(&[5], 1.0, &mut rng);
        let mut tanh = Tanh::new();
        tanh.forward(&x, true).unwrap();
        let dx = tanh.backward(&Tensor::ones(&[5])).unwrap();
        for i in 0..x.len() {
            let numeric = finite_diff(&mut tanh, &x, i);
            assert!((dx.as_slice()[i] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn activations_have_no_params() {
        let relu = Relu::new();
        let mut count = 0;
        relu.visit_params("", &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
