//! Stochastic gradient descent with momentum and weight decay.

use std::collections::HashMap;

use mhfl_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{Layer, Result};

/// Hyper-parameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    /// Optional elementwise gradient clipping threshold.
    pub grad_clip: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            grad_clip: Some(5.0),
        }
    }
}

/// Stochastic gradient descent optimiser.
///
/// Velocity buffers are keyed by fully-qualified parameter name, so the same
/// optimiser instance keeps working when a client's sub-model changes shape
/// between rounds (stale buffers with mismatched shapes are reset).
///
/// ```
/// use mhfl_nn::{Linear, Layer, Sgd, SgdConfig};
/// use mhfl_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut layer = Linear::new(4, 2, &mut rng);
/// let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
/// let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
/// let y = layer.forward(&x, true)?;
/// layer.backward(&y)?; // pretend gradient
/// opt.step(&mut layer)?;
/// # Ok::<(), mhfl_nn::NnError>(())
/// ```
#[derive(Debug, Default)]
pub struct Sgd {
    config: SgdConfig,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an optimiser with the given configuration.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            velocity: HashMap::new(),
        }
    }

    /// The optimiser's configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Updates the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one update step to every parameter of `layer` using the
    /// gradients accumulated since the last [`Layer::zero_grad`].
    ///
    /// # Errors
    /// Propagates tensor shape errors (which indicate a bug in layer code).
    pub fn step(&mut self, layer: &mut dyn Layer) -> Result<()> {
        let config = self.config;
        let velocity = &mut self.velocity;
        let mut failure = None;
        layer.visit_params_mut("", &mut |name, p| {
            if failure.is_some() {
                return;
            }
            let mut grad = p.grad.clone();
            if let Some(clip) = config.grad_clip {
                grad = grad.clamp_abs(clip);
            }
            if config.weight_decay != 0.0 {
                if let Err(e) = grad.axpy(config.weight_decay, &p.value) {
                    failure = Some(e.into());
                    return;
                }
            }
            let v = velocity
                .entry(name.to_string())
                .and_modify(|v| {
                    if v.dims() != grad.dims() {
                        *v = Tensor::zeros(grad.dims());
                    }
                })
                .or_insert_with(|| Tensor::zeros(grad.dims()));
            v.scale_inplace(config.momentum);
            if let Err(e) = v.axpy(1.0, &grad) {
                failure = Some(e.into());
                return;
            }
            if let Err(e) = p.value.axpy(-config.lr, v) {
                failure = Some(e.into());
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Forgets all velocity state (used when a client receives a sub-model of
    /// a different shape than the previous round).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::{Linear, Relu, Sequential};
    use mhfl_tensor::SeededRng;

    #[test]
    fn sgd_decreases_loss_on_toy_problem() {
        let mut rng = SeededRng::new(0);
        let mut net = Sequential::new();
        net.push("fc1", Linear::new(2, 16, &mut rng));
        net.push("act", Relu::new());
        net.push("fc2", Linear::new_head(16, 2, &mut rng));
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.2,
            momentum: 0.9,
            weight_decay: 0.0,
            grad_clip: None,
        });

        // XOR-ish separable toy data.
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let labels = [0usize, 1, 1, 0];

        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            net.zero_grad();
            let logits = net.forward(&x, true).unwrap();
            let (loss, grad) = cross_entropy(&logits, &labels).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net).unwrap();
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss did not decrease enough: {last_loss}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(3, 3, &mut rng);
        let before: f32 = {
            let mut norm = 0.0;
            lin.visit_params("", &mut |_, p| norm += p.value.norm_sq());
            norm
        };
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
            grad_clip: None,
        });
        opt.step(&mut lin).unwrap();
        let after: f32 = {
            let mut norm = 0.0;
            lin.visit_params("", &mut |_, p| norm += p.value.norm_sq());
            norm
        };
        assert!(after < before);
    }

    #[test]
    fn velocity_resets_on_shape_change() {
        let mut rng = SeededRng::new(2);
        let mut opt = Sgd::new(SgdConfig::default());
        let mut small = Linear::new(2, 2, &mut rng);
        small.visit_params_mut("", &mut |_, p| p.grad = Tensor::ones(p.value.dims()));
        opt.step(&mut small).unwrap();
        // Same parameter names, different shapes — must not panic.
        let mut large = Linear::new(4, 4, &mut rng);
        large.visit_params_mut("", &mut |_, p| p.grad = Tensor::ones(p.value.dims()));
        opt.step(&mut large).unwrap();
        opt.reset();
        assert!(opt.velocity.is_empty());
    }

    #[test]
    fn grad_clip_limits_update_magnitude() {
        let mut rng = SeededRng::new(3);
        let mut lin = Linear::new(1, 1, &mut rng);
        lin.visit_params_mut("", &mut |_, p| {
            p.grad = Tensor::full(p.value.dims(), 1000.0)
        });
        let before = {
            let mut v = Vec::new();
            lin.visit_params("", &mut |_, p| v.push(p.value.as_slice()[0]));
            v
        };
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
            grad_clip: Some(1.0),
        });
        opt.step(&mut lin).unwrap();
        let after = {
            let mut v = Vec::new();
            lin.visit_params("", &mut |_, p| v.push(p.value.as_slice()[0]));
            v
        };
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() <= 1.0 + 1e-6);
        }
    }
}
