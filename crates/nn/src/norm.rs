//! Normalisation layers.
//!
//! Two flavours are provided, both *batch-independent* so that federated
//! aggregation never has to reconcile running statistics across clients (the
//! strategy HeteroFL's static batch-norm motivates):
//!
//! * [`LayerNorm`] — normalises over the trailing feature dimension, used by
//!   the dense, transformer and ALBERT proxy blocks;
//! * [`ChannelNorm2d`] — instance normalisation over the spatial extent of
//!   each channel, used by the convolutional (ResNet/MobileNet-like) proxies.

use mhfl_tensor::{Tensor, TensorArena};

use crate::layer::join_name;
use crate::{AxisRole, Layer, NnError, Param, Result};

const EPS: f32 = 1e-5;

/// Normalises groups of contiguous values and applies a per-position affine
/// transform. Shared implementation detail of both normalisation layers.
///
/// The cached buffers are arena-leased and recycled on drop, so replacing a
/// layer's cache every forward step is allocation-free in steady state.
#[derive(Debug, Clone)]
struct GroupStats {
    /// Cached normalised values, one entry per input element.
    xhat: Vec<f32>,
    /// Cached reciprocal standard deviation per group.
    inv_std: Vec<f32>,
    group_size: usize,
}

impl Drop for GroupStats {
    fn drop(&mut self) {
        let arena = TensorArena::global();
        arena.recycle(std::mem::take(&mut self.xhat));
        arena.recycle(std::mem::take(&mut self.inv_std));
    }
}

fn normalise_groups(data: &[f32], group_size: usize) -> GroupStats {
    let groups = data.len() / group_size;
    let arena = TensorArena::global();
    let mut xhat = arena.lease_zeroed(data.len());
    let mut inv_std = arena.lease_zeroed(groups);
    for g in 0..groups {
        let slice = &data[g * group_size..(g + 1) * group_size];
        let mean: f32 = slice.iter().sum::<f32>() / group_size as f32;
        let var: f32 =
            slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / group_size as f32;
        let istd = 1.0 / (var + EPS).sqrt();
        inv_std[g] = istd;
        for (i, &x) in slice.iter().enumerate() {
            xhat[g * group_size + i] = (x - mean) * istd;
        }
    }
    GroupStats {
        xhat,
        inv_std,
        group_size,
    }
}

/// Backward pass through group normalisation given upstream gradient w.r.t.
/// the *normalised* values (`d_xhat`). Returns gradient w.r.t. the raw input.
fn normalise_groups_backward(stats: &GroupStats, d_xhat: &[f32]) -> Vec<f32> {
    let n = stats.group_size as f32;
    let groups = d_xhat.len() / stats.group_size;
    let mut dx = TensorArena::global().lease_zeroed(d_xhat.len());
    for g in 0..groups {
        let lo = g * stats.group_size;
        let hi = lo + stats.group_size;
        let xhat = &stats.xhat[lo..hi];
        let dyh = &d_xhat[lo..hi];
        let sum_dyh: f32 = dyh.iter().sum();
        let sum_dyh_xhat: f32 = dyh.iter().zip(xhat).map(|(a, b)| a * b).sum();
        let istd = stats.inv_std[g];
        for i in 0..stats.group_size {
            dx[lo + i] = istd / n * (n * dyh[i] - sum_dyh - xhat[i] * sum_dyh_xhat);
        }
    }
    dx
}

/// Layer normalisation over the trailing feature dimension of a rank-2
/// `[batch, features]` or rank-3 `[batch, seq, features]` tensor.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    features: usize,
    cache: Option<(GroupStats, Vec<usize>)>,
}

impl LayerNorm {
    /// Creates a layer norm over `features`-sized vectors (γ=1, β=0).
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: Param::new(
                "gamma",
                Tensor::ones(&[features]),
                vec![AxisRole::OutFeatures],
            ),
            beta: Param::new(
                "beta",
                Tensor::zeros(&[features]),
                vec![AxisRole::OutFeatures],
            ),
            features,
            cache: None,
        }
    }

    /// The normalised feature dimension.
    pub fn features(&self) -> usize {
        self.features
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let dims = input.dims().to_vec();
        let last = *dims.last().unwrap_or(&0);
        if !(input.rank() == 2 || input.rank() == 3) || last != self.features {
            return Err(NnError::BadInput {
                layer: "LayerNorm".into(),
                expected: format!("rank-2/3 tensor with trailing dimension {}", self.features),
                got: dims,
            });
        }
        let stats = normalise_groups(input.as_slice(), self.features);
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let mut data = TensorArena::global().lease(stats.xhat.len());
        data.extend(
            stats
                .xhat
                .iter()
                .enumerate()
                .map(|(i, &xh)| g[i % self.features] * xh + b[i % self.features]),
        );
        self.cache = Some((stats, dims.clone()));
        Ok(Tensor::from_pool(data, &dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (stats, dims) = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("LayerNorm".into()))?;
        let dy = grad_output.as_slice();
        let g = self.gamma.value.as_slice();
        let f = self.features;
        // Accumulate parameter gradients.
        for (i, &dyi) in dy.iter().enumerate() {
            let c = i % f;
            self.gamma.grad.as_mut_slice()[c] += dyi * stats.xhat[i];
            self.beta.grad.as_mut_slice()[c] += dyi;
        }
        let arena = TensorArena::global();
        let mut d_xhat = arena.lease(dy.len());
        d_xhat.extend(dy.iter().enumerate().map(|(i, &dyi)| dyi * g[i % f]));
        let dx = normalise_groups_backward(stats, &d_xhat);
        arena.recycle(d_xhat);
        Ok(Tensor::from_pool(dx, dims)?)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_name(prefix, "gamma"), &self.gamma);
        f(&join_name(prefix, "beta"), &self.beta);
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_name(prefix, "gamma"), &mut self.gamma);
        f(&join_name(prefix, "beta"), &mut self.beta);
    }
}

/// Instance normalisation for `[batch, channels, h, w]` feature maps with a
/// per-channel affine transform.
#[derive(Debug)]
pub struct ChannelNorm2d {
    gamma: Param,
    beta: Param,
    channels: usize,
    cache: Option<(GroupStats, Vec<usize>)>,
}

impl ChannelNorm2d {
    /// Creates a channel norm over `channels` feature maps (γ=1, β=0).
    pub fn new(channels: usize) -> Self {
        ChannelNorm2d {
            gamma: Param::new(
                "gamma",
                Tensor::ones(&[channels]),
                vec![AxisRole::OutFeatures],
            ),
            beta: Param::new(
                "beta",
                Tensor::zeros(&[channels]),
                vec![AxisRole::OutFeatures],
            ),
            channels,
            cache: None,
        }
    }

    /// The number of channels normalised.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for ChannelNorm2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let dims = input.dims().to_vec();
        if input.rank() != 4 || dims[1] != self.channels {
            return Err(NnError::BadInput {
                layer: "ChannelNorm2d".into(),
                expected: format!("[batch, {}, h, w] input", self.channels),
                got: dims,
            });
        }
        let spatial = dims[2] * dims[3];
        if spatial < 2 {
            // Normalising a single value would zero it out; pass through.
            self.cache = None;
            return Ok(input.clone());
        }
        let stats = normalise_groups(input.as_slice(), spatial);
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let c = self.channels;
        let mut data = TensorArena::global().lease(stats.xhat.len());
        data.extend(stats.xhat.iter().enumerate().map(|(i, &xh)| {
            let channel = (i / spatial) % c;
            g[channel] * xh + b[channel]
        }));
        self.cache = Some((stats, dims.clone()));
        Ok(Tensor::from_pool(data, &dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let Some((stats, dims)) = self.cache.as_ref() else {
            // forward was a pass-through (1x1 spatial); gradient passes through too.
            return Ok(grad_output.clone());
        };
        let spatial = dims[2] * dims[3];
        let c = self.channels;
        let dy = grad_output.as_slice();
        let g = self.gamma.value.as_slice();
        for (i, &dyi) in dy.iter().enumerate() {
            let channel = (i / spatial) % c;
            self.gamma.grad.as_mut_slice()[channel] += dyi * stats.xhat[i];
            self.beta.grad.as_mut_slice()[channel] += dyi;
        }
        let arena = TensorArena::global();
        let mut d_xhat = arena.lease(dy.len());
        d_xhat.extend(
            dy.iter()
                .enumerate()
                .map(|(i, &dyi)| dyi * g[(i / spatial) % c]),
        );
        let dx = normalise_groups_backward(stats, &d_xhat);
        arena.recycle(d_xhat);
        Ok(Tensor::from_pool(dx, dims)?)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_name(prefix, "gamma"), &self.gamma);
        f(&join_name(prefix, "beta"), &self.beta);
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_name(prefix, "gamma"), &mut self.gamma);
        f(&join_name(prefix, "beta"), &mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_tensor::SeededRng;

    #[test]
    fn layernorm_output_is_standardised() {
        let mut ln = LayerNorm::new(4);
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]).unwrap();
        let y = ln.forward(&x, true).unwrap();
        for r in 0..2 {
            let row = &y.as_slice()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_gradient_check() {
        let mut rng = SeededRng::new(0);
        let mut ln = LayerNorm::new(5);
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        ln.forward(&x, true).unwrap();
        // Loss = weighted sum to create non-uniform gradients.
        let weights = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let dx = ln.backward(&weights).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 7, 14] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = ln.forward(&xp, true).unwrap().mul(&weights).unwrap().sum();
            let fm = ln.forward(&xm, true).unwrap().mul(&weights).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 2e-2,
                "idx {idx}: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn layernorm_shape_validation() {
        let mut ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros(&[2, 3]), true).is_err());
        assert!(ln.forward(&Tensor::zeros(&[4]), true).is_err());
        assert!(ln.forward(&Tensor::zeros(&[2, 3, 4]), true).is_ok());
    }

    #[test]
    fn channelnorm_normalises_each_map() {
        let mut cn = ChannelNorm2d::new(2);
        let mut rng = SeededRng::new(1);
        let x = Tensor::randn(&[1, 2, 4, 4], 3.0, &mut rng).add_scalar(5.0);
        let y = cn.forward(&x, true).unwrap();
        for c in 0..2 {
            let map = &y.as_slice()[c * 16..(c + 1) * 16];
            let mean: f32 = map.iter().sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn channelnorm_gradient_check() {
        let mut rng = SeededRng::new(2);
        let mut cn = ChannelNorm2d::new(2);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        cn.forward(&x, true).unwrap();
        let weights = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let dx = cn.backward(&weights).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 5, 12] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = cn.forward(&xp, true).unwrap().mul(&weights).unwrap().sum();
            let fm = cn.forward(&xm, true).unwrap().mul(&weights).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((dx.as_slice()[idx] - numeric).abs() < 2e-2);
        }
    }

    #[test]
    fn channelnorm_single_pixel_passthrough() {
        let mut cn = ChannelNorm2d::new(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3, 1, 1]).unwrap();
        let y = cn.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
        let dx = cn.backward(&Tensor::ones(&[1, 3, 1, 1])).unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn norm_params_are_width_scalable() {
        let ln = LayerNorm::new(8);
        ln.visit_params("blk", &mut |name, p| {
            assert!(name.starts_with("blk."));
            assert_eq!(p.roles, vec![AxisRole::OutFeatures]);
        });
    }
}
