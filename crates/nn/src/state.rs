//! State dictionaries: the unit of exchange between clients and the server.

use std::collections::BTreeMap;

use mhfl_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{NnError, Result};

/// An ordered map from fully-qualified parameter name to tensor.
///
/// Every federated exchange in the benchmark — full models, width/depth
/// sub-models, aggregated updates — is represented as a `StateDict`, which is
/// what makes the eight MHFL algorithms expressible independently of the
/// concrete proxy architecture.
///
/// ```
/// use mhfl_nn::StateDict;
/// use mhfl_tensor::Tensor;
///
/// let mut sd = StateDict::new();
/// sd.insert("layer.weight", Tensor::ones(&[2, 2]));
/// assert_eq!(sd.num_parameters(), 4);
/// assert_eq!(sd.size_bytes(), 16);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Creates an empty state dict.
    pub fn new() -> Self {
        StateDict {
            entries: BTreeMap::new(),
        }
    }

    /// Inserts (or replaces) a parameter tensor.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.entries.insert(name.into(), value);
    }

    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Looks up a parameter by name, returning an error if missing.
    ///
    /// # Errors
    /// Returns [`NnError::MissingParam`] when the name is absent.
    pub fn require(&self, name: &str) -> Result<&Tensor> {
        self.entries
            .get(name)
            .ok_or_else(|| NnError::MissingParam(name.to_string()))
    }

    /// Removes a parameter, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Tensor> {
        self.entries.remove(name)
    }

    /// Returns `true` if the dict contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of parameters (tensors) stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no parameters are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Iterates mutably over `(name, tensor)` pairs in name order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Tensor)> {
        self.entries.iter_mut()
    }

    /// Parameter names in order.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Total number of scalar values across all tensors.
    pub fn num_parameters(&self) -> usize {
        self.entries.values().map(Tensor::len).sum()
    }

    /// Size of the dict when serialised as dense `f32` payload, in bytes.
    ///
    /// This is the quantity the communication-limited constraint reasons
    /// about (4 bytes per parameter, ignoring framing overhead).
    pub fn size_bytes(&self) -> usize {
        self.num_parameters() * std::mem::size_of::<f32>()
    }

    /// Keeps only parameters whose name starts with one of the prefixes.
    pub fn filter_prefixes(&self, prefixes: &[&str]) -> StateDict {
        let entries = self
            .entries
            .iter()
            .filter(|(k, _)| prefixes.iter().any(|p| k.starts_with(p)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        StateDict { entries }
    }

    /// Squared L2 distance between the overlapping parameters of two dicts.
    /// Parameters present in only one dict (or with differing shapes) are
    /// ignored — useful for measuring drift between heterogeneous models.
    pub fn l2_distance_sq(&self, other: &StateDict) -> f32 {
        self.entries
            .iter()
            .filter_map(|(k, v)| {
                other.get(k).and_then(|o| {
                    (o.dims() == v.dims()).then(|| {
                        v.as_slice()
                            .iter()
                            .zip(o.as_slice())
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f32>()
                    })
                })
            })
            .sum()
    }

    /// Elementwise `self = self * (1 - alpha) + other * alpha` over parameters
    /// present in both dicts with matching shapes (server-side interpolation).
    pub fn lerp_from(&mut self, other: &StateDict, alpha: f32) {
        for (name, value) in self.entries.iter_mut() {
            if let Some(src) = other.get(name) {
                if src.dims() == value.dims() {
                    for (v, &s) in value.as_mut_slice().iter_mut().zip(src.as_slice()) {
                        *v = *v * (1.0 - alpha) + s * alpha;
                    }
                }
            }
        }
    }
}

impl FromIterator<(String, Tensor)> for StateDict {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        StateDict {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Tensor)> for StateDict {
    fn extend<I: IntoIterator<Item = (String, Tensor)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl IntoIterator for StateDict {
    type Item = (String, Tensor);
    type IntoIter = std::collections::btree_map::IntoIter<String, Tensor>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateDict {
        let mut sd = StateDict::new();
        sd.insert("stem.weight", Tensor::ones(&[4, 2]));
        sd.insert("stem.bias", Tensor::zeros(&[4]));
        sd.insert("head.weight", Tensor::full(&[3, 4], 2.0));
        sd
    }

    #[test]
    fn insert_get_remove() {
        let mut sd = sample();
        assert!(sd.contains("stem.weight"));
        assert_eq!(sd.len(), 3);
        assert_eq!(sd.get("stem.bias").unwrap().len(), 4);
        assert!(sd.require("missing").is_err());
        assert!(sd.remove("stem.bias").is_some());
        assert_eq!(sd.len(), 2);
    }

    #[test]
    fn counting_and_bytes() {
        let sd = sample();
        assert_eq!(sd.num_parameters(), 8 + 4 + 12);
        assert_eq!(sd.size_bytes(), 24 * 4);
    }

    #[test]
    fn filter_prefixes_selects_subtree() {
        let sd = sample();
        let stem = sd.filter_prefixes(&["stem."]);
        assert_eq!(stem.len(), 2);
        assert!(stem.contains("stem.weight"));
        assert!(!stem.contains("head.weight"));
    }

    #[test]
    fn l2_distance_over_overlap_only() {
        let a = sample();
        let mut b = sample();
        b.insert("head.weight", Tensor::full(&[3, 4], 3.0));
        b.insert("extra.weight", Tensor::ones(&[5]));
        // Only head.weight differs on the overlap: 12 entries, diff 1 each.
        assert!((a.l2_distance_sq(&b) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn lerp_moves_halfway() {
        let mut a = sample();
        let mut b = sample();
        b.insert("stem.weight", Tensor::full(&[4, 2], 3.0));
        a.lerp_from(&b, 0.5);
        assert!((a.get("stem.weight").unwrap().as_slice()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ordering_is_stable_by_name() {
        let sd = sample();
        let names = sd.names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn from_iterator_roundtrip() {
        let sd = sample();
        let rebuilt: StateDict = sd.clone().into_iter().collect();
        assert_eq!(sd, rebuilt);
    }
}
