//! Single-head self-attention, the core of the transformer/ALBERT proxies.

use mhfl_tensor::{SeededRng, Tensor};

use crate::layer::join_name;
use crate::{AxisRole, Layer, NnError, Param, Result};

/// Scaled dot-product self-attention with learned query/key/value/output
/// projections (single head).
///
/// Input and output are `[batch, seq, dim]`. All four projection matrices
/// have shape `[dim, dim]` with `[OutFeatures, InFeatures]` roles so the
/// attention width scales together with the rest of the model.
#[derive(Debug)]
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    cache: Option<AttentionCache>,
}

#[derive(Debug)]
struct AttentionCache {
    /// Per-batch-item tensors, each `[seq, dim]` / `[seq, seq]`.
    x: Vec<Tensor>,
    q: Vec<Tensor>,
    k: Vec<Tensor>,
    v: Vec<Tensor>,
    attn: Vec<Tensor>,
    ctx: Vec<Tensor>,
    dims: Vec<usize>,
}

impl SelfAttention {
    /// Creates a self-attention block over `dim`-dimensional token vectors.
    ///
    /// # Errors
    /// Returns [`NnError::InvalidConfig`] when `dim == 0`.
    pub fn new(dim: usize, rng: &mut SeededRng) -> Result<Self> {
        if dim == 0 {
            return Err(NnError::InvalidConfig(
                "attention dimension must be positive".into(),
            ));
        }
        let roles = vec![AxisRole::OutFeatures, AxisRole::InFeatures];
        let mk = |name: &str, rng: &mut SeededRng| {
            Param::new(name, Tensor::kaiming(&[dim, dim], dim, rng), roles.clone())
        };
        Ok(SelfAttention {
            wq: mk("wq", rng),
            wk: mk("wk", rng),
            wv: mk("wv", rng),
            wo: mk("wo", rng),
            dim,
            cache: None,
        })
    }

    /// The token-vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn project(x: &Tensor, w: &Tensor) -> Result<Tensor> {
        Ok(x.matmul_nt(w)?)
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        if input.rank() != 3 || input.dims()[2] != self.dim {
            return Err(NnError::BadInput {
                layer: "SelfAttention".into(),
                expected: format!("[batch, seq, {}] input", self.dim),
                got: input.dims().to_vec(),
            });
        }
        let dims = input.dims().to_vec();
        let (batch, seq, dim) = (dims[0], dims[1], dims[2]);
        let scale = 1.0 / (dim as f32).sqrt();
        let mut cache = AttentionCache {
            x: Vec::with_capacity(batch),
            q: Vec::with_capacity(batch),
            k: Vec::with_capacity(batch),
            v: Vec::with_capacity(batch),
            attn: Vec::with_capacity(batch),
            ctx: Vec::with_capacity(batch),
            dims: dims.clone(),
        };
        let mut outputs = Vec::with_capacity(batch);
        for n in 0..batch {
            let x = input.index_axis0(n)?; // [seq, dim]
            let q = Self::project(&x, &self.wq.value)?;
            let k = Self::project(&x, &self.wk.value)?;
            let v = Self::project(&x, &self.wv.value)?;
            let scores = q.matmul_nt(&k)?.scale(scale);
            let attn = scores.softmax_rows()?;
            let ctx = attn.matmul(&v)?;
            let out = Self::project(&ctx, &self.wo.value)?;
            cache.x.push(x);
            cache.q.push(q);
            cache.k.push(k);
            cache.v.push(v);
            cache.attn.push(attn);
            cache.ctx.push(ctx);
            outputs.push(out);
        }
        self.cache = Some(cache);
        let stacked = Tensor::stack(&outputs)?;
        Ok(stacked.reshape(&[batch, seq, dim])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardCache("SelfAttention".into()))?;
        let dims = cache.dims.clone();
        let (batch, seq, dim) = (dims[0], dims[1], dims[2]);
        if grad_output.dims() != dims.as_slice() {
            return Err(NnError::BadInput {
                layer: "SelfAttention".into(),
                expected: format!("gradient of shape {dims:?}"),
                got: grad_output.dims().to_vec(),
            });
        }
        let scale = 1.0 / (dim as f32).sqrt();
        let mut dx_parts = Vec::with_capacity(batch);
        for n in 0..batch {
            let dy = grad_output.index_axis0(n)?; // [seq, dim]
            let x = &cache.x[n];
            let q = &cache.q[n];
            let k = &cache.k[n];
            let v = &cache.v[n];
            let attn = &cache.attn[n];
            let ctx = &cache.ctx[n];

            // out = ctx Woᵀ  ⇒  dctx = dy Wo, dWo += dyᵀ ctx
            self.wo.grad.axpy(1.0, &dy.matmul_tn(ctx)?)?;
            let dctx = dy.matmul(&self.wo.value)?;

            // ctx = attn V  ⇒  dattn = dctx Vᵀ, dV = attnᵀ dctx
            let dattn = dctx.matmul_nt(v)?;
            let dv = attn.matmul_tn(&dctx)?;

            // softmax backward (row-wise): ds = attn ⊙ (dattn - rowsum(dattn ⊙ attn))
            let prod = dattn.mul(attn)?;
            let row_sums = prod.row_sums()?; // [seq]
            let mut ds = Tensor::zeros(&[seq, seq]);
            for r in 0..seq {
                for c in 0..seq {
                    let a = attn.at(&[r, c])?;
                    let da = dattn.at(&[r, c])?;
                    ds.set(&[r, c], a * (da - row_sums.as_slice()[r]))?;
                }
            }
            let ds = ds.scale(scale);

            // scores = Q Kᵀ ⇒ dQ = ds K, dK = dsᵀ Q
            let dq = ds.matmul(k)?;
            let dk = ds.matmul_tn(q)?;

            // projections: P = X Wᵀ ⇒ dW += dPᵀ X, dX += dP W
            self.wq.grad.axpy(1.0, &dq.matmul_tn(x)?)?;
            self.wk.grad.axpy(1.0, &dk.matmul_tn(x)?)?;
            self.wv.grad.axpy(1.0, &dv.matmul_tn(x)?)?;

            let mut dx = dq.matmul(&self.wq.value)?;
            dx.axpy(1.0, &dk.matmul(&self.wk.value)?)?;
            dx.axpy(1.0, &dv.matmul(&self.wv.value)?)?;
            dx_parts.push(dx);
        }
        let stacked = Tensor::stack(&dx_parts)?;
        Ok(stacked.reshape(&[batch, seq, dim])?)
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_name(prefix, "wq"), &self.wq);
        f(&join_name(prefix, "wk"), &self.wk);
        f(&join_name(prefix, "wv"), &self.wv);
        f(&join_name(prefix, "wo"), &self.wo);
    }

    fn visit_params_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_name(prefix, "wq"), &mut self.wq);
        f(&join_name(prefix, "wk"), &mut self.wk);
        f(&join_name(prefix, "wv"), &mut self.wv);
        f(&join_name(prefix, "wo"), &mut self.wo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_validation() {
        let mut rng = SeededRng::new(0);
        let mut attn = SelfAttention::new(6, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 4, 6], 1.0, &mut rng);
        let y = attn.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 4, 6]);
        assert!(attn.forward(&Tensor::zeros(&[2, 4, 5]), true).is_err());
        assert!(SelfAttention::new(0, &mut rng).is_err());
    }

    #[test]
    fn input_gradient_check() {
        let mut rng = SeededRng::new(1);
        let mut attn = SelfAttention::new(4, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 4], 0.5, &mut rng);
        let weights = Tensor::randn(&[1, 3, 4], 1.0, &mut rng);
        attn.forward(&x, true).unwrap();
        let dx = attn.backward(&weights).unwrap();

        let eps = 1e-2;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = attn
                .forward(&xp, true)
                .unwrap()
                .mul(&weights)
                .unwrap()
                .sum();
            let fm = attn
                .forward(&xm, true)
                .unwrap()
                .mul(&weights)
                .unwrap()
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 5e-2,
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_check() {
        let mut rng = SeededRng::new(2);
        let mut attn = SelfAttention::new(3, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 3], 0.5, &mut rng);
        let weights = Tensor::randn(&[1, 3, 3], 1.0, &mut rng);
        attn.forward(&x, true).unwrap();
        attn.backward(&weights).unwrap();
        let dwq_analytic = attn.wq.grad.clone();

        let eps = 1e-2;
        for idx in [0usize, 4, 8] {
            let orig = attn.wq.value.as_slice()[idx];
            attn.wq.value.as_mut_slice()[idx] = orig + eps;
            let fp = attn.forward(&x, true).unwrap().mul(&weights).unwrap().sum();
            attn.wq.value.as_mut_slice()[idx] = orig - eps;
            let fm = attn.forward(&x, true).unwrap().mul(&weights).unwrap().sum();
            attn.wq.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dwq_analytic.as_slice()[idx] - numeric).abs() < 5e-2,
                "dWq[{idx}]: {} vs {numeric}",
                dwq_analytic.as_slice()[idx]
            );
        }
    }

    #[test]
    fn four_projection_parameters() {
        let mut rng = SeededRng::new(3);
        let attn = SelfAttention::new(8, &mut rng).unwrap();
        let mut names = Vec::new();
        attn.visit_params("attn", &mut |name, p| {
            names.push(name.to_string());
            assert_eq!(p.value.dims(), &[8, 8]);
        });
        assert_eq!(names.len(), 4);
        assert!(names.contains(&"attn.wq".to_string()));
        assert!(names.contains(&"attn.wo".to_string()));
    }
}
