//! Error type for the neural-network crate.

use std::fmt;

use mhfl_tensor::TensorError;

/// Errors produced by layer construction, forward/backward passes and
/// state-dict manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input of unexpected shape.
    BadInput {
        /// The layer reporting the problem.
        layer: String,
        /// Human-readable description of the expectation.
        expected: String,
        /// The shape actually received.
        got: Vec<usize>,
    },
    /// `backward` was called before `forward` (no cached activations).
    MissingForwardCache(String),
    /// A state dict is missing a parameter the model expects.
    MissingParam(String),
    /// A state-dict tensor has the wrong shape for the target parameter.
    ParamShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape expected by the model.
        expected: Vec<usize>,
        /// Shape found in the state dict.
        got: Vec<usize>,
    },
    /// A configuration value was invalid (zero sizes, bad fractions, ...).
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput {
                layer,
                expected,
                got,
            } => {
                write!(f, "layer {layer} expected {expected}, got shape {got:?}")
            }
            NnError::MissingForwardCache(layer) => {
                write!(f, "backward called on {layer} before forward")
            }
            NnError::MissingParam(name) => write!(f, "state dict is missing parameter {name}"),
            NnError::ParamShapeMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "parameter {name} expects shape {expected:?}, state dict provides {got:?}"
            ),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}
