//! Fed-ET: heterogeneous ensemble knowledge transfer.
//!
//! Clients run small heterogeneous models and never upload weights. Instead,
//! after local training each selected client evaluates the shared *public*
//! dataset and uploads its logits; the server forms a confidence-weighted
//! ensemble of those logits and distils it into a large server-side model.
//! Clients also distil the server's knowledge back into their local models at
//! the start of their next participation (the "transfer" direction).

use std::collections::BTreeMap;

use mhfl_data::Dataset;
use mhfl_fl::adversary::{clip_tensor, coordinate_median};
use mhfl_fl::train::{evaluate_accuracy, local_train_ce};
use mhfl_fl::{
    AlgorithmState, ClientPayload, ClientUpdate, FederationContext, FlAlgorithm, FlError, FlResult,
    RobustAggregation,
};
use mhfl_models::{MhflMethod, ProxyConfig, ProxyModel};
use mhfl_nn::loss::soft_cross_entropy;
use mhfl_nn::{Layer, Sgd, StateDict};
use mhfl_tensor::{SeededRng, Tensor};

/// Number of server distillation steps per round.
const SERVER_DISTILL_STEPS: usize = 5;
/// Number of client-side distillation steps from the server ensemble.
const CLIENT_DISTILL_STEPS: usize = 2;
/// Distillation temperature.
const TEMPERATURE: f32 = 2.0;

/// The Fed-ET algorithm.
///
/// Client models are persisted between rounds as `(config, state)` snapshots
/// so the client phase can rebuild, train and return them through the
/// [`ClientUpdate`] without mutating shared state — which is what lets the
/// engine run clients on a thread pool.
pub struct FedEt {
    server_model: Option<ProxyModel>,
    client_states: BTreeMap<usize, (ProxyConfig, StateDict)>,
    /// Server ensemble predictions on the public set from the previous round.
    server_public_probs: Option<Tensor>,
    num_classes: usize,
    robust: RobustAggregation,
}

impl FedEt {
    /// Creates the algorithm.
    pub fn new() -> Self {
        FedEt {
            server_model: None,
            client_states: BTreeMap::new(),
            server_public_probs: None,
            num_classes: 0,
            robust: RobustAggregation::None,
        }
    }

    fn require_setup(&self) -> FlResult<()> {
        if self.server_model.is_none() {
            return Err(FlError::InvalidConfig("algorithm used before setup".into()));
        }
        Ok(())
    }

    fn client_config(ctx: &FederationContext, client: usize) -> ProxyConfig {
        let task = ctx.task();
        let assignment = ctx.assignment(client);
        ProxyConfig::for_family(
            assignment.entry.choice.family,
            task.input_kind(),
            task.num_classes(),
            ctx.seed() + 7 * client as u64,
        )
    }

    /// Rebuilds a client's model from its stored (or freshly initialised)
    /// local state.
    fn build_client_model(&self, ctx: &FederationContext, client: usize) -> FlResult<ProxyModel> {
        match self.client_states.get(&client) {
            Some((cfg, state)) => Ok(ProxyModel::from_state(*cfg, state)?),
            None => Ok(ProxyModel::new(Self::client_config(ctx, client))?),
        }
    }

    /// Mean maximum softmax probability — the confidence weight of a client's
    /// ensemble contribution.
    fn confidence(probs: &Tensor) -> f32 {
        let (rows, cols) = (probs.dims()[0], probs.dims()[1]);
        if rows == 0 {
            return 0.0;
        }
        let mut total = 0.0f32;
        for r in 0..rows {
            let row = &probs.as_slice()[r * cols..(r + 1) * cols];
            total += row.iter().copied().fold(0.0f32, f32::max);
        }
        total / rows as f32
    }

    /// Distils `teacher_probs` (on `inputs`) into `model` for a few steps.
    fn distill(
        model: &mut ProxyModel,
        inputs: &Tensor,
        teacher_probs: &Tensor,
        steps: usize,
        sgd: mhfl_nn::SgdConfig,
    ) -> FlResult<()> {
        let mut opt = Sgd::new(sgd);
        for _ in 0..steps {
            model.zero_grad();
            let out = model.forward_detailed(inputs, true)?;
            let (_, grad) = soft_cross_entropy(&out.logits, teacher_probs, TEMPERATURE)?;
            model.backward_detailed(&grad, None, &[])?;
            opt.step(model)?;
        }
        Ok(())
    }
}

impl Default for FedEt {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-coordinate median over `votes` ([rows, cols] each), clamped
/// non-negative and renormalised so every row sums to one (uniform when a
/// row's median mass is entirely zero).
fn median_vote_matrix(votes: &[Tensor], rows: usize, cols: usize) -> Tensor {
    let mut merged = vec![0.0f32; rows * cols];
    let mut column = Vec::with_capacity(votes.len());
    for (i, slot) in merged.iter_mut().enumerate() {
        column.clear();
        for vote in votes {
            if let Some(&v) = vote.as_slice().get(i) {
                column.push(v);
            }
        }
        *slot = coordinate_median(&mut column).unwrap_or(0.0).max(0.0);
    }
    for row in merged.chunks_mut(cols.max(1)) {
        let total: f32 = row.iter().sum();
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        } else {
            let uniform = 1.0 / cols.max(1) as f32;
            row.fill(uniform);
        }
    }
    Tensor::from_vec(merged, &[rows, cols]).expect("vector length matches the shape")
}

impl FlAlgorithm for FedEt {
    fn name(&self) -> String {
        MhflMethod::FedEt.display_name().to_string()
    }

    fn setup(&mut self, ctx: &FederationContext) -> FlResult<()> {
        self.num_classes = ctx.task().num_classes();
        let server = ProxyModel::new(crate::common::global_proxy_config(ctx, MhflMethod::FedEt))?;
        self.server_model = Some(server);
        Ok(())
    }

    fn client_update(
        &self,
        round: usize,
        client: usize,
        ctx: &FederationContext,
    ) -> FlResult<ClientUpdate> {
        self.require_setup()?;
        // Borrow the shared public inputs — cloning them per client would
        // multiply the round's allocation cost by the participation count.
        let public_inputs = ctx.public_set().inputs();
        let cfg = *ctx.train_config();
        let mut rng = SeededRng::new(ctx.seed()).derive((round * 10_000 + client) as u64);
        let mut model = self.build_client_model(ctx, client)?;

        // Transfer direction: absorb the server ensemble before training.
        if let Some(probs) = &self.server_public_probs {
            Self::distill(
                &mut model,
                public_inputs,
                probs,
                CLIENT_DISTILL_STEPS,
                cfg.sgd,
            )?;
        }
        // Local supervised training.
        let data = ctx.client_shard_at(client, round);
        local_train_ce(&mut model, &data, &cfg, &mut rng)?;

        // Upload direction: logits on the public set, confidence-weighted.
        let out = model.forward_detailed(public_inputs, false)?;
        let probs = out.logits.softmax_rows()?;
        let confidence = Self::confidence(&probs).max(1e-3);
        Ok(ClientUpdate::new(
            client,
            data.len(),
            ClientPayload::PublicLogits {
                state: model.state_dict(),
                probs,
                confidence,
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        updates: Vec<ClientUpdate>,
        ctx: &FederationContext,
    ) -> FlResult<()> {
        self.require_setup()?;
        let public = ctx.public_set();
        let cfg = *ctx.train_config();
        let mut weighted_probs = Tensor::zeros(&[public.len(), self.num_classes]);
        let mut total_weight = 0.0f32;
        // Per-client vote matrices, kept only under coordinate-median.
        let mut per_client: Vec<Tensor> = Vec::new();

        for update in updates {
            let client = update.client;
            let (state, mut probs, confidence) = match update.payload {
                ClientPayload::PublicLogits {
                    state,
                    probs,
                    confidence,
                } => (state, probs, confidence),
                other => {
                    return Err(FlError::InvalidConfig(format!(
                        "Fed-ET aggregation expects public-logit payloads, \
                         got {} from client {client}",
                        other.kind()
                    )))
                }
            };
            self.client_states
                .insert(client, (Self::client_config(ctx, client), state));
            if let RobustAggregation::NormClip { max_norm } = self.robust {
                clip_tensor(&mut probs, max_norm);
            }
            // Stale votes (asynchronous buffered execution) are discounted
            // on top of the client's own confidence; synchronous rounds
            // always carry a staleness weight of 1.0.
            let weight = confidence * update.staleness_weight;
            weighted_probs.axpy(weight, &probs)?;
            total_weight += weight;
            if self.robust == RobustAggregation::CoordinateMedian {
                per_client.push(probs);
            }
        }

        if self.robust == RobustAggregation::CoordinateMedian && !per_client.is_empty() {
            // Robust ensembling: per-coordinate median of the client vote
            // matrices (confidence and staleness weights deliberately
            // ignored — the median is an order statistic). The result is
            // clamped non-negative and row-renormalised so it remains a
            // distribution the distillation loss can consume.
            let ensemble = median_vote_matrix(&per_client, public.len(), self.num_classes);
            let server = self.server_model.as_mut().expect("checked");
            Self::distill(
                server,
                public.inputs(),
                &ensemble,
                SERVER_DISTILL_STEPS,
                cfg.sgd,
            )?;
            self.server_public_probs = Some(ensemble);
            return Ok(());
        }

        if total_weight > 0.0 {
            let ensemble = weighted_probs.scale(1.0 / total_weight);
            let server = self.server_model.as_mut().expect("checked");
            Self::distill(
                server,
                public.inputs(),
                &ensemble,
                SERVER_DISTILL_STEPS,
                cfg.sgd,
            )?;
            self.server_public_probs = Some(ensemble);
        }
        Ok(())
    }

    fn evaluate_global(&mut self, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        evaluate_accuracy(self.server_model.as_mut().expect("checked"), data)
    }

    fn evaluate_client(&mut self, client: usize, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        match self.client_states.get(&client) {
            Some((cfg, state)) => {
                let mut model = ProxyModel::from_state(*cfg, state)?;
                evaluate_accuracy(&mut model, data)
            }
            None => Ok(1.0 / self.num_classes.max(1) as f32),
        }
    }

    fn snapshot(&self) -> FlResult<AlgorithmState> {
        self.require_setup()?;
        let mut state = AlgorithmState::new();
        // The server model is *trained* (distilled) across rounds, so its
        // weights must be captured — unlike the client configs, which are
        // recomputed from the context.
        let server = self
            .server_model
            .as_ref()
            .expect("checked by require_setup");
        state.insert_state("server", server.state_dict());
        if let Some(probs) = &self.server_public_probs {
            state.insert_tensor("server_public_probs", probs.clone());
        }
        for (&client, (_, sd)) in &self.client_states {
            state.insert_state(AlgorithmState::client_state_key(client), sd.clone());
        }
        Ok(state)
    }

    fn restore(&mut self, mut state: AlgorithmState, ctx: &FederationContext) -> FlResult<()> {
        self.num_classes = ctx.task().num_classes();
        let server_sd = state.take_state("server")?;
        // from_state skips the random initialisation the snapshot would
        // overwrite anyway.
        self.server_model = Some(ProxyModel::from_state(
            crate::common::global_proxy_config(ctx, MhflMethod::FedEt),
            &server_sd,
        )?);
        self.server_public_probs = state.try_take_tensor("server_public_probs");
        self.client_states.clear();
        for (name, sd) in state.take_states_with_prefix("client.") {
            let client = AlgorithmState::parse_client_key(&name).ok_or_else(|| {
                FlError::InvalidConfig(format!("malformed client snapshot slot {name:?}"))
            })?;
            if client >= ctx.num_clients() {
                return Err(FlError::InvalidConfig(format!(
                    "snapshot covers client {client} but the context has only {} clients",
                    ctx.num_clients()
                )));
            }
            self.client_states
                .insert(client, (Self::client_config(ctx, client), sd));
        }
        Ok(())
    }

    fn set_robust_aggregation(&mut self, robust: RobustAggregation) {
        self.robust = robust;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_fl::{EngineConfig, FlEngine, LocalTrainConfig};
    use mhfl_models::ModelFamily;

    fn context(clients: usize) -> FederationContext {
        let task = DataTask::UciHar;
        let data = FederatedDataset::generate(task, clients, 20, None, 5);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            task.num_classes(),
        );
        let case = ConstraintCase::Memory;
        let devices = case.build_population(clients, 8);
        let assignments =
            case.assign_clients(&pool, MhflMethod::FedEt, &devices, &CostModel::default());
        FederationContext::new(
            data,
            assignments,
            LocalTrainConfig {
                local_steps: 4,
                ..LocalTrainConfig::default()
            },
            5,
        )
        .unwrap()
    }

    #[test]
    fn fedet_server_model_learns_from_ensemble() {
        let ctx = context(6);
        let engine = FlEngine::new(EngineConfig {
            rounds: 6,
            sample_ratio: 0.5,
            eval_every: 6,
            stability_clients: 3,
            ..EngineConfig::default()
        });
        let mut alg = FedEt::new();
        let report = engine.run(&mut alg, &ctx).unwrap();
        assert!(
            report.final_accuracy() > 1.0 / 6.0,
            "Fed-ET server accuracy {} should beat chance",
            report.final_accuracy()
        );
        assert!(alg.server_public_probs.is_some());
    }

    #[test]
    fn confidence_is_higher_for_peaked_distributions() {
        let peaked = Tensor::from_vec(vec![0.9, 0.05, 0.05], &[1, 3]).unwrap();
        let flat = Tensor::from_vec(vec![0.34, 0.33, 0.33], &[1, 3]).unwrap();
        assert!(FedEt::confidence(&peaked) > FedEt::confidence(&flat));
        assert_eq!(FedEt::confidence(&Tensor::zeros(&[0, 3])), 0.0);
    }

    #[test]
    fn unknown_clients_report_chance() {
        let ctx = context(4);
        let mut alg = FedEt::new();
        alg.setup(&ctx).unwrap();
        let acc = alg.evaluate_client(3, ctx.test_set()).unwrap();
        assert!((acc - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn use_before_setup_errors() {
        let mut alg = FedEt::new();
        let data = mhfl_data::generate_dataset(DataTask::UciHar, 4, 0, None);
        assert!(alg.evaluate_global(&data).is_err());
    }
}
