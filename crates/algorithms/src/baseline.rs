//! The resource-aware homogeneous baseline.
//!
//! The paper's *effectiveness* metric compares every MHFL algorithm against
//! "a simple resource-aware homogeneous baseline (i.e., training the smallest
//! homogeneous model across all heterogeneous devices)". This is plain FedAvg
//! where every client — fast or slow, big or small — trains an identical copy
//! of the smallest model any device in the federation can hold.

use mhfl_data::Dataset;
use mhfl_fl::submodel::{PlanCache, ServerAggregator, WidthSelection};
use mhfl_fl::train::{evaluate_accuracy, local_train_ce};
use mhfl_fl::{
    AlgorithmState, ClientPayload, ClientUpdate, FederationContext, FlAlgorithm, FlError, FlResult,
    RobustAggregation,
};
use mhfl_models::{MhflMethod, ProxyConfig, ProxyModel};
use mhfl_nn::{ParamSpec, StateDict};
use mhfl_tensor::SeededRng;

/// FedAvg on the smallest feasible homogeneous model.
pub struct SmallestHomogeneous {
    global: Option<ProxyModel>,
    global_sd: StateDict,
    global_specs: Vec<ParamSpec>,
    config: Option<ProxyConfig>,
    /// Scatter plans reused across rounds (see [`PlanCache`]).
    plans: PlanCache,
    robust: RobustAggregation,
}

impl SmallestHomogeneous {
    /// Creates the baseline.
    pub fn new() -> Self {
        SmallestHomogeneous {
            global: None,
            global_sd: StateDict::new(),
            global_specs: Vec::new(),
            config: None,
            plans: PlanCache::new(),
            robust: RobustAggregation::None,
        }
    }

    fn require_setup(&self) -> FlResult<()> {
        if self.global.is_none() {
            return Err(FlError::InvalidConfig("algorithm used before setup".into()));
        }
        Ok(())
    }
}

impl Default for SmallestHomogeneous {
    fn default() -> Self {
        Self::new()
    }
}

impl FlAlgorithm for SmallestHomogeneous {
    fn name(&self) -> String {
        MhflMethod::HomogeneousSmallest.display_name().to_string()
    }

    fn setup(&mut self, ctx: &FederationContext) -> FlResult<()> {
        let smallest = ctx.smallest_assignment();
        let task = ctx.task();
        let cfg = ProxyConfig::for_family(
            smallest.entry.choice.family,
            task.input_kind(),
            task.num_classes(),
            ctx.seed(),
        )
        .with_width(smallest.entry.choice.width_fraction)
        .with_depth(smallest.entry.choice.depth_fraction);
        let global = ProxyModel::new(cfg)?;
        self.global_sd = global.state_dict();
        self.global_specs = global.param_specs();
        self.config = Some(cfg);
        self.global = Some(global);
        Ok(())
    }

    fn client_update(
        &self,
        round: usize,
        client: usize,
        ctx: &FederationContext,
    ) -> FlResult<ClientUpdate> {
        self.require_setup()?;
        let cfg = self.config.expect("set during setup");
        let mut rng = SeededRng::new(ctx.seed()).derive((round * 10_000 + client) as u64);
        // The snapshot covers every parameter: skip the thrown-away random
        // initialisation entirely.
        let mut model = ProxyModel::from_state(cfg, &self.global_sd)?;
        let data = ctx.client_shard_at(client, round);
        local_train_ce(&mut model, &data, ctx.train_config(), &mut rng)?;
        Ok(ClientUpdate::new(
            client,
            data.len(),
            ClientPayload::SubModel {
                state: model.state_dict(),
                selection: WidthSelection::Prefix,
                num_blocks: model.num_blocks(),
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        updates: Vec<ClientUpdate>,
        _ctx: &FederationContext,
    ) -> FlResult<()> {
        self.require_setup()?;
        let mut aggregator =
            ServerAggregator::new(self.global_specs.clone()).with_robust(self.robust);
        for update in &updates {
            let ClientPayload::SubModel {
                state, selection, ..
            } = &update.payload
            else {
                return Err(FlError::InvalidConfig(format!(
                    "baseline aggregation expects sub-model payloads, got {} from client {}",
                    update.payload.kind(),
                    update.client
                )));
            };
            let plan = self
                .plans
                .for_state(&self.global_specs, state, *selection)?;
            aggregator.add_update_with_plan(state, &plan, update.weight())?;
        }
        self.global_sd = aggregator.finalize(&self.global_sd)?;
        Ok(())
    }

    fn evaluate_global(&mut self, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        let sd = self.global_sd.clone();
        let global = self.global.as_mut().expect("checked");
        global.load_state_dict(&sd)?;
        evaluate_accuracy(global, data)
    }

    fn evaluate_client(&mut self, _client: usize, data: &Dataset) -> FlResult<f32> {
        // Every client deploys the identical homogeneous model.
        self.evaluate_global(data)
    }

    fn snapshot(&self) -> FlResult<AlgorithmState> {
        let mut state = AlgorithmState::new();
        state.insert_state("global", self.global_sd.clone());
        Ok(state)
    }

    fn restore(&mut self, mut state: AlgorithmState, ctx: &FederationContext) -> FlResult<()> {
        self.setup(ctx)?;
        self.global_sd = state.take_state("global")?;
        Ok(())
    }

    fn set_robust_aggregation(&mut self, robust: RobustAggregation) {
        self.robust = robust;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_fl::{EngineConfig, FlEngine, LocalTrainConfig};
    use mhfl_models::ModelFamily;

    fn context(clients: usize) -> FederationContext {
        let task = DataTask::UciHar;
        let data = FederatedDataset::generate(task, clients, 20, None, 3);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            task.num_classes(),
        );
        let case = ConstraintCase::Memory;
        let devices = case.build_population(clients, 1);
        let assignments = case.assign_clients(
            &pool,
            MhflMethod::HomogeneousSmallest,
            &devices,
            &CostModel::default(),
        );
        FederationContext::new(
            data,
            assignments,
            LocalTrainConfig {
                local_steps: 4,
                ..LocalTrainConfig::default()
            },
            3,
        )
        .unwrap()
    }

    #[test]
    fn baseline_learns_above_chance() {
        let ctx = context(6);
        let engine = FlEngine::new(EngineConfig {
            rounds: 6,
            sample_ratio: 0.5,
            eval_every: 6,
            stability_clients: 2,
            ..EngineConfig::default()
        });
        let mut alg = SmallestHomogeneous::new();
        let report = engine.run(&mut alg, &ctx).unwrap();
        assert!(report.final_accuracy() > 1.0 / 6.0 + 0.05);
        // All clients share the same deployed model, so stability variance is 0.
        assert!(report.stability() < 1e-9);
    }

    #[test]
    fn baseline_uses_smallest_assigned_model() {
        let ctx = context(5);
        let mut alg = SmallestHomogeneous::new();
        alg.setup(&ctx).unwrap();
        let smallest = ctx.smallest_assignment();
        let cfg = alg.config.unwrap();
        assert_eq!(cfg.width_fraction, smallest.entry.choice.width_fraction);
        assert_eq!(cfg.depth_fraction, smallest.entry.choice.depth_fraction);
    }

    #[test]
    fn use_before_setup_errors() {
        let mut alg = SmallestHomogeneous::new();
        let data = mhfl_data::generate_dataset(DataTask::UciHar, 4, 0, None);
        assert!(alg.evaluate_global(&data).is_err());
    }
}
