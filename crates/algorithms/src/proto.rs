//! FedProto: federated prototype learning across heterogeneous topologies.
//!
//! Clients may run entirely different architectures; the only thing they
//! exchange with the server is one prototype (mean feature vector) per class.
//! The server averages prototypes across clients and sends them back; each
//! client regularises its local training so that its features stay close to
//! the global prototype of the sample's class.

use std::collections::BTreeMap;

use mhfl_data::Dataset;
use mhfl_fl::adversary::{clip_tensor, coordinate_median};
use mhfl_fl::train::evaluate_accuracy;
use mhfl_fl::{
    AlgorithmState, ClientPayload, ClientUpdate, FederationContext, FlAlgorithm, FlError, FlResult,
    RobustAggregation,
};
use mhfl_models::{MhflMethod, ProxyConfig, ProxyModel};
use mhfl_nn::loss::{accuracy, cross_entropy, prototype_loss};
use mhfl_nn::{Layer, Sgd, StateDict};
use mhfl_tensor::{SeededRng, Tensor};

/// Shared prototype dimensionality. FedProto requires every client topology
/// to produce embeddings in the same space, so all client proxies are built
/// with this feature width regardless of family.
const PROTO_DIM: usize = 16;
/// Weight of the prototype-regularisation term in the local loss.
const PROTO_LAMBDA: f32 = 1.0;
/// Number of client models averaged for the "global" evaluation ensemble.
const ENSEMBLE_SIZE: usize = 8;

/// The FedProto algorithm.
///
/// The server keeps each participating client's local weights (as a
/// [`StateDict`] snapshot) purely for simulation bookkeeping: the client
/// phase rebuilds the client's model from its stored state, trains it, and
/// ships the updated state back inside the [`ClientUpdate`], so the phase
/// itself needs only `&self` and parallelises freely.
pub struct FedProto {
    client_states: BTreeMap<usize, (ProxyConfig, StateDict)>,
    prototypes: Tensor,
    proto_counts: Vec<f32>,
    num_classes: usize,
    ready: bool,
    robust: RobustAggregation,
}

impl FedProto {
    /// Creates the algorithm.
    pub fn new() -> Self {
        FedProto {
            client_states: BTreeMap::new(),
            prototypes: Tensor::zeros(&[0, 0]),
            proto_counts: Vec::new(),
            num_classes: 0,
            ready: false,
            robust: RobustAggregation::None,
        }
    }

    fn require_setup(&self) -> FlResult<()> {
        if !self.ready {
            return Err(FlError::InvalidConfig("algorithm used before setup".into()));
        }
        Ok(())
    }

    fn client_config(ctx: &FederationContext, client: usize) -> ProxyConfig {
        let task = ctx.task();
        let assignment = ctx.assignment(client);
        let mut cfg = ProxyConfig::for_family(
            assignment.entry.choice.family,
            task.input_kind(),
            task.num_classes(),
            ctx.seed() + client as u64,
        );
        // All topologies share the prototype embedding width.
        cfg.base_dim = PROTO_DIM;
        cfg
    }

    /// Rebuilds a client's model from its stored (or freshly initialised)
    /// local state.
    fn build_client_model(&self, ctx: &FederationContext, client: usize) -> FlResult<ProxyModel> {
        match self.client_states.get(&client) {
            Some((cfg, state)) => Ok(ProxyModel::from_state(*cfg, state)?),
            None => Ok(ProxyModel::new(Self::client_config(ctx, client))?),
        }
    }

    fn has_prototypes(&self) -> Vec<bool> {
        self.proto_counts.iter().map(|&c| c > 0.0).collect()
    }

    /// Local training with cross-entropy plus prototype regularisation, then
    /// the client's per-class prototype sums and counts on its full shard.
    fn train_client(
        &self,
        model: &mut ProxyModel,
        data: &Dataset,
        ctx: &FederationContext,
        rng: &mut SeededRng,
    ) -> FlResult<(Tensor, Vec<f32>)> {
        let cfg = ctx.train_config();
        let prototypes = &self.prototypes;
        let has_proto = self.has_prototypes();
        let num_classes = self.num_classes;

        let mut opt = Sgd::new(cfg.sgd);
        let mut batches = data.batches(cfg.batch_size, rng);
        let mut cursor = 0usize;
        for _ in 0..cfg.local_steps {
            if batches.is_empty() {
                break;
            }
            if cursor >= batches.len() {
                batches = data.batches(cfg.batch_size, rng);
                cursor = 0;
            }
            let batch = &batches[cursor];
            cursor += 1;
            model.zero_grad();
            let out = model.forward_detailed(&batch.inputs, true)?;
            let (_, grad_logits) = cross_entropy(&out.logits, &batch.labels)?;
            let (_, grad_features) =
                prototype_loss(&out.features, &batch.labels, prototypes, &has_proto)?;
            model.backward_detailed(&grad_logits, Some(&grad_features.scale(PROTO_LAMBDA)), &[])?;
            opt.step(model)?;
        }

        // Compute the client's prototypes on its full shard (evaluation mode).
        let mut sums = Tensor::zeros(&[num_classes, PROTO_DIM]);
        let mut counts = vec![0.0f32; num_classes];
        let batch = data.as_batch();
        if !batch.is_empty() {
            let out = model.forward_detailed(&batch.inputs, false)?;
            for (i, &label) in batch.labels.iter().enumerate() {
                if label >= num_classes {
                    continue;
                }
                counts[label] += 1.0;
                for j in 0..PROTO_DIM {
                    let current = sums.at(&[label, j])?;
                    sums.set(&[label, j], current + out.features.at(&[i, j])?)?;
                }
            }
        }
        Ok((sums, counts))
    }
}

impl Default for FedProto {
    fn default() -> Self {
        Self::new()
    }
}

impl FlAlgorithm for FedProto {
    fn name(&self) -> String {
        MhflMethod::FedProto.display_name().to_string()
    }

    fn setup(&mut self, ctx: &FederationContext) -> FlResult<()> {
        self.num_classes = ctx.task().num_classes();
        self.prototypes = Tensor::zeros(&[self.num_classes, PROTO_DIM]);
        self.proto_counts = vec![0.0; self.num_classes];
        self.ready = true;
        Ok(())
    }

    fn client_update(
        &self,
        round: usize,
        client: usize,
        ctx: &FederationContext,
    ) -> FlResult<ClientUpdate> {
        self.require_setup()?;
        let mut rng = SeededRng::new(ctx.seed()).derive((round * 10_000 + client) as u64);
        let mut model = self.build_client_model(ctx, client)?;
        let data = ctx.client_shard_at(client, round);
        let (sums, counts) = self.train_client(&mut model, &data, ctx, &mut rng)?;
        Ok(ClientUpdate::new(
            client,
            data.len(),
            ClientPayload::Prototypes {
                state: model.state_dict(),
                sums,
                counts,
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        updates: Vec<ClientUpdate>,
        ctx: &FederationContext,
    ) -> FlResult<()> {
        self.require_setup()?;
        let mut round_sums = Tensor::zeros(&[self.num_classes, PROTO_DIM]);
        let mut round_counts = vec![0.0f32; self.num_classes];
        // Per-client (sums, counts), kept only under coordinate-median.
        let mut per_client: Vec<(Tensor, Vec<f32>)> = Vec::new();
        for update in updates {
            let client = update.client;
            // Under asynchronous buffered execution the engine discounts
            // stale uploads; a stale client's samples contribute
            // proportionally fewer "effective samples" to the prototype
            // means. Synchronous rounds always carry weight 1.0.
            let staleness_weight = update.staleness_weight;
            let (state, mut sums, counts) = match update.payload {
                ClientPayload::Prototypes {
                    state,
                    sums,
                    counts,
                } => (state, sums, counts),
                other => {
                    return Err(FlError::InvalidConfig(format!(
                        "FedProto aggregation expects prototype payloads, \
                         got {} from client {client}",
                        other.kind()
                    )))
                }
            };
            self.client_states
                .insert(client, (Self::client_config(ctx, client), state));
            if let RobustAggregation::NormClip { max_norm } = self.robust {
                clip_tensor(&mut sums, max_norm);
            }
            round_sums.axpy(staleness_weight, &sums)?;
            for (acc, &c) in round_counts.iter_mut().zip(&counts) {
                *acc += c * staleness_weight;
            }
            if self.robust == RobustAggregation::CoordinateMedian {
                per_client.push((sums, counts));
            }
        }
        if self.robust == RobustAggregation::CoordinateMedian {
            // Robust server-side aggregation: for every class a client
            // reported, take the per-coordinate median of the client *class
            // means* (sums / counts) — a single corrupted client cannot move
            // the prototype when a majority of contributors is honest.
            // Staleness weights are deliberately ignored: the median is an
            // order statistic, not a weighted mean.
            for class in 0..self.num_classes {
                let contributors: Vec<&(Tensor, Vec<f32>)> = per_client
                    .iter()
                    .filter(|(_, counts)| counts[class] > 0.0)
                    .collect();
                if contributors.is_empty() {
                    continue;
                }
                for j in 0..PROTO_DIM {
                    let mut means = Vec::with_capacity(contributors.len());
                    for (sums, counts) in &contributors {
                        means.push(sums.at(&[class, j])? / counts[class]);
                    }
                    let median = coordinate_median(&mut means).expect("contributors is non-empty");
                    self.prototypes.set(&[class, j], median)?;
                }
                self.proto_counts[class] += round_counts[class];
            }
            return Ok(());
        }
        // Server-side prototype aggregation (weighted mean over contributing
        // samples); classes unseen this round keep their previous prototype.
        for (class, &count) in round_counts.iter().enumerate() {
            if count > 0.0 {
                for j in 0..PROTO_DIM {
                    let mean = round_sums.at(&[class, j])? / count;
                    self.prototypes.set(&[class, j], mean)?;
                }
                self.proto_counts[class] += count;
            }
        }
        Ok(())
    }

    fn evaluate_global(&mut self, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        // FedProto keeps no single global model; the platform evaluates the
        // ensemble of (up to ENSEMBLE_SIZE) trained client models.
        if self.client_states.is_empty() || data.is_empty() {
            return Ok(1.0 / self.num_classes.max(1) as f32);
        }
        let batch = data.as_batch();
        let mut probs = Tensor::zeros(&[batch.len(), self.num_classes]);
        for (cfg, state) in self.client_states.values().take(ENSEMBLE_SIZE) {
            let mut model = ProxyModel::from_state(*cfg, state)?;
            let out = model.forward_detailed(&batch.inputs, false)?;
            probs.axpy(1.0, &out.logits.softmax_rows()?)?;
        }
        Ok(accuracy(&probs, &batch.labels)?)
    }

    fn evaluate_client(&mut self, client: usize, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        match self.client_states.get(&client) {
            Some((cfg, state)) => {
                let mut model = ProxyModel::from_state(*cfg, state)?;
                evaluate_accuracy(&mut model, data)
            }
            // A client that never participated deploys an untrained model.
            None => Ok(1.0 / self.num_classes.max(1) as f32),
        }
    }

    fn snapshot(&self) -> FlResult<AlgorithmState> {
        // Per-client model snapshots plus the server's prototype table; the
        // ProxyConfigs are recomputed from the context on restore.
        let mut state = AlgorithmState::new();
        state.insert_tensor("prototypes", self.prototypes.clone());
        state.insert_scalars("proto_counts", self.proto_counts.clone());
        for (&client, (_, sd)) in &self.client_states {
            state.insert_state(AlgorithmState::client_state_key(client), sd.clone());
        }
        Ok(state)
    }

    fn restore(&mut self, mut state: AlgorithmState, ctx: &FederationContext) -> FlResult<()> {
        self.setup(ctx)?;
        self.prototypes = state.take_tensor("prototypes")?;
        self.proto_counts = state.take_scalars("proto_counts")?;
        self.client_states.clear();
        for (name, sd) in state.take_states_with_prefix("client.") {
            let client = AlgorithmState::parse_client_key(&name).ok_or_else(|| {
                FlError::InvalidConfig(format!("malformed client snapshot slot {name:?}"))
            })?;
            if client >= ctx.num_clients() {
                return Err(FlError::InvalidConfig(format!(
                    "snapshot covers client {client} but the context has only {} clients",
                    ctx.num_clients()
                )));
            }
            self.client_states
                .insert(client, (Self::client_config(ctx, client), sd));
        }
        Ok(())
    }

    fn set_robust_aggregation(&mut self, robust: RobustAggregation) {
        self.robust = robust;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_fl::{EngineConfig, FlEngine, LocalTrainConfig};
    use mhfl_models::ModelFamily;

    fn context(clients: usize) -> FederationContext {
        let task = DataTask::UciHar;
        let data = FederatedDataset::generate(task, clients, 20, None, 4);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            task.num_classes(),
        );
        // A tight compute deadline forces slow devices onto smaller family
        // members, so the federation is genuinely topology-heterogeneous.
        let case = ConstraintCase::Computation {
            deadline_secs: 60.0,
        };
        let devices = case.build_population(clients, 6);
        let assignments =
            case.assign_clients(&pool, MhflMethod::FedProto, &devices, &CostModel::default());
        FederationContext::new(
            data,
            assignments,
            LocalTrainConfig {
                local_steps: 4,
                ..LocalTrainConfig::default()
            },
            4,
        )
        .unwrap()
    }

    #[test]
    fn fedproto_learns_above_chance_with_heterogeneous_topologies() {
        let ctx = context(6);
        let engine = FlEngine::new(EngineConfig {
            rounds: 6,
            sample_ratio: 0.5,
            eval_every: 6,
            stability_clients: 3,
            ..EngineConfig::default()
        });
        let mut alg = FedProto::new();
        let report = engine.run(&mut alg, &ctx).unwrap();
        assert!(
            report.final_accuracy() > 1.0 / 6.0 + 0.05,
            "FedProto ensemble accuracy {}",
            report.final_accuracy()
        );
        // Prototypes have been populated for at least a few classes.
        assert!(alg.proto_counts.iter().filter(|&&c| c > 0.0).count() >= 3);
    }

    #[test]
    fn clients_keep_distinct_architectures() {
        // Force an explicitly topology-heterogeneous federation: alternate the
        // assigned family between the smallest and largest ResNet.
        let base = context(4);
        let mut assignments: Vec<_> = (0..base.num_clients())
            .map(|c| base.assignment(c))
            .collect();
        for (i, a) in assignments.iter_mut().enumerate() {
            a.entry.choice.family = if i % 2 == 0 {
                ModelFamily::ResNet18
            } else {
                ModelFamily::ResNet101
            };
        }
        let ctx = FederationContext::new(
            base.eager_data().expect("eager test context").clone(),
            assignments,
            *base.train_config(),
            base.seed(),
        )
        .unwrap();
        let mut alg = FedProto::new();
        alg.setup(&ctx).unwrap();
        let updates: Vec<_> = [0, 1, 2, 3]
            .iter()
            .map(|&c| alg.client_update(1, c, &ctx).unwrap())
            .collect();
        alg.aggregate(1, updates, &ctx).unwrap();
        let block_counts: Vec<usize> = alg
            .client_states
            .values()
            .map(|(cfg, _)| ProxyModel::new(*cfg).unwrap().num_blocks())
            .collect();
        let mut unique = block_counts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(
            unique.len() >= 2,
            "expected heterogeneous topologies, got {block_counts:?}"
        );
    }

    #[test]
    fn untrained_clients_report_chance_accuracy() {
        let ctx = context(4);
        let mut alg = FedProto::new();
        alg.setup(&ctx).unwrap();
        let acc = alg.evaluate_client(2, ctx.test_set()).unwrap();
        assert!((acc - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn use_before_setup_errors() {
        let mut alg = FedProto::new();
        let data = mhfl_data::generate_dataset(DataTask::UciHar, 4, 0, None);
        assert!(alg.evaluate_global(&data).is_err());
    }
}
