//! Depth-heterogeneous algorithms: FeDepth, InclusiveFL and DepthFL.
//!
//! Depth-level clients keep the full layer width but only a prefix of the
//! block stack. Aggregation is per-parameter partial averaging exactly as in
//! the width case (a shallow client simply contributes no entries for the
//! blocks it lacks). The three methods differ in how they compensate for the
//! sparsely-updated deep blocks:
//!
//! * **FeDepth** — plain block-prefix training and partial aggregation
//!   (its memory savings come from training block-by-block, which the cost
//!   model accounts for);
//! * **InclusiveFL** — after aggregation, blocks that no selected client
//!   covered receive a scaled copy of the update of the deepest covered
//!   block (momentum knowledge transfer);
//! * **DepthFL** — every block carries an auxiliary classifier; clients train
//!   all the classifiers they own jointly and distill the deepest available
//!   classifier into the shallower ones (self-distillation), and the global
//!   model is evaluated as the ensemble of its classifiers.

use mhfl_data::Dataset;
use mhfl_fl::submodel::{PlanCache, ServerAggregator, WidthSelection};
use mhfl_fl::train::evaluate_accuracy;
use mhfl_fl::{
    AlgorithmState, ClientPayload, ClientUpdate, FederationContext, FlAlgorithm, FlError, FlResult,
    LocalTrainConfig, RobustAggregation,
};
use mhfl_models::{MhflMethod, ProxyModel};
use mhfl_nn::loss::{accuracy, cross_entropy, soft_cross_entropy};
use mhfl_nn::{Layer, ParamSpec, Sgd, StateDict};
use mhfl_tensor::{SeededRng, Tensor};

use crate::common::{build_global_model, client_proxy_config};

/// Weight of the self-distillation term in DepthFL's local loss.
const DEPTHFL_KD_WEIGHT: f32 = 0.3;
/// Scale of InclusiveFL's momentum transfer into uncovered blocks.
const INCLUSIVE_TRANSFER_SCALE: f32 = 0.3;

/// A depth-heterogeneity MHFL algorithm (FeDepth / InclusiveFL / DepthFL).
pub struct DepthAlgorithm {
    method: MhflMethod,
    global: Option<ProxyModel>,
    global_sd: StateDict,
    global_specs: Vec<ParamSpec>,
    /// Gather/scatter plans reused across rounds (see [`PlanCache`]).
    plans: PlanCache,
    robust: RobustAggregation,
}

impl DepthAlgorithm {
    /// Creates the algorithm for one of the depth-level methods.
    ///
    /// # Panics
    /// Panics if `method` is not a depth-level method.
    pub fn new(method: MhflMethod) -> Self {
        assert!(
            matches!(
                method,
                MhflMethod::FeDepth | MhflMethod::InclusiveFl | MhflMethod::DepthFl
            ),
            "{method} is not a depth-level method"
        );
        DepthAlgorithm {
            method,
            global: None,
            global_sd: StateDict::new(),
            global_specs: Vec::new(),
            plans: PlanCache::new(),
            robust: RobustAggregation::None,
        }
    }

    fn require_setup(&self) -> FlResult<()> {
        if self.global.is_none() {
            return Err(FlError::InvalidConfig("algorithm used before setup".into()));
        }
        Ok(())
    }

    /// DepthFL local training: joint cross-entropy over every available
    /// classifier plus distillation of the deepest classifier into the
    /// shallower ones.
    fn local_train_depthfl(
        model: &mut ProxyModel,
        data: &Dataset,
        cfg: &LocalTrainConfig,
        rng: &mut SeededRng,
    ) -> FlResult<f32> {
        let mut opt = Sgd::new(cfg.sgd);
        let mut batches = data.batches(cfg.batch_size, rng);
        if batches.is_empty() {
            return Ok(0.0);
        }
        let mut cursor = 0usize;
        let mut total_loss = 0.0f32;
        let mut steps = 0usize;
        for _ in 0..cfg.local_steps {
            if cursor >= batches.len() {
                batches = data.batches(cfg.batch_size, rng);
                cursor = 0;
            }
            let batch = &batches[cursor];
            cursor += 1;
            model.zero_grad();
            let out = model.forward_detailed(&batch.inputs, true)?;
            let num_heads = 1 + out.aux_logits.len();
            let head_weight = 1.0 / num_heads as f32;

            // Final classifier: plain cross-entropy.
            let (final_loss, final_grad) = cross_entropy(&out.logits, &batch.labels)?;
            let grad_logits = final_grad.scale(head_weight);
            let teacher_probs = out.logits.softmax_rows()?;

            // Auxiliary classifiers: cross-entropy + distillation from the
            // deepest classifier.
            let mut aux_grads: Vec<Option<Tensor>> = Vec::with_capacity(out.aux_logits.len());
            let mut loss = final_loss;
            for aux in &out.aux_logits {
                let (ce_loss, ce_grad) = cross_entropy(aux, &batch.labels)?;
                let (kd_loss, kd_grad) = soft_cross_entropy(aux, &teacher_probs, 1.0)?;
                loss += ce_loss + DEPTHFL_KD_WEIGHT * kd_loss;
                let mut grad = ce_grad.scale(head_weight);
                grad.axpy(DEPTHFL_KD_WEIGHT * head_weight, &kd_grad)?;
                aux_grads.push(Some(grad));
            }
            model.backward_detailed(&grad_logits, None, &aux_grads)?;
            opt.step(model)?;
            total_loss += loss;
            steps += 1;
        }
        Ok(total_loss / steps.max(1) as f32)
    }

    /// InclusiveFL momentum transfer: copy a scaled version of the deepest
    /// covered block's update into every uncovered deeper block.
    fn momentum_transfer(
        previous: &StateDict,
        updated: &mut StateDict,
        deepest_covered_block: usize,
        total_blocks: usize,
    ) -> FlResult<()> {
        for target_block in (deepest_covered_block + 1)..total_blocks {
            let source_prefix = format!("block{deepest_covered_block}.");
            let target_prefix = format!("block{target_block}.");
            let names: Vec<String> = updated
                .names()
                .into_iter()
                .filter(|n| n.starts_with(&target_prefix))
                .collect();
            for target_name in names {
                let suffix = &target_name[target_prefix.len()..];
                let source_name = format!("{source_prefix}{suffix}");
                let (Some(src_new), Some(src_old)) = (
                    updated.get(&source_name).cloned(),
                    previous.get(&source_name),
                ) else {
                    continue;
                };
                if src_new.dims() != src_old.dims() {
                    continue;
                }
                let delta = src_new.sub(src_old)?;
                if let Some(target) = updated.get(&target_name) {
                    if target.dims() == delta.dims() {
                        let mut moved = target.clone();
                        moved.axpy(INCLUSIVE_TRANSFER_SCALE, &delta)?;
                        updated.insert(target_name.clone(), moved);
                    }
                }
            }
        }
        Ok(())
    }

    /// Ensemble accuracy over all classifiers of a DepthFL global model.
    fn evaluate_ensemble(model: &mut ProxyModel, data: &Dataset) -> FlResult<f32> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let chunk = 128usize;
        let mut weighted = 0.0f32;
        let mut start = 0usize;
        while start < data.len() {
            let end = (start + chunk).min(data.len());
            let indices: Vec<usize> = (start..end).collect();
            let subset = data.subset(&indices);
            let batch = subset.as_batch();
            let out = model.forward_detailed(&batch.inputs, false)?;
            let mut probs = out.logits.softmax_rows()?;
            for aux in &out.aux_logits {
                probs.axpy(1.0, &aux.softmax_rows()?)?;
            }
            let acc = accuracy(&probs, &batch.labels)?;
            weighted += acc * batch.len() as f32;
            start = end;
        }
        Ok(weighted / data.len() as f32)
    }
}

impl FlAlgorithm for DepthAlgorithm {
    fn name(&self) -> String {
        self.method.display_name().to_string()
    }

    fn setup(&mut self, ctx: &FederationContext) -> FlResult<()> {
        let global = build_global_model(ctx, self.method);
        self.global_sd = global.state_dict();
        self.global_specs = global.param_specs();
        self.global = Some(global);
        Ok(())
    }

    fn client_update(
        &self,
        round: usize,
        client: usize,
        ctx: &FederationContext,
    ) -> FlResult<ClientUpdate> {
        self.require_setup()?;
        let mut rng = SeededRng::new(ctx.seed()).derive((round * 10_000 + client) as u64);
        let cfg = client_proxy_config(ctx, client, self.method);
        // Zero-init + cached plan: no thrown-away random draws, one gather
        // pass per parameter (see the width-level twin for details).
        let mut model = ProxyModel::zeroed(cfg)?;
        let plan = self.plans.for_client_specs(
            &self.global_specs,
            &model.param_specs(),
            WidthSelection::Prefix,
        )?;
        model.load_state_dict(&plan.extract(&self.global_sd)?)?;
        let data = ctx.client_shard_at(client, round);
        match self.method {
            MhflMethod::DepthFl => {
                Self::local_train_depthfl(&mut model, &data, ctx.train_config(), &mut rng)?;
            }
            _ => {
                mhfl_fl::train::local_train_ce(&mut model, &data, ctx.train_config(), &mut rng)?;
            }
        }
        Ok(ClientUpdate::new(
            client,
            data.len(),
            ClientPayload::SubModel {
                state: model.state_dict(),
                selection: WidthSelection::Prefix,
                num_blocks: model.num_blocks(),
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        updates: Vec<ClientUpdate>,
        _ctx: &FederationContext,
    ) -> FlResult<()> {
        self.require_setup()?;
        let previous = self.global_sd.clone();
        let mut aggregator =
            ServerAggregator::new(self.global_specs.clone()).with_robust(self.robust);
        let mut deepest_covered = 0usize;
        for update in &updates {
            let ClientPayload::SubModel {
                state,
                selection,
                num_blocks,
            } = &update.payload
            else {
                return Err(FlError::InvalidConfig(format!(
                    "depth aggregation expects sub-model payloads, got {} from client {}",
                    update.payload.kind(),
                    update.client
                )));
            };
            deepest_covered = deepest_covered.max(num_blocks.saturating_sub(1));
            let plan = self
                .plans
                .for_state(&self.global_specs, state, *selection)?;
            aggregator.add_update_with_plan(state, &plan, update.weight())?;
        }
        let mut merged = aggregator.finalize(&self.global_sd)?;
        if self.method == MhflMethod::InclusiveFl && !updates.is_empty() {
            let total_blocks = self
                .global
                .as_ref()
                .map(ProxyModel::num_blocks)
                .unwrap_or_default();
            Self::momentum_transfer(&previous, &mut merged, deepest_covered, total_blocks)?;
        }
        self.global_sd = merged;
        Ok(())
    }

    fn evaluate_global(&mut self, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        let sd = self.global_sd.clone();
        let method = self.method;
        let global = self.global.as_mut().expect("checked by require_setup");
        global.load_state_dict(&sd)?;
        if method == MhflMethod::DepthFl {
            Self::evaluate_ensemble(global, data)
        } else {
            evaluate_accuracy(global, data)
        }
    }

    fn evaluate_client(&mut self, client: usize, data: &Dataset) -> FlResult<f32> {
        self.require_setup()?;
        let global = self.global.as_ref().expect("checked by require_setup");
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let depth = fractions[client % fractions.len()];
        let cfg = global.config().with_depth(depth);
        let mut model = ProxyModel::zeroed(cfg)?;
        let plan = self.plans.for_client_specs(
            &self.global_specs,
            &model.param_specs(),
            WidthSelection::Prefix,
        )?;
        model.load_state_dict(&plan.extract(&self.global_sd)?)?;
        if self.method == MhflMethod::DepthFl {
            Self::evaluate_ensemble(&mut model, data)
        } else {
            evaluate_accuracy(&mut model, data)
        }
    }

    fn snapshot(&self) -> FlResult<AlgorithmState> {
        // As in the width family, the global state dict is the only mutable
        // state across rounds.
        let mut state = AlgorithmState::new();
        state.insert_state("global", self.global_sd.clone());
        Ok(state)
    }

    fn restore(&mut self, mut state: AlgorithmState, ctx: &FederationContext) -> FlResult<()> {
        self.setup(ctx)?;
        self.global_sd = state.take_state("global")?;
        Ok(())
    }

    fn set_robust_aggregation(&mut self, robust: RobustAggregation) {
        self.robust = robust;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_fl::{EngineConfig, FlEngine};
    use mhfl_models::ModelFamily;

    fn context(method: MhflMethod, clients: usize) -> FederationContext {
        let task = DataTask::UciHar;
        let data = FederatedDataset::generate(task, clients, 20, None, 2);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            task.num_classes(),
        );
        let case = ConstraintCase::Memory;
        let devices = case.build_population(clients, 4);
        let assignments = case.assign_clients(&pool, method, &devices, &CostModel::default());
        FederationContext::new(
            data,
            assignments,
            LocalTrainConfig {
                local_steps: 4,
                ..LocalTrainConfig::default()
            },
            2,
        )
        .unwrap()
    }

    fn run(method: MhflMethod) -> f32 {
        let ctx = context(method, 6);
        let engine = FlEngine::new(EngineConfig {
            rounds: 6,
            sample_ratio: 0.5,
            eval_every: 6,
            stability_clients: 3,
            ..EngineConfig::default()
        });
        let mut alg = DepthAlgorithm::new(method);
        engine.run(&mut alg, &ctx).unwrap().final_accuracy()
    }

    #[test]
    fn depthfl_learns_above_chance() {
        let acc = run(MhflMethod::DepthFl);
        assert!(acc > 1.0 / 6.0 + 0.05, "DepthFL accuracy {acc}");
    }

    #[test]
    fn fedepth_and_inclusivefl_learn_above_chance() {
        let fedepth = run(MhflMethod::FeDepth);
        let inclusive = run(MhflMethod::InclusiveFl);
        assert!(fedepth > 1.0 / 6.0 + 0.05, "FeDepth accuracy {fedepth}");
        assert!(
            inclusive > 1.0 / 6.0 + 0.05,
            "InclusiveFL accuracy {inclusive}"
        );
    }

    #[test]
    fn momentum_transfer_moves_uncovered_blocks() {
        // Build two-block state dicts where block1 is "uncovered".
        let mut previous = StateDict::new();
        previous.insert("block0.fc.weight", Tensor::zeros(&[2, 2]));
        previous.insert("block1.fc.weight", Tensor::zeros(&[2, 2]));
        let mut updated = previous.clone();
        updated.insert("block0.fc.weight", Tensor::full(&[2, 2], 1.0));
        DepthAlgorithm::momentum_transfer(&previous, &mut updated, 0, 2).unwrap();
        let moved = updated.get("block1.fc.weight").unwrap();
        assert!((moved.as_slice()[0] - INCLUSIVE_TRANSFER_SCALE).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "not a depth-level method")]
    fn wrong_method_is_rejected() {
        let _ = DepthAlgorithm::new(MhflMethod::Fjord);
    }

    #[test]
    fn use_before_setup_errors() {
        let mut alg = DepthAlgorithm::new(MhflMethod::FeDepth);
        let data = mhfl_data::generate_dataset(DataTask::UciHar, 4, 0, None);
        assert!(alg.evaluate_global(&data).is_err());
    }
}
