//! Helpers shared by all algorithm implementations.

use mhfl_fl::FederationContext;
use mhfl_models::{MhflMethod, ProxyConfig, ProxyModel};

/// Builds the proxy-model configuration a client trains, combining the task's
/// input shape with the architecture family and width/depth fractions the
/// constraint case assigned to this client.
pub fn client_proxy_config(
    ctx: &FederationContext,
    client: usize,
    method: MhflMethod,
) -> ProxyConfig {
    let task = ctx.task();
    let assignment = ctx.assignment(client);
    let with_aux = matches!(method, MhflMethod::DepthFl);
    ProxyConfig::for_family(
        assignment.entry.choice.family,
        task.input_kind(),
        task.num_classes(),
        ctx.seed(),
    )
    .with_width(assignment.entry.choice.width_fraction)
    .with_depth(assignment.entry.choice.depth_fraction)
    .with_aux_heads(with_aux)
}

/// Builds the configuration of the server's full-size global model: the
/// largest family appearing in the assignments, at full width and depth.
pub fn global_proxy_config(ctx: &FederationContext, method: MhflMethod) -> ProxyConfig {
    let task = ctx.task();
    let largest = ctx.largest_assignment();
    let with_aux = matches!(method, MhflMethod::DepthFl);
    ProxyConfig::for_family(
        largest.entry.choice.family,
        task.input_kind(),
        task.num_classes(),
        ctx.seed(),
    )
    .with_aux_heads(with_aux)
}

/// Builds and returns the global proxy model for a context/method.
///
/// # Panics
/// Panics only if the configuration is internally inconsistent, which would
/// indicate a bug in the constraint-assignment code.
pub fn build_global_model(ctx: &FederationContext, method: MhflMethod) -> ProxyModel {
    ProxyModel::new(global_proxy_config(ctx, method)).expect("global proxy config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_fl::LocalTrainConfig;
    use mhfl_models::ModelFamily;

    pub(crate) fn test_context(
        task: DataTask,
        base_family: ModelFamily,
        method: MhflMethod,
        num_clients: usize,
    ) -> FederationContext {
        let data = FederatedDataset::generate(task, num_clients, 16, None, 11);
        let pool = ModelPool::build(
            base_family,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            task.num_classes(),
        );
        let case = ConstraintCase::Computation {
            deadline_secs: 400.0,
        };
        let devices = case.build_population(num_clients, 5);
        let assignments = case.assign_clients(&pool, method, &devices, &CostModel::default());
        FederationContext::new(data, assignments, LocalTrainConfig::default(), 11).unwrap()
    }

    #[test]
    fn client_configs_follow_assignments() {
        let ctx = test_context(
            DataTask::Cifar10,
            ModelFamily::ResNet101,
            MhflMethod::SHeteroFl,
            8,
        );
        for client in 0..ctx.num_clients() {
            let cfg = client_proxy_config(&ctx, client, MhflMethod::SHeteroFl);
            let a = ctx.assignment(client);
            assert_eq!(cfg.width_fraction, a.entry.choice.width_fraction);
            assert_eq!(cfg.num_classes, 10);
            assert!(!cfg.with_aux_heads);
        }
        let depth_cfg = client_proxy_config(&ctx, 0, MhflMethod::DepthFl);
        assert!(depth_cfg.with_aux_heads);
    }

    #[test]
    fn global_config_is_full_size() {
        let ctx = test_context(
            DataTask::Cifar10,
            ModelFamily::ResNet101,
            MhflMethod::FedRolex,
            6,
        );
        let cfg = global_proxy_config(&ctx, MhflMethod::FedRolex);
        assert_eq!(cfg.width_fraction, 1.0);
        assert_eq!(cfg.depth_fraction, 1.0);
        let model = build_global_model(&ctx, MhflMethod::FedRolex);
        assert!(model.num_parameters() > 0);
    }
}
