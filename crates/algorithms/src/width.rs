//! Width-heterogeneous algorithms: Fjord, SHeteroFL and FedRolex.
//!
//! All three follow the sub-model partial-aggregation recipe: the server
//! holds one full-width global model; each client receives a channel-sliced
//! sub-model matching its assigned width fraction, trains it locally, and the
//! server averages every global entry over the clients that covered it. The
//! algorithms differ only in *which* channels a client receives:
//!
//! * **SHeteroFL** — the first `k` channels (static nested sub-networks);
//! * **Fjord** — also nested prefixes, but each round a client trains at a
//!   width sampled uniformly from the fractions it can support (ordered
//!   dropout);
//! * **FedRolex** — a rolling window whose offset advances with the round
//!   index, so every global channel is eventually trained by small clients.

use mhfl_data::Dataset;
use mhfl_fl::submodel::{PlanCache, ServerAggregator, WidthSelection};
use mhfl_fl::train::{evaluate_accuracy, local_train_ce};
use mhfl_fl::{
    AlgorithmState, ClientPayload, ClientUpdate, FederationContext, FlAlgorithm, FlError, FlResult,
    RobustAggregation,
};
use mhfl_models::{MhflMethod, ProxyModel};
use mhfl_nn::{ParamSpec, StateDict};
use mhfl_tensor::SeededRng;

use crate::common::{build_global_model, client_proxy_config};

/// The standard width fractions clients may train at.
const WIDTH_FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// A width-heterogeneity MHFL algorithm (Fjord / SHeteroFL / FedRolex).
pub struct WidthAlgorithm {
    method: MhflMethod,
    global: Option<ProxyModel>,
    global_sd: StateDict,
    global_specs: Vec<ParamSpec>,
    /// Gather/scatter plans reused across rounds (see [`PlanCache`]).
    plans: PlanCache,
    robust: RobustAggregation,
}

impl WidthAlgorithm {
    /// Creates the algorithm for one of the width-level methods.
    ///
    /// # Panics
    /// Panics if `method` is not a width-level method — selecting the wrong
    /// variant is a programming error, not a runtime condition.
    pub fn new(method: MhflMethod) -> Self {
        assert!(
            matches!(
                method,
                MhflMethod::Fjord | MhflMethod::SHeteroFl | MhflMethod::FedRolex
            ),
            "{method} is not a width-level method"
        );
        WidthAlgorithm {
            method,
            global: None,
            global_sd: StateDict::new(),
            global_specs: Vec::new(),
            plans: PlanCache::new(),
            robust: RobustAggregation::None,
        }
    }

    fn selection(&self, round: usize) -> WidthSelection {
        match self.method {
            MhflMethod::FedRolex => WidthSelection::Rolling { shift: round },
            _ => WidthSelection::Prefix,
        }
    }

    /// The width a client trains at this round.
    fn round_width(&self, assigned: f64, rng: &mut SeededRng) -> f64 {
        match self.method {
            MhflMethod::Fjord => {
                let allowed: Vec<f64> = WIDTH_FRACTIONS
                    .iter()
                    .copied()
                    .filter(|w| *w <= assigned + 1e-9)
                    .collect();
                if allowed.is_empty() {
                    assigned
                } else {
                    allowed[rng.index(allowed.len())]
                }
            }
            _ => assigned,
        }
    }

    fn global_mut(&mut self) -> FlResult<&mut ProxyModel> {
        self.global
            .as_mut()
            .ok_or_else(|| FlError::InvalidConfig("algorithm used before setup".into()))
    }
}

impl FlAlgorithm for WidthAlgorithm {
    fn name(&self) -> String {
        self.method.display_name().to_string()
    }

    fn setup(&mut self, ctx: &FederationContext) -> FlResult<()> {
        let global = build_global_model(ctx, self.method);
        self.global_sd = global.state_dict();
        self.global_specs = global.param_specs();
        self.global = Some(global);
        Ok(())
    }

    fn client_update(
        &self,
        round: usize,
        client: usize,
        ctx: &FederationContext,
    ) -> FlResult<ClientUpdate> {
        let selection = self.selection(round);
        let mut rng = SeededRng::new(ctx.seed()).derive((round * 10_000 + client) as u64);
        let assigned = ctx.assignment(client).entry.choice.width_fraction;
        let width = self.round_width(assigned, &mut rng);
        let cfg = client_proxy_config(ctx, client, self.method).with_width(width);
        // Zero-init skips the Box-Muller draws that the extracted sub-model
        // would overwrite anyway; the cached plan turns extraction into one
        // gather pass per parameter.
        let mut model = ProxyModel::zeroed(cfg)?;
        let plan =
            self.plans
                .for_client_specs(&self.global_specs, &model.param_specs(), selection)?;
        model.load_state_dict(&plan.extract(&self.global_sd)?)?;
        let data = ctx.client_shard_at(client, round);
        local_train_ce(&mut model, &data, ctx.train_config(), &mut rng)?;
        Ok(ClientUpdate::new(
            client,
            data.len(),
            ClientPayload::SubModel {
                state: model.state_dict(),
                selection,
                num_blocks: model.num_blocks(),
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        updates: Vec<ClientUpdate>,
        _ctx: &FederationContext,
    ) -> FlResult<()> {
        let mut aggregator =
            ServerAggregator::new(self.global_specs.clone()).with_robust(self.robust);
        for update in &updates {
            let ClientPayload::SubModel {
                state, selection, ..
            } = &update.payload
            else {
                return Err(FlError::InvalidConfig(format!(
                    "width aggregation expects sub-model payloads, got {} from client {}",
                    update.payload.kind(),
                    update.client
                )));
            };
            let plan = self
                .plans
                .for_state(&self.global_specs, state, *selection)?;
            aggregator.add_update_with_plan(state, &plan, update.weight())?;
        }
        self.global_sd = aggregator.finalize(&self.global_sd)?;
        Ok(())
    }

    fn evaluate_global(&mut self, data: &Dataset) -> FlResult<f32> {
        let sd = self.global_sd.clone();
        let global = self.global_mut()?;
        global.load_state_dict(&sd)?;
        evaluate_accuracy(global, data)
    }

    fn evaluate_client(&mut self, client: usize, data: &Dataset) -> FlResult<f32> {
        // A client deploys its assigned-width nested sub-model of the final
        // global parameters (prefix slice, matching how it would run offline).
        let Some(global) = self.global.as_ref() else {
            return Err(FlError::InvalidConfig("algorithm used before setup".into()));
        };
        let width = WIDTH_FRACTIONS[client % WIDTH_FRACTIONS.len()];
        let cfg = global.config().with_width(width).with_aux_heads(false);
        let mut model = ProxyModel::zeroed(cfg)?;
        let plan = self.plans.for_client_specs(
            &self.global_specs,
            &model.param_specs(),
            WidthSelection::Prefix,
        )?;
        model.load_state_dict(&plan.extract(&self.global_sd)?)?;
        evaluate_accuracy(&mut model, data)
    }

    fn snapshot(&self) -> FlResult<AlgorithmState> {
        // The global state dict is the only mutable state: the model shell,
        // parameter specs and plan cache are all rebuilt from the context.
        let mut state = AlgorithmState::new();
        state.insert_state("global", self.global_sd.clone());
        Ok(state)
    }

    fn restore(&mut self, mut state: AlgorithmState, ctx: &FederationContext) -> FlResult<()> {
        self.setup(ctx)?;
        self.global_sd = state.take_state("global")?;
        Ok(())
    }

    fn set_robust_aggregation(&mut self, robust: RobustAggregation) {
        self.robust = robust;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_fl::{EngineConfig, FlEngine, LocalTrainConfig};
    use mhfl_models::ModelFamily;

    fn context(task: DataTask, method: MhflMethod, clients: usize) -> FederationContext {
        let data = FederatedDataset::generate(task, clients, 20, None, 1);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            task.num_classes(),
        );
        let case = ConstraintCase::Computation {
            deadline_secs: 350.0,
        };
        let devices = case.build_population(clients, 2);
        let assignments = case.assign_clients(&pool, method, &devices, &CostModel::default());
        FederationContext::new(
            data,
            assignments,
            LocalTrainConfig {
                local_steps: 4,
                ..LocalTrainConfig::default()
            },
            1,
        )
        .unwrap()
    }

    fn run_method(method: MhflMethod, task: DataTask) -> f32 {
        let ctx = context(task, method, 6);
        let engine = FlEngine::new(EngineConfig {
            rounds: 6,
            sample_ratio: 0.5,
            eval_every: 6,
            stability_clients: 3,
            ..EngineConfig::default()
        });
        let mut alg = WidthAlgorithm::new(method);
        let report = engine.run(&mut alg, &ctx).unwrap();
        report.final_accuracy()
    }

    #[test]
    fn shetherofl_learns_above_chance_on_har() {
        let acc = run_method(MhflMethod::SHeteroFl, DataTask::UciHar);
        assert!(
            acc > 1.0 / 6.0 + 0.1,
            "SHeteroFL accuracy {acc} should beat chance"
        );
    }

    #[test]
    fn fedrolex_and_fjord_learn_above_chance_on_har() {
        let rolex = run_method(MhflMethod::FedRolex, DataTask::UciHar);
        let fjord = run_method(MhflMethod::Fjord, DataTask::UciHar);
        assert!(rolex > 1.0 / 6.0 + 0.05, "FedRolex accuracy {rolex}");
        assert!(fjord > 1.0 / 6.0 + 0.05, "Fjord accuracy {fjord}");
    }

    #[test]
    fn selection_strategy_matches_method() {
        let shetero = WidthAlgorithm::new(MhflMethod::SHeteroFl);
        assert_eq!(shetero.selection(7), WidthSelection::Prefix);
        let rolex = WidthAlgorithm::new(MhflMethod::FedRolex);
        assert_eq!(rolex.selection(7), WidthSelection::Rolling { shift: 7 });
    }

    #[test]
    fn fjord_samples_widths_up_to_assignment() {
        let alg = WidthAlgorithm::new(MhflMethod::Fjord);
        let mut rng = SeededRng::new(0);
        for _ in 0..50 {
            let w = alg.round_width(0.5, &mut rng);
            assert!(w <= 0.5 + 1e-9);
            assert!(WIDTH_FRACTIONS.contains(&w));
        }
        let shetero = WidthAlgorithm::new(MhflMethod::SHeteroFl);
        assert_eq!(shetero.round_width(0.75, &mut rng), 0.75);
    }

    #[test]
    #[should_panic(expected = "not a width-level method")]
    fn wrong_method_is_rejected() {
        let _ = WidthAlgorithm::new(MhflMethod::DepthFl);
    }

    #[test]
    fn evaluate_before_setup_errors() {
        let mut alg = WidthAlgorithm::new(MhflMethod::SHeteroFl);
        let data = mhfl_data::generate_dataset(DataTask::UciHar, 8, 0, None);
        assert!(alg.evaluate_global(&data).is_err());
        assert!(alg.evaluate_client(0, &data).is_err());
    }
}
