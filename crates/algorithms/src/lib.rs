//! # mhfl-algorithms
//!
//! The model-heterogeneous federated learning algorithms benchmarked by
//! PracMHBench, all expressed against the [`mhfl_fl::FlAlgorithm`] trait so
//! the engine, the constraint cases and the metrics are shared.
//!
//! | Level | Algorithms | Mechanism |
//! |---|---|---|
//! | Width | [`WidthAlgorithm`] (Fjord, SHeteroFL, FedRolex) | nested / rolling channel sub-models + partial aggregation |
//! | Depth | [`DepthAlgorithm`] (FeDepth, InclusiveFL, DepthFL) | block-prefix sub-models, momentum transfer, self-distillation |
//! | Topology | [`FedProto`], [`FedEt`] | prototype exchange / public-set logit distillation across distinct architectures |
//! | Baseline | [`SmallestHomogeneous`] | FedAvg on the smallest model every device can hold |
//!
//! Use [`build_algorithm`] to instantiate any method from its
//! [`mhfl_models::MhflMethod`] tag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod common;
mod depth;
mod fedet;
mod proto;
mod width;

pub use baseline::SmallestHomogeneous;
pub use common::{client_proxy_config, global_proxy_config};
pub use depth::DepthAlgorithm;
pub use fedet::FedEt;
pub use proto::FedProto;
pub use width::WidthAlgorithm;

use mhfl_fl::FlAlgorithm;
use mhfl_models::MhflMethod;

/// Instantiates the algorithm implementing `method`.
pub fn build_algorithm(method: MhflMethod) -> Box<dyn FlAlgorithm> {
    match method {
        MhflMethod::Fjord | MhflMethod::SHeteroFl | MhflMethod::FedRolex => {
            Box::new(WidthAlgorithm::new(method))
        }
        MhflMethod::FeDepth | MhflMethod::InclusiveFl | MhflMethod::DepthFl => {
            Box::new(DepthAlgorithm::new(method))
        }
        MhflMethod::FedProto => Box::new(FedProto::new()),
        MhflMethod::FedEt => Box::new(FedEt::new()),
        MhflMethod::HomogeneousSmallest => Box::new(SmallestHomogeneous::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_method() {
        for method in MhflMethod::ALL {
            let alg = build_algorithm(method);
            assert!(!alg.name().is_empty());
        }
    }

    #[test]
    fn factory_names_match_methods() {
        assert_eq!(build_algorithm(MhflMethod::SHeteroFl).name(), "SHeteroFL");
        assert_eq!(build_algorithm(MhflMethod::DepthFl).name(), "DepthFL");
        assert_eq!(build_algorithm(MhflMethod::FedProto).name(), "FedProto");
        assert_eq!(build_algorithm(MhflMethod::FedEt).name(), "Fed-ET");
    }
}
