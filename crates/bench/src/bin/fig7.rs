//! Regenerates Fig. 7: accuracy of every method on CIFAR-100 under single and
//! combined constraints (Comp, Mem, Comm, Mem+Comm, Mem+Comm+Comp).

use mhfl_bench::{print_table, scale_from_args, Table};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::ExperimentSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let cases = [
        ConstraintCase::Computation {
            deadline_secs: 300.0,
        },
        ConstraintCase::Memory,
        ConstraintCase::Communication { budget_secs: 200.0 },
        ConstraintCase::memory_plus_communication(200.0),
        ConstraintCase::all_combined(300.0, 200.0),
    ];
    let mut table = Table::new(
        "Fig. 7 — analysis of constraint combinations (CIFAR-100 accuracy)",
        &["Method", "Comp", "Mem", "Comm", "Mem+Comm", "Mem+Comm+Comp"],
    );
    for method in MhflMethod::HETEROGENEOUS {
        let mut row = vec![method.to_string()];
        for case in cases {
            let outcome = ExperimentSpec::new(DataTask::Cifar100, method, case)
                .with_scale(scale)
                .run()?;
            row.push(format!("{:.3}", outcome.summary.global_accuracy));
        }
        table.push_row(row);
    }
    print_table(&table);
    Ok(())
}
