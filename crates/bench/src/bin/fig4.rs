//! Regenerates Fig. 4 (computation-limited MHFL): global accuracy, time-to-accuracy, stability and
//! effectiveness of every MHFL algorithm under this constraint.
//! Pass `--quick` for a smoke-test scale or `--paper` for the full scale.

use mhfl_bench::{print_table, scale_from_args, Table};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::{ComparisonRow, ExperimentSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let constraint = ConstraintCase::Computation {
        deadline_secs: 300.0,
    };
    let tasks = [
        DataTask::Cifar10,
        DataTask::Cifar100,
        DataTask::AgNews,
        DataTask::StackOverflow,
        DataTask::HarBox,
        DataTask::UciHar,
    ];
    for task in tasks {
        let methods: Vec<MhflMethod> = MhflMethod::HETEROGENEOUS
            .into_iter()
            .filter(|m| task.modality() != mhfl_data::Modality::Nlp || m.supports_nlp())
            .collect();
        let spec = ExperimentSpec::new(task, MhflMethod::SHeteroFl, constraint).with_scale(scale);
        let outcomes = spec.run_comparison(&methods)?;
        let mut table = Table::new(
            format!(
                "Fig. 4 (computation-limited MHFL) — {task} ({})",
                constraint.label()
            ),
            &[
                "Method",
                "Level",
                "GlobalAcc",
                "TimeToAcc(h)",
                "Stability",
                "Effectiveness",
            ],
        );
        for outcome in &outcomes {
            let row = ComparisonRow::from_outcome(outcome);
            table.push_row(vec![
                row.method,
                row.level,
                format!("{:.3}", row.global_accuracy),
                row.time_to_accuracy_hours
                    .map(|h| format!("{h:.2}"))
                    .unwrap_or_else(|| "—".into()),
                format!("{:.5}", row.stability),
                row.effectiveness
                    .map(|e| format!("{e:+.3}"))
                    .unwrap_or_else(|| "—".into()),
            ]);
        }
        print_table(&table);
    }
    Ok(())
}
