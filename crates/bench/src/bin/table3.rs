//! Regenerates Table III: the edge devices used in the platform construction.

use mhfl_bench::{print_table, Table};
use mhfl_device::DeviceProfile;

fn main() {
    let mut table = Table::new(
        "Table III — edge devices used in the platform construction",
        &[
            "Device",
            "Sustained GFLOP/s",
            "GPU",
            "Memory (GiB)",
            "Bandwidth (Mbps)",
        ],
    );
    for device in DeviceProfile::all() {
        table.push_row(vec![
            device.name.clone(),
            format!("{:.0}", device.gflops),
            if device.has_gpu {
                "yes".into()
            } else {
                "no".into()
            },
            format!("{:.0}", device.memory_gib()),
            format!("{:.0}", device.bandwidth_mbps),
        ]);
    }
    print_table(&table);
}
