//! Regenerates Fig. 8: non-IID robustness under the computation constraint
//! (IID vs Dirichlet alpha=0.5 vs alpha=5) on CIFAR-100, CIFAR-10 and AG-News.

use mhfl_bench::{print_table, scale_from_args, Table};
use mhfl_data::{DataTask, Partition};
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::ExperimentSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let constraint = ConstraintCase::Computation {
        deadline_secs: 300.0,
    };
    let partitions = [
        ("iid", Partition::Iid),
        ("niid-0.5", Partition::Dirichlet { alpha: 0.5 }),
        ("niid-5", Partition::Dirichlet { alpha: 5.0 }),
    ];
    for task in [DataTask::Cifar100, DataTask::Cifar10, DataTask::AgNews] {
        let mut table = Table::new(
            format!("Fig. 8 — non-IID performance on {task} (computation-limited)"),
            &["Method", "iid", "niid-0.5", "niid-5"],
        );
        let methods: Vec<MhflMethod> = MhflMethod::HETEROGENEOUS
            .into_iter()
            .filter(|m| task.modality() != mhfl_data::Modality::Nlp || m.supports_nlp())
            .collect();
        for method in methods {
            let mut row = vec![method.to_string()];
            for (_, partition) in &partitions {
                let outcome = ExperimentSpec::new(task, method, constraint)
                    .with_scale(scale)
                    .with_partition(*partition)
                    .run()?;
                row.push(format!("{:.3}", outcome.summary.global_accuracy));
            }
            table.push_row(row);
        }
        print_table(&table);
    }
    Ok(())
}
