//! Regenerates Fig. 9: scalability analysis — accuracy and time-to-accuracy
//! versus the number of clients under the memory-limited constraint on
//! CIFAR-100.

use mhfl_bench::{print_series, print_table, scale_from_args, Table};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::{ExperimentSpec, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let client_counts: Vec<usize> = match scale {
        RunScale::Quick => vec![4, 8, 12],
        RunScale::Standard => vec![20, 40, 80],
        RunScale::Paper => vec![100, 200, 500],
    };
    let methods = [
        MhflMethod::Fjord,
        MhflMethod::SHeteroFl,
        MhflMethod::FedRolex,
        MhflMethod::FeDepth,
        MhflMethod::InclusiveFl,
        MhflMethod::DepthFl,
        MhflMethod::FedEt,
    ];
    let mut table = Table::new(
        "Fig. 9 — scalability on memory-limited CIFAR-100",
        &["Method", "Clients", "Accuracy", "TimeToAcc(h)"],
    );
    for method in methods {
        let mut accs = Vec::new();
        for &clients in &client_counts {
            let outcome = ExperimentSpec::new(DataTask::Cifar100, method, ConstraintCase::Memory)
                .with_scale(scale)
                .with_num_clients(clients)
                .with_target_accuracy(0.3)
                .run()?;
            accs.push(outcome.summary.global_accuracy as f64);
            table.push_row(vec![
                method.to_string(),
                clients.to_string(),
                format!("{:.3}", outcome.summary.global_accuracy),
                outcome
                    .summary
                    .time_to_accuracy_secs
                    .map(|s| format!("{:.2}", s / 3600.0))
                    .unwrap_or_else(|| "—".into()),
            ]);
        }
        print_series(
            &format!("{method} accuracy vs clients {client_counts:?}"),
            &accs,
        );
    }
    print_table(&table);
    Ok(())
}
