//! Async-vs-sync execution study: runs the same experiment specification
//! under synchronous rounds and FedBuff-style asynchronous buffered
//! aggregation, reporting time-to-accuracy, mean staleness, client-slot
//! utilisation and uploaded bytes for each mode — and verifies that both
//! modes are byte-identically reproducible from the experiment seed.
//!
//! ```bash
//! cargo run --release -p mhfl-bench --bin async_study [-- --quick|--paper]
//! ```

use mhfl_bench::{print_table, scale_from_args, Table};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::{Execution, ExperimentOutcome, ExperimentSpec};

fn run_mode(base: ExperimentSpec, label: &str, execution: Execution) -> ExperimentOutcome {
    let spec = base.with_execution(execution);
    let outcome = spec.run().expect("experiment runs");
    // Determinism gate: a second run from the same seed must produce a
    // byte-identical report (the Debug rendering covers every field,
    // including per-client telemetry).
    let again = spec.run().expect("experiment runs twice");
    assert_eq!(
        format!("{:?}", outcome.report),
        format!("{:?}", again.report),
        "{label} execution is not deterministic"
    );
    println!("{label}: deterministic across two seeded runs ✓");
    outcome
}

fn main() {
    let scale = scale_from_args();
    let base = ExperimentSpec::new(
        DataTask::UciHar,
        MhflMethod::SHeteroFl,
        ConstraintCase::Memory,
    )
    .with_scale(scale)
    .with_seed(42)
    .with_target_accuracy(0.5);

    let modes: [(&str, Execution); 3] = [
        ("sync", Execution::Synchronous),
        ("async-k2", Execution::async_buffered(2)),
        ("async-k4", Execution::async_buffered(4)),
    ];

    println!(
        "Execution study: SHeteroFL on {} ({scale:?} scale)\n",
        base.task
    );
    let mut table = Table::new(
        "Synchronous rounds vs FedBuff-style buffered aggregation",
        &[
            "Mode",
            "GlobalAcc",
            "SimTime(s)",
            "TimeToAcc(s)",
            "MeanStaleness",
            "Utilisation",
            "UploadedMB",
        ],
    );
    for (label, execution) in modes {
        let outcome = run_mode(base, label, execution);
        let report = &outcome.report;
        table.push_row(vec![
            label.to_string(),
            format!("{:.3}", outcome.summary.global_accuracy),
            format!("{:.1}", outcome.summary.total_time_secs),
            outcome
                .summary
                .time_to_accuracy_secs
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "—".to_string()),
            format!("{:.2}", report.mean_staleness()),
            format!("{:.2}", report.utilisation()),
            format!("{:.2}", report.total_payload_bytes() as f64 / 1e6),
        ]);
    }
    println!();
    print_table(&table);
    println!("\nSynchronous rounds wait for stragglers (low utilisation, zero staleness);");
    println!("buffered aggregation refills slots as updates land, trading staleness for");
    println!("wall-clock progress. Larger buffers smooth staleness but aggregate later.");
}
