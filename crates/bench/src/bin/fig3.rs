//! Regenerates Fig. 3: the constructed model pool — parameters, GFLOPs,
//! memory and training time of ResNet-101 at x1/x0.75/x0.5/x0.25 for
//! Fjord, SHeteroFL and FedRolex on a Jetson Orin NX.

use mhfl_bench::{print_series, print_table, Table};
use mhfl_device::{CostModel, DeviceCapability, DeviceProfile};
use mhfl_models::{MhflMethod, ModelFamily, ModelSpec};

fn main() {
    let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
    let cost_model = CostModel::default();
    let orin = DeviceCapability::from(&DeviceProfile::jetson_orin_nx());
    let fractions = [1.0, 0.75, 0.5, 0.25];
    let methods = [
        MhflMethod::Fjord,
        MhflMethod::SHeteroFl,
        MhflMethod::FedRolex,
    ];

    let mut table = Table::new(
        "Fig. 3 — illustration of the constructed model pool (Jetson Orin NX)",
        &[
            "Method",
            "Scale",
            "Params(M)",
            "GFLOPs",
            "Memory(MB)",
            "Train time (s)",
        ],
    );
    for method in methods {
        let mut params = Vec::new();
        let mut times = Vec::new();
        for &f in &fractions {
            let stats = spec.stats(f, 1.0);
            let cost = cost_model.round_cost(&stats, method, &orin);
            params.push(cost_model.effective_params(&stats, method) as f64 / 1e6);
            times.push(cost.train_time_secs);
            table.push_row(vec![
                method.to_string(),
                format!("R101x{f}"),
                format!(
                    "{:.2}",
                    cost_model.effective_params(&stats, method) as f64 / 1e6
                ),
                format!("{:.2}", stats.gflops()),
                format!("{:.0}", cost.memory_bytes as f64 / 1e6),
                format!("{:.1}", cost.train_time_secs),
            ]);
        }
        print_series(
            &format!("{method} params(M) [x1, x0.75, x0.5, x0.25]"),
            &params,
        );
        print_series(
            &format!("{method} train-time(s) [x1, x0.75, x0.5, x0.25]"),
            &times,
        );
    }
    println!();
    print_table(&table);
}
