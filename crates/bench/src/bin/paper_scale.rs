//! `paper_scale` — the hot-path engine benchmark at the paper's scale.
//!
//! Two sections, both emitted into `BENCH_paper_scale.json`:
//!
//! * **micro** — the rebuilt hot paths timed head-to-head against their
//!   retained reference implementations inside one binary: the blocked /
//!   transpose-aware matmul kernels vs. the naive transpose-materialising
//!   data flow, and plan-cached single-pass sub-model extraction +
//!   scatter-add aggregation vs. the clone-then-gather-per-axis path with
//!   randomly re-initialised client models. The reported `speedup` values
//!   are the wall-clock ratios the tentpole rewrite is accountable for.
//! * **families** — one full `RunScale::Paper` federated round (setup →
//!   client phase at the paper's client counts → aggregation → global
//!   evaluation) per algorithm family, with per-phase wall-clock splits.
//!
//! Usage: `cargo run --release -p mhfl-bench --bin paper_scale [--quick]`
//! (`--quick` shrinks everything to CI smoke size).
//!
//! ## Durable full runs (`--checkpoint` / `--resume`)
//!
//! With `--checkpoint <path>` the binary skips the micro/family sections and
//! instead drives one **full multi-round federated run** of the width family
//! at the selected scale, auto-saving a durable checkpoint
//! (`mhfl_fl::persist`) to `<path>` every `--checkpoint-every <n>` rounds
//! (default 25). If `<path>` already exists the run **resumes from it** and
//! continues bit-exactly; `--resume <path>` is the same flow but requires
//! the file to exist. `--stop-after-rounds <r>` saves and exits once `r`
//! rounds have completed — the "kill" half of an interruption smoke test:
//!
//! ```bash
//! # start, get interrupted at round 2...
//! cargo run -p mhfl-bench --bin paper_scale -- --quick \
//!     --checkpoint run.ckpt --checkpoint-every 1 --stop-after-rounds 2
//! # ...relaunch: continues from round 2 and prints the final digest
//! cargo run -p mhfl-bench --bin paper_scale -- --quick --resume run.ckpt
//! ```
//!
//! ## Distributed mode (`--workers` / `--listen` / `--connect`)
//!
//! With `--workers <n>` the binary benchmarks the `mhfl-net` distributed
//! engine instead of the family rounds: it binds `--listen` (default
//! `tcp:127.0.0.1:0`), re-execs itself `n` times as workers (`--connect`),
//! drives one full width-family run sharded across them, verifies the
//! digest against the single-process reference, and emits a
//! `"distributed"` section — per-phase timings plus per-worker
//! utilisation — alongside the micro section in `BENCH_paper_scale.json`:
//!
//! ```bash
//! cargo run --release -p mhfl-bench --bin paper_scale -- --quick --workers 2
//! ```

use std::time::Instant;

use mhfl_bench::{arg_usize, arg_value, has_flag, run_resumable, scale_from_args, RunScale};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_fl::submodel::{
    extract_submodel, ExtractionPlan, PlanCache, ServerAggregator, WidthSelection,
};
use mhfl_fl::{run_clients, ClientPayload, Parallelism, Schedule};
use mhfl_models::{InputKind, MhflMethod, ModelFamily, ProxyConfig, ProxyModel};
use mhfl_tensor::{ArenaStats, SeededRng, Tensor, TensorArena};
use pracmhbench_core::ExperimentSpec;

/// Committed ceiling on steady-state tensor-storage allocations per warm
/// federated round (width family, any scale). The arena serves warm-round
/// leases from recycled buffers, so the residue is a handful of leases that
/// outgrow the pool's byte caps plus first-touch shapes a round mints
/// uniquely; CI's `alloc-audit` job fails if a regression pushes the
/// measured number past this line.
const ALLOC_CEILING_PER_ROUND: u64 = 256;

/// One micro-benchmark comparison: reference vs. optimised wall-clock.
struct Micro {
    name: &'static str,
    reference_secs: f64,
    optimised_secs: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        if self.optimised_secs > 0.0 {
            self.reference_secs / self.optimised_secs
        } else {
            f64::INFINITY
        }
    }
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64()
}

/// Linear-layer data flow at a paper-ish shape: forward `x·Wᵀ`, backward
/// `dYᵀ·X` and `dY·W`, reference = materialised transposes + naive kernel.
fn micro_linear(reps: usize) -> Micro {
    let mut rng = SeededRng::new(7);
    let (batch, inf, outf) = (64usize, 256usize, 256usize);
    let x = Tensor::randn(&[batch, inf], 1.0, &mut rng);
    let w = Tensor::randn(&[outf, inf], 0.1, &mut rng);
    let dy = Tensor::randn(&[batch, outf], 0.5, &mut rng);

    let reference_secs = time(reps, || {
        let y = x.matmul_naive(&w.transpose().unwrap()).unwrap();
        let dw = dy.transpose().unwrap().matmul_naive(&x).unwrap();
        let db = dy.transpose().unwrap().row_sums().unwrap();
        let dx = dy.matmul_naive(&w).unwrap();
        (y, dw, db, dx)
    });
    let optimised_secs = time(reps, || {
        let y = x.matmul_nt(&w).unwrap();
        let dw = dy.matmul_tn(&x).unwrap();
        let db = dy.col_sums().unwrap();
        let dx = dy.matmul(&w).unwrap();
        (y, dw, db, dx)
    });
    Micro {
        name: "linear_forward_backward",
        reference_secs,
        optimised_secs,
    }
}

fn extraction_fixture() -> (ProxyConfig, ProxyModel) {
    let cfg = ProxyConfig::for_family(
        ModelFamily::ResNet101,
        InputKind::Image {
            channels: 3,
            height: 8,
            width: 8,
        },
        100,
        0,
    );
    let global = ProxyModel::new(cfg).unwrap();
    (cfg, global)
}

/// Per-round client-model preparation: reference = random-init model +
/// clone-then-gather-per-axis extraction, optimised = zero-init model +
/// cached single-pass gather plan.
fn micro_extraction(reps: usize) -> Micro {
    let (cfg, global) = extraction_fixture();
    let global_sd = global.state_dict();
    let specs = global.param_specs();
    let half_cfg = cfg.with_width(0.5);
    let selection = WidthSelection::Rolling { shift: 13 };

    let reference_secs = time(reps, || {
        let mut model = ProxyModel::new(half_cfg).unwrap();
        let sub = extract_submodel(&global_sd, &specs, &model.param_specs(), selection).unwrap();
        model.load_state_dict(&sub).unwrap();
        model
    });
    let cache = PlanCache::new();
    let optimised_secs = time(reps, || {
        let mut model = ProxyModel::zeroed(half_cfg).unwrap();
        let plan = cache
            .for_client_specs(&specs, &model.param_specs(), selection)
            .unwrap();
        model
            .load_state_dict(&plan.extract(&global_sd).unwrap())
            .unwrap();
        model
    });
    Micro {
        name: "submodel_extraction",
        reference_secs,
        optimised_secs,
    }
}

/// Aggregation return path: reference = per-element coordinate decoding,
/// optimised = plan-driven scatter-add.
fn micro_aggregation(reps: usize) -> Micro {
    let (cfg, global) = extraction_fixture();
    let global_sd = global.state_dict();
    let specs = global.param_specs();
    let selection = WidthSelection::Rolling { shift: 5 };
    let half_specs = ProxyModel::zeroed(cfg.with_width(0.5))
        .unwrap()
        .param_specs();
    let update = extract_submodel(&global_sd, &specs, &half_specs, selection).unwrap();

    // Accumulate repeatedly into one aggregator per side so the timing
    // isolates the scatter path itself, not the zero-filled constructor.
    let mut reference_agg = ServerAggregator::new(specs.clone());
    let reference_secs = time(reps, || {
        reference_agg.add_update(&update, selection, 1.0).unwrap();
    });
    let plan = ExtractionPlan::for_state(&specs, &update, selection).unwrap();
    let mut planned_agg = ServerAggregator::new(specs.clone());
    let optimised_secs = time(reps, || {
        planned_agg
            .add_update_with_plan(&update, &plan, 1.0)
            .unwrap();
    });
    Micro {
        name: "scatter_add_aggregation",
        reference_secs,
        optimised_secs,
    }
}

/// One paper-scale federated round of one algorithm family, with per-phase
/// wall-clock splits.
struct FamilyRound {
    method: MhflMethod,
    task: DataTask,
    clients: usize,
    selected: usize,
    setup_secs: f64,
    client_phase_secs: f64,
    aggregate_secs: f64,
    evaluate_secs: f64,
    global_accuracy: f32,
}

fn run_family_round(method: MhflMethod, scale: RunScale) -> FamilyRound {
    let task = DataTask::Cifar10;
    let spec = ExperimentSpec::new(
        task,
        method,
        ConstraintCase::Computation {
            deadline_secs: 300.0,
        },
    )
    .with_scale(scale)
    .with_seed(42);
    // Setup covers everything before the first round: context construction
    // (data partitioning + device assignment) and the algorithm's own state.
    // Starting the timer after `build_context` used to report ~0.000s setup.
    let t = Instant::now();
    let ctx = spec.build_context().expect("context builds");
    let clients = ctx.num_clients();
    // The paper samples 10% of clients per synchronous round.
    let per_round = ((clients as f64 * 0.1).round() as usize).clamp(1, clients);

    let mut algorithm = mhfl_algorithms::build_algorithm(method);
    algorithm.setup(&ctx).expect("setup");
    let setup_secs = t.elapsed().as_secs_f64();

    let scheduler = Schedule::Uniform.build();
    let mut rng = SeededRng::new(spec.seed ^ 0xF00D);
    let plan = scheduler.plan_round(1, per_round, 0.0, &ctx, &mut rng);

    let t = Instant::now();
    let updates = run_clients(
        algorithm.as_ref(),
        1,
        &plan.clients,
        &ctx,
        Parallelism::Sequential,
    )
    .expect("client phase");
    let client_phase_secs = t.elapsed().as_secs_f64();
    let selected = updates.len();
    // Sanity: real uploads, not empty stubs.
    assert!(updates
        .iter()
        .all(|u| !matches!(u.payload, ClientPayload::Empty)));

    let t = Instant::now();
    algorithm.aggregate(1, updates, &ctx).expect("aggregate");
    let aggregate_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let global_accuracy = algorithm.evaluate_global(ctx.test_set()).expect("evaluate");
    let evaluate_secs = t.elapsed().as_secs_f64();

    FamilyRound {
        method,
        task,
        clients,
        selected,
        setup_secs,
        client_phase_secs,
        aggregate_secs,
        evaluate_secs,
        global_accuracy,
    }
}

/// Steady-state allocation behaviour of the tensor arena under repeated
/// federated rounds: one warm-up round fills the pool, then the per-round
/// counter deltas over `steady_rounds` further rounds measure what a warm
/// round still allocates fresh.
struct ArenaProbe {
    counting_enabled: bool,
    warmup_fresh_allocs: u64,
    steady_rounds: usize,
    fresh_allocs_per_round: u64,
    pool_hits_per_round: u64,
    recycled_per_round: u64,
}

fn stats_delta(after: ArenaStats, before: ArenaStats) -> ArenaStats {
    ArenaStats {
        fresh_allocs: after.fresh_allocs - before.fresh_allocs,
        pool_hits: after.pool_hits - before.pool_hits,
        recycled: after.recycled - before.recycled,
        released: after.released - before.released,
    }
}

fn probe_arena(scale: RunScale) -> ArenaProbe {
    let arena = TensorArena::global();
    let steady_rounds = 2usize;
    eprintln!(
        "paper_scale: arena allocation probe (1 warm-up + {steady_rounds} steady rounds, \
         counting {})...",
        if TensorArena::counting_enabled() {
            "on"
        } else {
            "OFF — rebuild with --features alloc-count for real numbers"
        }
    );
    let before_warmup = arena.stats();
    run_family_round(MhflMethod::SHeteroFl, scale);
    let after_warmup = arena.stats();
    for _ in 0..steady_rounds {
        run_family_round(MhflMethod::SHeteroFl, scale);
    }
    let steady = stats_delta(arena.stats(), after_warmup);
    let probe = ArenaProbe {
        counting_enabled: TensorArena::counting_enabled(),
        warmup_fresh_allocs: stats_delta(after_warmup, before_warmup).fresh_allocs,
        steady_rounds,
        fresh_allocs_per_round: steady.fresh_allocs / steady_rounds as u64,
        pool_hits_per_round: steady.pool_hits / steady_rounds as u64,
        recycled_per_round: steady.recycled / steady_rounds as u64,
    };
    eprintln!(
        "  warm-up round: {} fresh allocations; steady state: {}/round fresh, \
         {}/round served from the pool (ceiling {})",
        probe.warmup_fresh_allocs,
        probe.fresh_allocs_per_round,
        probe.pool_hits_per_round,
        ALLOC_CEILING_PER_ROUND
    );
    probe
}

fn scale_label(scale: RunScale) -> &'static str {
    match scale {
        RunScale::Quick => "quick",
        RunScale::Standard => "standard",
        RunScale::Paper => "paper",
    }
}

/// The durable-run flow behind `--checkpoint` / `--resume`: one full
/// multi-round width-family run with auto-saved on-disk checkpoints, resumed
/// from the file when it already exists.
fn run_durable(scale: RunScale, path: &str, must_exist: bool) {
    let path = std::path::Path::new(path);
    if must_exist && !path.exists() {
        panic!(
            "--resume {}: checkpoint file does not exist",
            path.display()
        );
    }
    let every = arg_usize("--checkpoint-every").unwrap_or(25);
    let stop_after = arg_usize("--stop-after-rounds");
    let spec = ExperimentSpec::new(
        DataTask::Cifar10,
        MhflMethod::SHeteroFl,
        ConstraintCase::Computation {
            deadline_secs: 300.0,
        },
    )
    .with_scale(scale)
    .with_seed(42);
    eprintln!(
        "paper_scale: durable {} run of {} (checkpoint {} every {every} rounds)",
        scale_label(scale),
        spec.method,
        path.display()
    );
    let outcome = run_resumable(&spec, path, every, stop_after).expect("durable run");
    match outcome.report {
        Some(report) => println!(
            "paper_scale: run complete at round {} (resumed from {:?}): \
             final acc {:.4}, digest 0x{:016x}",
            outcome.completed_rounds,
            outcome.resumed_from,
            report.final_accuracy(),
            report.digest()
        ),
        None => println!(
            "paper_scale: interrupted after round {} (resumed from {:?}); \
             relaunch with --resume {} to continue",
            outcome.completed_rounds,
            outcome.resumed_from,
            path.display()
        ),
    }
}

/// The fixed experiment the distributed benchmark shards: the width family
/// at the selected scale, seeded like every other section.
fn distributed_spec(scale: RunScale) -> ExperimentSpec {
    ExperimentSpec::new(
        DataTask::Cifar10,
        MhflMethod::SHeteroFl,
        ConstraintCase::Computation {
            deadline_secs: 300.0,
        },
    )
    .with_scale(scale)
    .with_seed(42)
}

/// Worker half of `--workers`: this binary re-exec'd with `--connect` plus
/// the spec flags, serving dispatches until the server shuts the run down.
fn run_worker_child(endpoint: &str, args: &[String]) {
    let endpoint = mhfl_net::Endpoint::parse(endpoint).expect("--connect endpoint");
    let spec = mhfl_net::cli::parse_spec(args).expect("worker spec flags");
    let options = mhfl_net::WorkerOptions {
        name: mhfl_net::cli::arg_value(args, "--name")
            .unwrap_or_else(|| format!("pid{}", std::process::id())),
        ..Default::default()
    };
    let report = mhfl_net::run_worker(&endpoint, &spec, options).expect("worker run");
    eprintln!(
        "paper_scale worker {}: served {} dispatch(es), {} update(s)",
        report.worker_index, report.dispatches, report.updates_sent
    );
}

/// Server half of `--workers`: run the micro section as usual, then one full
/// distributed run sharded across `n` re-exec'd worker processes, verify the
/// digest against the single-process reference, and emit the utilisation
/// ledger into the JSON alongside the micro timings.
fn run_distributed_bench(scale: RunScale, workers: usize, micro_reps: usize) {
    use mhfl_net::cli::spec_flags;
    use mhfl_net::{run_server, Endpoint, Listener};

    let spec = distributed_spec(scale);
    let listen = arg_value("--listen").unwrap_or_else(|| "tcp:127.0.0.1:0".to_string());
    let listener = Listener::bind(&Endpoint::parse(&listen).expect("--listen endpoint"))
        .expect("bind listener");
    let endpoint = listener.local_endpoint().expect("local endpoint");
    eprintln!(
        "paper_scale: distributed {} run of {} on {endpoint} across {workers} worker(s)...",
        scale_label(scale),
        spec.method
    );

    let exe = std::env::current_exe().expect("current exe");
    let children: Vec<std::process::Child> = (0..workers)
        .map(|i| {
            std::process::Command::new(&exe)
                .arg("--connect")
                .arg(endpoint.to_string())
                .arg("--name")
                .arg(format!("w{i}"))
                .args(spec_flags(&spec))
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    let outcome = run_server(&listener, workers, &spec).expect("distributed run");
    for mut child in children {
        let status = child.wait().expect("worker wait");
        assert!(status.success(), "a worker process exited with {status}");
    }

    eprintln!("paper_scale: single-process reference for the digest check...");
    let reference = spec.run().expect("reference run").report;
    let digest_match = outcome.report.digest() == reference.digest();
    assert!(
        digest_match,
        "distributed digest 0x{:016x} != single-process 0x{:016x}",
        outcome.report.digest(),
        reference.digest()
    );
    eprintln!(
        "  digest 0x{:016x} matches single-process; accept {:.2}s, run {:.2}s",
        outcome.report.digest(),
        outcome.accept_secs,
        outcome.run_secs
    );

    let micros = [
        micro_linear(micro_reps),
        micro_extraction(micro_reps),
        micro_aggregation(micro_reps),
    ];

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale_label(scale)));
    json.push_str(&format!("  \"micro_reps\": {micro_reps},\n"));
    json.push_str(
        "  \"command\": \"cargo run --release -p mhfl-bench --bin paper_scale -- --workers N\",\n",
    );
    json.push_str("  \"micro\": {\n");
    for (i, m) in micros.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"reference_secs\": {:.6}, \"optimised_secs\": {:.6}, \"speedup\": {:.2} }}{}\n",
            m.name,
            m.reference_secs / micro_reps as f64,
            m.optimised_secs / micro_reps as f64,
            m.speedup(),
            if i + 1 < micros.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"distributed\": {\n");
    json.push_str(&format!(
        "    \"method\": \"{}\", \"task\": \"{:?}\", \"workers\": {},\n",
        spec.method, spec.task, workers
    ));
    json.push_str(&format!(
        "    \"accept_secs\": {:.3}, \"run_secs\": {:.3},\n",
        outcome.accept_secs, outcome.run_secs
    ));
    json.push_str(&format!(
        "    \"digest\": \"0x{:016x}\", \"digest_match\": {digest_match},\n",
        outcome.report.digest()
    ));
    json.push_str("    \"per_worker\": [\n");
    for (i, w) in outcome.workers.iter().enumerate() {
        let utilisation = if outcome.run_secs > 0.0 {
            w.busy_secs / outcome.run_secs
        } else {
            0.0
        };
        json.push_str(&format!(
            "      {{ \"name\": \"{}\", \"dispatched\": {}, \"completed\": {}, \
             \"busy_secs\": {:.3}, \"utilisation\": {:.3}, \"died\": {} }}{}\n",
            w.name,
            w.dispatched,
            w.completed,
            w.busy_secs,
            utilisation,
            w.dead,
            if i + 1 < outcome.workers.len() {
                ","
            } else {
                ""
            }
        ));
        eprintln!(
            "  worker {:<8} dispatched {:>4}  completed {:>4}  busy {:>6.2}s  utilisation {:>5.1}%",
            w.name,
            w.dispatched,
            w.completed,
            w.busy_secs,
            utilisation * 100.0
        );
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_paper_scale.json", &json).expect("write BENCH_paper_scale.json");
    println!("{json}");
    eprintln!("paper_scale: wrote BENCH_paper_scale.json (distributed mode)");
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(endpoint) = arg_value("--connect") {
        // Worker processes share kernels with the other workers and the
        // server on one machine; keep each single-threaded.
        return run_worker_child(&endpoint, &args);
    }
    // One process on one machine: let server-phase kernels use every core.
    mhfl_tensor::set_kernel_workers(0);
    if let Some(path) = arg_value("--resume") {
        return run_durable(scale, &path, true);
    }
    if let Some(path) = arg_value("--checkpoint") {
        return run_durable(scale, &path, false);
    }
    let micro_reps = match scale {
        RunScale::Quick => 3,
        RunScale::Standard => 20,
        RunScale::Paper => 40,
    };
    if let Some(workers) = arg_usize("--workers") {
        return run_distributed_bench(scale, workers, micro_reps);
    }
    // `--quick` smoke runs shrink the federated round too; everything else
    // runs the families at the paper's client counts.
    let family_scale = match scale {
        RunScale::Quick => RunScale::Quick,
        _ => RunScale::Paper,
    };

    eprintln!("paper_scale: micro benchmarks ({micro_reps} reps)...");
    let micros = [
        micro_linear(micro_reps),
        micro_extraction(micro_reps),
        micro_aggregation(micro_reps),
    ];
    for m in &micros {
        eprintln!(
            "  {:<26} reference {:>9.4}s  optimised {:>9.4}s  speedup {:>6.2}x",
            m.name,
            m.reference_secs,
            m.optimised_secs,
            m.speedup()
        );
    }

    let families = [
        MhflMethod::SHeteroFl,
        MhflMethod::DepthFl,
        MhflMethod::FedProto,
        MhflMethod::FedEt,
        MhflMethod::HomogeneousSmallest,
    ];
    let mut rounds = Vec::new();
    for method in families {
        eprintln!(
            "paper_scale: one {} round of {method}...",
            scale_label(family_scale)
        );
        let round = run_family_round(method, family_scale);
        eprintln!(
            "  {} clients, {} selected: client phase {:.2}s, aggregate {:.3}s, eval {:.2}s, acc {:.3}",
            round.clients,
            round.selected,
            round.client_phase_secs,
            round.aggregate_secs,
            round.evaluate_secs,
            round.global_accuracy
        );
        rounds.push(round);
    }

    let probe = probe_arena(family_scale);
    if has_flag("--alloc-audit") {
        assert!(
            probe.counting_enabled,
            "--alloc-audit needs allocation counters; rebuild with \
             `--features alloc-count`"
        );
        assert!(
            probe.fresh_allocs_per_round <= ALLOC_CEILING_PER_ROUND,
            "steady-state tensor allocations regressed: {} fresh allocations \
             per warm round exceeds the committed ceiling of {}",
            probe.fresh_allocs_per_round,
            ALLOC_CEILING_PER_ROUND
        );
        eprintln!(
            "paper_scale: alloc audit passed ({} <= {} fresh allocations/round)",
            probe.fresh_allocs_per_round, ALLOC_CEILING_PER_ROUND
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"family_scale\": \"{}\",\n",
        scale_label(family_scale)
    ));
    json.push_str(&format!("  \"micro_reps\": {micro_reps},\n"));
    json.push_str("  \"command\": \"cargo run --release -p mhfl-bench --bin paper_scale\",\n");
    json.push_str("  \"micro\": {\n");
    for (i, m) in micros.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"reference_secs\": {:.6}, \"optimised_secs\": {:.6}, \"speedup\": {:.2} }}{}\n",
            m.name,
            m.reference_secs / micro_reps as f64,
            m.optimised_secs / micro_reps as f64,
            m.speedup(),
            if i + 1 < micros.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"families\": [\n");
    for (i, r) in rounds.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"method\": \"{}\", \"task\": \"{:?}\", \"clients\": {}, \"selected\": {}, \
             \"setup_secs\": {:.3}, \"client_phase_secs\": {:.3}, \"aggregate_secs\": {:.4}, \
             \"evaluate_secs\": {:.3}, \"global_accuracy\": {:.4} }}{}\n",
            r.method,
            r.task,
            r.clients,
            r.selected,
            r.setup_secs,
            r.client_phase_secs,
            r.aggregate_secs,
            r.evaluate_secs,
            r.global_accuracy,
            if i + 1 < rounds.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"arena\": {\n");
    json.push_str(&format!(
        "    \"counting_enabled\": {},\n",
        probe.counting_enabled
    ));
    json.push_str(&format!(
        "    \"warmup_round_fresh_allocs\": {},\n",
        probe.warmup_fresh_allocs
    ));
    json.push_str(&format!(
        "    \"steady_rounds\": {},\n",
        probe.steady_rounds
    ));
    json.push_str(&format!(
        "    \"steady_fresh_allocs_per_round\": {},\n",
        probe.fresh_allocs_per_round
    ));
    json.push_str(&format!(
        "    \"steady_pool_hits_per_round\": {},\n",
        probe.pool_hits_per_round
    ));
    json.push_str(&format!(
        "    \"steady_recycled_per_round\": {},\n",
        probe.recycled_per_round
    ));
    json.push_str(&format!(
        "    \"alloc_ceiling_per_round\": {ALLOC_CEILING_PER_ROUND}\n"
    ));
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_paper_scale.json", &json).expect("write BENCH_paper_scale.json");
    println!("{json}");
    eprintln!("paper_scale: wrote BENCH_paper_scale.json");
}
