//! `population_scale` — million-client federations stay O(active clients).
//!
//! The lazy-materialisation path ([`ExperimentSpec::build_lazy_context`])
//! derives every client's device profile and data shard on demand from
//! `(seed, client_id)`, so a federation's resident footprint is bounded by
//! the clients *in flight*, never by the population. This binary proves the
//! three claims that matter at scale, and emits them into
//! `BENCH_population_scale.json`:
//!
//! * **pick_next is sub-linear** — the uniform scheduler draw over the free
//!   set is timed at populations 10³, 10⁵ and 10⁶; the per-pick cost must
//!   not grow with the population (it is O(in-flight), and in-flight is
//!   fixed by the concurrency slots).
//! * **per-round wall-clock is population-independent** — one asynchronous
//!   buffered run (fixed slots, fixed buffer) at the target population and
//!   one at a 1 000-client reference, same engine config; the per-round
//!   times must match.
//! * **RSS is bounded** — `/proc/self/status` VmRSS is sampled before the
//!   context is built, after setup, and at every round boundary. With
//!   `--rss-ceiling-mb <n>` the binary *fails* if the peak exceeds the
//!   ceiling — the CI assertion that the population never gets
//!   materialised. (Eagerly materialising the 100 000-client smoke
//!   population alone would need several gigabytes.)
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p mhfl-bench --bin population_scale            # 1M clients
//! cargo run --release -p mhfl-bench --bin population_scale -- \
//!     --quick --rss-ceiling-mb 600                                    # CI: 100k
//! ```

use std::time::Instant;

use mhfl_algorithms::build_algorithm;
use mhfl_bench::arg_usize;
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_fl::{Candidates, Execution, FederationContext, RoundEvent, Schedule};
use mhfl_models::MhflMethod;
use mhfl_tensor::SeededRng;
use pracmhbench_core::{ExperimentSpec, RunScale};

/// Fixed async shape for every run: the footprint and per-round cost are
/// functions of these, not of the population.
const SLOTS: usize = 32;
const BUFFER: usize = 16;
const REFERENCE_POPULATION: usize = 1_000;

/// Current resident set size in kilobytes, from `/proc/self/status`.
/// `None` off Linux — the benchmark still runs, it just cannot assert RSS.
fn rss_kb() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn rss_mb() -> Option<f64> {
    rss_kb().map(|kb| kb as f64 / 1024.0)
}

fn spec_at(population: usize) -> ExperimentSpec {
    ExperimentSpec::new(
        DataTask::UciHar,
        MhflMethod::SHeteroFl,
        ConstraintCase::Computation {
            deadline_secs: 300.0,
        },
    )
    .with_scale(RunScale::Quick)
    .with_num_clients(population)
    .with_seed(42)
    .with_execution(Execution::AsyncBuffered {
        buffer_size: BUFFER,
        concurrency: SLOTS,
    })
}

/// Steady-state cost of one scheduler draw over the free set of a
/// `population`-client lazy federation, in nanoseconds per pick.
///
/// The free list is built once outside the timed region (the session keeps
/// it implicitly); each timed iteration is exactly what the async driver
/// does per freed slot: one `pick_next` over the candidates.
fn time_pick_next(population: usize) -> f64 {
    let ctx = spec_at(population)
        .build_lazy_context()
        .expect("lazy context builds");
    let scheduler = Schedule::Uniform.build();
    let free: Vec<usize> = (0..population).collect();
    let pool = Candidates(&free);
    let mut rng = SeededRng::new(7);
    // Warm up, then time.
    for _ in 0..100 {
        std::hint::black_box(scheduler.pick_next(0.0, &pool, &ctx, &mut rng));
    }
    let reps = 10_000usize;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(scheduler.pick_next(0.0, &pool, &ctx, &mut rng));
    }
    start.elapsed().as_secs_f64() * 1e9 / reps as f64
}

struct RunResult {
    population: usize,
    setup_secs: f64,
    per_round_secs: Vec<f64>,
    rss_after_setup_mb: Option<f64>,
    rss_peak_mb: Option<f64>,
}

/// One asynchronous buffered run over a lazy `population`-client context,
/// timing each aggregation round and sampling RSS at every boundary.
fn run_population(population: usize) -> RunResult {
    let spec = spec_at(population);
    let t = Instant::now();
    let ctx: FederationContext = spec.build_lazy_context().expect("lazy context builds");
    let mut algorithm = build_algorithm(spec.method);
    let mut session = spec
        .engine()
        .session(algorithm.as_mut(), &ctx)
        .expect("session opens");
    let setup_secs = t.elapsed().as_secs_f64();
    let rss_after_setup_mb = rss_mb();
    let mut rss_peak_mb = rss_after_setup_mb;

    let mut per_round_secs = Vec::new();
    let mut round_started = Instant::now();
    while let Some(event) = session.next_event().expect("event") {
        if let RoundEvent::RoundCompleted { .. } = event {
            per_round_secs.push(round_started.elapsed().as_secs_f64());
            round_started = Instant::now();
            rss_peak_mb = match (rss_peak_mb, rss_mb()) {
                (Some(peak), Some(now)) => Some(peak.max(now)),
                (peak, now) => peak.or(now),
            };
        }
    }
    RunResult {
        population,
        setup_secs,
        per_round_secs,
        rss_after_setup_mb,
        rss_peak_mb,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn json_f64_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "null".into(), |v| format!("{v:.1}"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let population = arg_usize("--clients").unwrap_or(if quick { 100_000 } else { 1_000_000 });
    let rss_ceiling_mb = arg_usize("--rss-ceiling-mb");
    // Keep kernels single-threaded: the point is scheduling/footprint
    // scaling, and deterministic wall-clock splits read better in CI logs.
    mhfl_tensor::set_kernel_workers(1);

    let rss_baseline_mb = rss_mb();
    eprintln!("population_scale: timing pick_next at 10^3 / 10^5 / 10^6 clients...");
    let pick_populations = [1_000usize, 100_000, 1_000_000];
    let pick_ns: Vec<f64> = pick_populations
        .iter()
        .map(|&n| {
            let ns = time_pick_next(n);
            eprintln!("  pick_next over {n:>9} free clients: {ns:>8.1} ns/pick");
            ns
        })
        .collect();
    // Sub-linear in the only sense that matters: 1000x the population must
    // not cost anywhere near 1000x the pick. Allow 8x for cache effects.
    assert!(
        pick_ns[2] < pick_ns[0] * 8.0 + 1_000.0,
        "pick_next cost grew with the population: {:.0}ns at 10^3 vs {:.0}ns at 10^6",
        pick_ns[0],
        pick_ns[2]
    );

    eprintln!("population_scale: reference run ({REFERENCE_POPULATION} clients)...");
    let reference = run_population(REFERENCE_POPULATION);
    eprintln!(
        "  setup {:.2}s, rounds {}, mean round {:.3}s",
        reference.setup_secs,
        reference.per_round_secs.len(),
        mean(&reference.per_round_secs)
    );

    eprintln!(
        "population_scale: main run ({population} clients, {SLOTS} slots, buffer {BUFFER})..."
    );
    let main_run = run_population(population);
    eprintln!(
        "  setup {:.2}s, rounds {}, mean round {:.3}s, RSS after setup {} MB, peak {} MB",
        main_run.setup_secs,
        main_run.per_round_secs.len(),
        mean(&main_run.per_round_secs),
        json_opt(main_run.rss_after_setup_mb),
        json_opt(main_run.rss_peak_mb),
    );

    let round_ratio = {
        let r = mean(&reference.per_round_secs);
        if r > 0.0 {
            mean(&main_run.per_round_secs) / r
        } else {
            0.0
        }
    };
    eprintln!(
        "  per-round wall-clock at {population} clients is {round_ratio:.2}x the \
         {REFERENCE_POPULATION}-client reference"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"population\": {population},\n"));
    json.push_str(&format!(
        "  \"execution\": \"async_buffered(buffer={BUFFER}, slots={SLOTS})\",\n"
    ));
    json.push_str("  \"pick_next_ns\": [\n");
    for (i, (&n, ns)) in pick_populations.iter().zip(&pick_ns).enumerate() {
        json.push_str(&format!(
            "    {{ \"population\": {n}, \"ns_per_pick\": {ns:.1} }}{}\n",
            if i + 1 < pick_populations.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n");
    for (label, run) in [("reference", &reference), ("main", &main_run)] {
        json.push_str(&format!("  \"{label}\": {{\n"));
        json.push_str(&format!("    \"population\": {},\n", run.population));
        json.push_str(&format!("    \"setup_secs\": {:.3},\n", run.setup_secs));
        json.push_str(&format!(
            "    \"per_round_secs\": {},\n",
            json_f64_list(&run.per_round_secs)
        ));
        json.push_str(&format!(
            "    \"rss_after_setup_mb\": {},\n",
            json_opt(run.rss_after_setup_mb)
        ));
        json.push_str(&format!(
            "    \"rss_peak_mb\": {}\n",
            json_opt(run.rss_peak_mb)
        ));
        json.push_str("  },\n");
    }
    json.push_str(&format!("  \"per_round_ratio\": {round_ratio:.3},\n"));
    json.push_str(&format!(
        "  \"rss_baseline_mb\": {},\n",
        json_opt(rss_baseline_mb)
    ));
    json.push_str(&format!(
        "  \"rss_ceiling_mb\": {}\n",
        rss_ceiling_mb.map_or_else(|| "null".into(), |v| v.to_string())
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_population_scale.json", &json)
        .expect("write BENCH_population_scale.json");
    println!("{json}");
    eprintln!("population_scale: wrote BENCH_population_scale.json");

    if let Some(ceiling) = rss_ceiling_mb {
        let peak = main_run
            .rss_peak_mb
            .expect("--rss-ceiling-mb requires /proc/self/status (Linux)");
        assert!(
            peak <= ceiling as f64,
            "peak RSS {peak:.1} MB exceeded the {ceiling} MB ceiling: the lazy \
             population is being materialised somewhere"
        );
        eprintln!("population_scale: peak RSS {peak:.1} MB within the {ceiling} MB ceiling");
    }
}
