//! `adversarial_study` — the failure-mode scenario suite across families.
//!
//! The platform's baseline threat model is benign heterogeneity: clients are
//! slow or offline, never wrong. This binary measures what the adversarial
//! and churn knobs of PR 8 actually cost, one representative method per
//! algorithm family, and emits the per-scenario accuracy deltas into
//! `BENCH_adversarial_study.json`:
//!
//! * **clean** — the reference run, no knob touched;
//! * **byzantine** — a seeded sign-flip attack (`Corruption::SignFlip`) on
//!   an expected 40% of the population;
//! * **byzantine + coordinate-median / + norm-clip** — the same attack with
//!   the server-side robust-aggregation counter-measures enabled, reporting
//!   how much of the lost accuracy each one claws back;
//! * **churn** — 30% of dispatched clients silently vanish mid-round;
//! * **drift** — label rotation halfway through the run
//!   (`Drift::LabelShift`);
//! * **trace-replay** — the availability windows recorded from the clean
//!   run's telemetry are replayed as the scheduling policy, closing the
//!   telemetry loop.
//!
//! ```bash
//! cargo run --release -p mhfl-bench --bin adversarial_study [-- --quick|--paper]
//! ```

use mhfl_algorithms::build_algorithm;
use mhfl_bench::{print_table, scale_from_args, Table};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::{
    Corruption, CsvTelemetry, Drift, ExperimentSpec, RobustAggregation, RoundEvent, RunScale,
    TraceReplay,
};

/// Expected byzantine fraction of the attacked population.
const ATTACK_FRACTION: f64 = 0.4;
/// Mid-round churn probability of the churn scenario.
const CHURN_FRACTION: f64 = 0.3;
/// Joint L2 ball of the norm-clip counter-measure.
const CLIP_NORM: f32 = 5.0;

/// One representative method per algorithm family.
const FAMILIES: [MhflMethod; 5] = [
    MhflMethod::SHeteroFl,
    MhflMethod::DepthFl,
    MhflMethod::FedProto,
    MhflMethod::FedEt,
    MhflMethod::HomogeneousSmallest,
];

/// Per-family scenario accuracies.
struct FamilyResult {
    method: MhflMethod,
    clean: f32,
    byzantine: f32,
    byz_median: f32,
    byz_clip: f32,
    churn: f32,
    drift: f32,
}

impl FamilyResult {
    /// Accuracy the attack costs relative to clean.
    fn loss(&self) -> f32 {
        self.clean - self.byzantine
    }

    /// Fraction of the attack's accuracy loss a counter-measure recovers
    /// (`None` when the attack cost nothing to recover).
    fn recovery(&self, defended: f32) -> Option<f32> {
        let loss = self.loss();
        if loss <= 1e-4 {
            return None;
        }
        Some((defended - self.byzantine) / loss)
    }
}

fn base_spec(method: MhflMethod, scale: RunScale) -> ExperimentSpec {
    ExperimentSpec::new(
        DataTask::UciHar,
        method,
        ConstraintCase::Computation {
            deadline_secs: 300.0,
        },
    )
    .with_scale(scale)
    .with_seed(17)
}

fn accuracy(spec: &ExperimentSpec) -> f32 {
    spec.run().expect("experiment runs").summary.global_accuracy
}

fn run_family(method: MhflMethod, scale: RunScale) -> FamilyResult {
    let base = base_spec(method, scale);
    let attack = Corruption::SignFlip {
        fraction: ATTACK_FRACTION,
    };
    let rounds = match scale {
        RunScale::Quick => 4,
        RunScale::Standard => 20,
        RunScale::Paper => 1000,
    };
    FamilyResult {
        method,
        clean: accuracy(&base),
        byzantine: accuracy(&base.with_corruption(attack)),
        byz_median: accuracy(
            &base
                .with_corruption(attack)
                .with_robust_aggregation(RobustAggregation::CoordinateMedian),
        ),
        byz_clip: accuracy(&base.with_corruption(attack).with_robust_aggregation(
            RobustAggregation::NormClip {
                max_norm: CLIP_NORM,
            },
        )),
        churn: accuracy(&base.with_churn(CHURN_FRACTION)),
        drift: accuracy(&base.with_drift(Drift::LabelShift {
            period_rounds: (rounds / 2).max(1),
        })),
    }
}

/// Records a clean run's telemetry and replays it as the scheduling policy.
/// Returns (replayed accuracy, rounds completed).
fn run_trace_replay(scale: RunScale) -> (f32, usize) {
    let spec = base_spec(MhflMethod::SHeteroFl, scale);
    let ctx = spec.build_context().expect("context builds");
    let mut algorithm = build_algorithm(spec.method);
    let mut csv = CsvTelemetry::new();
    let mut session = spec
        .engine()
        .session(algorithm.as_mut(), &ctx)
        .expect("session opens");
    session.observe(Box::new(&mut csv));
    while session.next_event().expect("session advances").is_some() {}
    drop(session);

    let trace = TraceReplay::from_csv(&csv.updates_csv())
        .expect("recorded telemetry parses")
        .with_slot_secs(5.0);
    let mut algorithm = build_algorithm(spec.method);
    let mut session = spec
        .engine()
        .session(algorithm.as_mut(), &ctx)
        .expect("session opens");
    session.set_scheduler(Box::new(trace));
    let mut report = None;
    while let Some(event) = session.next_event().expect("replay advances") {
        if let RoundEvent::RunCompleted { report: r } = event {
            report = Some(r);
        }
    }
    let report = report.expect("replay completes");
    (report.final_accuracy(), report.records.len())
}

fn json_opt(x: Option<f32>) -> String {
    x.map(|v| format!("{v:.4}"))
        .unwrap_or_else(|| "null".into())
}

fn main() {
    let scale = scale_from_args();
    println!("Adversarial & churn scenario study ({scale:?} scale)\n");

    let results: Vec<FamilyResult> = FAMILIES
        .iter()
        .map(|&method| run_family(method, scale))
        .collect();
    let (replay_acc, replay_rounds) = run_trace_replay(scale);

    let mut table = Table::new(
        format!(
            "Global accuracy per scenario (sign-flip {ATTACK_FRACTION}, churn {CHURN_FRACTION})"
        ),
        &[
            "Family",
            "Clean",
            "Byzantine",
            "+Median",
            "+Clip",
            "Churn",
            "Drift",
            "MedianRecovery",
        ],
    );
    for r in &results {
        table.push_row(vec![
            r.method.display_name().to_string(),
            format!("{:.3}", r.clean),
            format!("{:.3}", r.byzantine),
            format!("{:.3}", r.byz_median),
            format!("{:.3}", r.byz_clip),
            format!("{:.3}", r.churn),
            format!("{:.3}", r.drift),
            r.recovery(r.byz_median)
                .map(|f| format!("{:.0}%", f * 100.0))
                .unwrap_or_else(|| "—".to_string()),
        ]);
    }
    print_table(&table);
    println!("\ntrace-replay (SHeteroFL): accuracy {replay_acc:.3} over {replay_rounds} rounds");

    // The suite's headline claim: at least one family where the attack
    // visibly hurts and the coordinate median recovers at least half of the
    // lost accuracy.
    let best = results
        .iter()
        .filter_map(|r| r.recovery(r.byz_median).map(|f| (r, f)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    match best {
        Some((r, f)) => {
            println!(
                "best median recovery: {} ({:.0}% of a {:.3} accuracy loss)",
                r.method.display_name(),
                f * 100.0,
                r.loss()
            );
            assert!(
                f >= 0.5,
                "coordinate median should recover at least half the byzantine \
                 accuracy loss in some family (best: {:.0}%)",
                f * 100.0
            );
        }
        None => println!("attack cost no accuracy at this scale; nothing to recover"),
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    json.push_str(&format!(
        "  \"attack\": {{ \"kind\": \"sign-flip\", \"fraction\": {ATTACK_FRACTION} }},\n"
    ));
    json.push_str(&format!("  \"churn_fraction\": {CHURN_FRACTION},\n"));
    json.push_str(&format!("  \"clip_norm\": {CLIP_NORM},\n"));
    json.push_str("  \"families\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!("    \"{}\": {{\n", r.method.display_name()));
        json.push_str(&format!("      \"clean\": {:.4},\n", r.clean));
        json.push_str(&format!("      \"byzantine\": {:.4},\n", r.byzantine));
        json.push_str(&format!(
            "      \"byzantine_median\": {:.4},\n",
            r.byz_median
        ));
        json.push_str(&format!("      \"byzantine_clip\": {:.4},\n", r.byz_clip));
        json.push_str(&format!("      \"churn\": {:.4},\n", r.churn));
        json.push_str(&format!("      \"drift\": {:.4},\n", r.drift));
        json.push_str(&format!("      \"byzantine_loss\": {:.4},\n", r.loss()));
        json.push_str(&format!(
            "      \"median_recovery\": {},\n",
            json_opt(r.recovery(r.byz_median))
        ));
        json.push_str(&format!(
            "      \"clip_recovery\": {}\n",
            json_opt(r.recovery(r.byz_clip))
        ));
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"trace_replay\": {{ \"accuracy\": {replay_acc:.4}, \"rounds\": {replay_rounds} }}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_adversarial_study.json", &json)
        .expect("write BENCH_adversarial_study.json");
    eprintln!("adversarial_study: wrote BENCH_adversarial_study.json");
}
