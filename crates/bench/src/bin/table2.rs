//! Regenerates Table II: the platform inventory (heterogeneity level ×
//! algorithm × models/datasets per modality).

use mhfl_bench::{print_table, Table};
use pracmhbench_core::PlatformInventory;

fn main() {
    let mut table = Table::new(
        "Table II — statistics of the PracMHBench platform",
        &["Level", "Algorithm", "CV", "NLP", "HAR"],
    );
    for row in PlatformInventory::rows() {
        table.push_row(vec![
            row.level.to_string(),
            row.method.to_string(),
            row.cv,
            row.nlp,
            row.har,
        ]);
    }
    print_table(&table);
}
