//! Figure regeneration: buffer-size sweep of the asynchronous engine.
//!
//! Sweeps the FedBuff buffer size at the configured scale and records, per
//! buffer size, client-slot utilisation, mean/max staleness, dropped
//! updates (under a `max_staleness` bound) and time-to-accuracy — the raw
//! material for the "utilisation/staleness vs buffer size" figure the
//! ROADMAP called for. Built entirely on the streaming session API: a
//! [`CsvTelemetry`] observer collects per-update telemetry while the run is
//! in flight, and the per-round CSVs are written next to the summary.
//!
//! Outputs (in the working directory):
//!
//! * `FIG_buffer_sweep.csv` — one row per buffer size (the figure's x-axis);
//! * `FIG_round_telemetry.csv` — per-update rows of the largest-buffer run
//!   (dispatch/arrival/staleness per aggregated update).
//!
//! ```bash
//! cargo run --release -p mhfl-bench --bin figures [-- --quick|--paper]
//! ```
//!
//! With `--checkpoint-dir <dir>` every sweep point auto-saves a durable
//! checkpoint (`<dir>/buffer_<k>.ckpt`, every `--checkpoint-every <n>`
//! rounds, default 4) and resumes from it when the file already exists, so
//! an interrupted sweep relaunched with the same arguments continues
//! bit-exactly instead of starting over. Telemetry rows for resumed points
//! are rebuilt from the final report's records, which survive in the
//! checkpoint.

use std::path::PathBuf;

use mhfl_algorithms::build_algorithm;
use mhfl_bench::{
    arg_usize, arg_value, next_tolerating_save_failure, print_table, scale_from_args, RunScale,
    Table,
};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::{
    CheckpointObserver, CsvTelemetry, Execution, ExperimentSpec, MetricsReport, Observer,
    RoundEvent,
};

/// One sweep point.
struct SweepPoint {
    buffer_size: usize,
    report: MetricsReport,
    telemetry: CsvTelemetry,
}

fn run_point(
    base: ExperimentSpec,
    buffer_size: usize,
    durable: Option<&DurableSweep>,
) -> SweepPoint {
    let spec = base.with_execution(Execution::async_buffered(buffer_size));
    let ctx = spec.build_context().expect("context builds");
    let mut algorithm = build_algorithm(spec.method);
    // Declared before the session so the mutable borrow the observer takes
    // can outlive it; the collector stays readable after the session ends.
    let mut telemetry = CsvTelemetry::new();
    let ckpt_path = durable.map(|d| d.point_path(buffer_size));
    let resumed = ckpt_path.as_ref().is_some_and(|p| p.exists());
    let mut session = match ckpt_path.as_ref().filter(|_| resumed) {
        Some(path) => {
            let session = spec
                .engine()
                .restore_from(algorithm.as_mut(), &ctx, path)
                .expect("checkpoint restores");
            eprintln!(
                "figures: buffer {buffer_size} resumes from {} at round {}",
                path.display(),
                session.completed_rounds()
            );
            session
        }
        None => spec
            .engine()
            .session(algorithm.as_mut(), &ctx)
            .expect("session opens"),
    };
    session.observe(Box::new(&mut telemetry));
    if let (Some(path), Some(d)) = (ckpt_path.as_ref(), durable) {
        session.observe(Box::new(CheckpointObserver::every(path, d.every)));
    }
    let mut report = None;
    // A transient auto-save failure must not lose the sweep's in-memory
    // progress: the session stays live, the run continues on the previous
    // good checkpoint.
    while let Some(event) = next_tolerating_save_failure(&mut session).expect("session advances") {
        if let RoundEvent::RunCompleted { report: r } = event {
            report = Some(r);
        }
    }
    drop(session);
    let report = report.expect("run completed");
    if resumed {
        // The live observer only saw post-resume events; the records in the
        // restored report cover the full run, so rebuild the rows from them.
        telemetry = CsvTelemetry::new();
        for record in &report.records {
            telemetry.on_event(&RoundEvent::RoundCompleted {
                round: record.round,
                sim_time_secs: record.sim_time_secs,
                record: Some(record.clone()),
            });
        }
    }
    SweepPoint {
        buffer_size,
        report,
        telemetry,
    }
}

/// `--checkpoint-dir` configuration: where each sweep point's durable
/// checkpoint lives and how often it is refreshed.
struct DurableSweep {
    dir: PathBuf,
    every: usize,
}

impl DurableSweep {
    fn from_args() -> Option<Self> {
        let dir = PathBuf::from(arg_value("--checkpoint-dir")?);
        std::fs::create_dir_all(&dir).expect("create --checkpoint-dir");
        Some(DurableSweep {
            dir,
            every: arg_usize("--checkpoint-every").unwrap_or(4),
        })
    }

    fn point_path(&self, buffer_size: usize) -> PathBuf {
        self.dir.join(format!("buffer_{buffer_size}.ckpt"))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let base = ExperimentSpec::new(
        DataTask::UciHar,
        MhflMethod::SHeteroFl,
        ConstraintCase::Memory,
    )
    .with_scale(scale)
    .with_seed(42)
    .with_target_accuracy(0.5)
    // A finite staleness bound so the dropped-updates column is exercised
    // at small buffer sizes (very stale stragglers are discarded).
    .with_max_staleness(Some(8));

    let buffer_sizes: &[usize] = match scale {
        RunScale::Quick => &[1, 2, 4],
        _ => &[1, 2, 4, 8, 16],
    };

    println!(
        "Buffer-size sweep: SHeteroFL on {} ({scale:?} scale, async, max_staleness = 8)\n",
        base.task
    );
    let mut table = Table::new(
        "Utilisation and staleness vs FedBuff buffer size",
        &[
            "BufferSize",
            "GlobalAcc",
            "SimTime(s)",
            "TimeToAcc(s)",
            "MeanStaleness",
            "Utilisation",
            "Dropped",
        ],
    );
    let mut sweep_csv =
        String::from("buffer_size,global_accuracy,sim_time_secs,time_to_accuracy_secs,mean_staleness,utilisation,dropped_updates,total_payload_bytes\n");
    let durable = DurableSweep::from_args();
    let mut points = Vec::new();
    for &buffer_size in buffer_sizes {
        let point = run_point(base, buffer_size, durable.as_ref());
        let report = &point.report;
        let tta = report.time_to_accuracy(base.target_accuracy);
        table.push_row(vec![
            point.buffer_size.to_string(),
            format!("{:.3}", report.final_accuracy()),
            format!("{:.1}", report.total_sim_time_secs()),
            tta.map(|s| format!("{s:.1}")).unwrap_or_else(|| "—".into()),
            format!("{:.2}", report.mean_staleness()),
            format!("{:.3}", report.utilisation()),
            report.dropped_updates().to_string(),
        ]);
        sweep_csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            point.buffer_size,
            report.final_accuracy(),
            report.total_sim_time_secs(),
            tta.map(|s| s.to_string()).unwrap_or_default(),
            report.mean_staleness(),
            report.utilisation(),
            report.dropped_updates(),
            report.total_payload_bytes(),
        ));
        points.push(point);
    }
    print_table(&table);

    std::fs::write("FIG_buffer_sweep.csv", &sweep_csv)?;
    let deepest = points.last().expect("at least one sweep point");
    std::fs::write("FIG_round_telemetry.csv", deepest.telemetry.updates_csv())?;
    println!(
        "\nWrote FIG_buffer_sweep.csv ({} points) and FIG_round_telemetry.csv ({} update rows, K = {}).",
        points.len(),
        deepest.telemetry.num_update_rows(),
        deepest.buffer_size
    );
    println!("Small buffers aggregate eagerly (high utilisation, stale updates dropped or");
    println!("discounted); large buffers smooth staleness but wait longer per aggregation.");
    Ok(())
}
