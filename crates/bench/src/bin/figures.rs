//! Figure regeneration: buffer-size sweep of the asynchronous engine.
//!
//! Sweeps the FedBuff buffer size at the configured scale and records, per
//! buffer size, client-slot utilisation, mean/max staleness, dropped
//! updates (under a `max_staleness` bound) and time-to-accuracy — the raw
//! material for the "utilisation/staleness vs buffer size" figure the
//! ROADMAP called for. Built entirely on the streaming session API: a
//! [`CsvTelemetry`] observer collects per-update telemetry while the run is
//! in flight, and the per-round CSVs are written next to the summary.
//!
//! Outputs (in the working directory):
//!
//! * `FIG_buffer_sweep.csv` — one row per buffer size (the figure's x-axis);
//! * `FIG_round_telemetry.csv` — per-update rows of the largest-buffer run
//!   (dispatch/arrival/staleness per aggregated update).
//!
//! ```bash
//! cargo run --release -p mhfl-bench --bin figures [-- --quick|--paper]
//! ```

use mhfl_algorithms::build_algorithm;
use mhfl_bench::{print_table, scale_from_args, RunScale, Table};
use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_models::MhflMethod;
use pracmhbench_core::{CsvTelemetry, Execution, ExperimentSpec, MetricsReport, RoundEvent};

/// One sweep point.
struct SweepPoint {
    buffer_size: usize,
    report: MetricsReport,
    telemetry: CsvTelemetry,
}

fn run_point(base: ExperimentSpec, buffer_size: usize) -> SweepPoint {
    let spec = base.with_execution(Execution::async_buffered(buffer_size));
    let ctx = spec.build_context().expect("context builds");
    let mut algorithm = build_algorithm(spec.method);
    // Declared before the session so the mutable borrow the observer takes
    // can outlive it; the collector stays readable after the session ends.
    let mut telemetry = CsvTelemetry::new();
    let mut session = spec
        .engine()
        .session(algorithm.as_mut(), &ctx)
        .expect("session opens");
    session.observe(Box::new(&mut telemetry));
    let mut report = None;
    while let Some(event) = session.next_event().expect("session advances") {
        if let RoundEvent::RunCompleted { report: r } = event {
            report = Some(r);
        }
    }
    drop(session);
    SweepPoint {
        buffer_size,
        report: report.expect("run completed"),
        telemetry,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let base = ExperimentSpec::new(
        DataTask::UciHar,
        MhflMethod::SHeteroFl,
        ConstraintCase::Memory,
    )
    .with_scale(scale)
    .with_seed(42)
    .with_target_accuracy(0.5)
    // A finite staleness bound so the dropped-updates column is exercised
    // at small buffer sizes (very stale stragglers are discarded).
    .with_max_staleness(Some(8));

    let buffer_sizes: &[usize] = match scale {
        RunScale::Quick => &[1, 2, 4],
        _ => &[1, 2, 4, 8, 16],
    };

    println!(
        "Buffer-size sweep: SHeteroFL on {} ({scale:?} scale, async, max_staleness = 8)\n",
        base.task
    );
    let mut table = Table::new(
        "Utilisation and staleness vs FedBuff buffer size",
        &[
            "BufferSize",
            "GlobalAcc",
            "SimTime(s)",
            "TimeToAcc(s)",
            "MeanStaleness",
            "Utilisation",
            "Dropped",
        ],
    );
    let mut sweep_csv =
        String::from("buffer_size,global_accuracy,sim_time_secs,time_to_accuracy_secs,mean_staleness,utilisation,dropped_updates,total_payload_bytes\n");
    let mut points = Vec::new();
    for &buffer_size in buffer_sizes {
        let point = run_point(base, buffer_size);
        let report = &point.report;
        let tta = report.time_to_accuracy(base.target_accuracy);
        table.push_row(vec![
            point.buffer_size.to_string(),
            format!("{:.3}", report.final_accuracy()),
            format!("{:.1}", report.total_sim_time_secs()),
            tta.map(|s| format!("{s:.1}")).unwrap_or_else(|| "—".into()),
            format!("{:.2}", report.mean_staleness()),
            format!("{:.3}", report.utilisation()),
            report.dropped_updates().to_string(),
        ]);
        sweep_csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            point.buffer_size,
            report.final_accuracy(),
            report.total_sim_time_secs(),
            tta.map(|s| s.to_string()).unwrap_or_default(),
            report.mean_staleness(),
            report.utilisation(),
            report.dropped_updates(),
            report.total_payload_bytes(),
        ));
        points.push(point);
    }
    print_table(&table);

    std::fs::write("FIG_buffer_sweep.csv", &sweep_csv)?;
    let deepest = points.last().expect("at least one sweep point");
    std::fs::write("FIG_round_telemetry.csv", deepest.telemetry.updates_csv())?;
    println!(
        "\nWrote FIG_buffer_sweep.csv ({} points) and FIG_round_telemetry.csv ({} update rows, K = {}).",
        points.len(),
        deepest.telemetry.num_update_rows(),
        deepest.buffer_size
    );
    println!("Small buffers aggregate eagerly (high utilisation, stale updates dropped or");
    println!("discounted); large buffers smooth staleness but wait longer per aggregation.");
    Ok(())
}
