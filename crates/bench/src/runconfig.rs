//! Command-line handling shared by the regeneration binaries.

pub use pracmhbench_core::RunScale;

/// Parses the run scale from the process arguments / environment.
///
/// * `--quick` or `PRACMHBENCH_QUICK=1` → [`RunScale::Quick`] (CI / smoke tests);
/// * `--paper` → [`RunScale::Paper`] (the paper's full scale);
/// * otherwise → [`RunScale::Standard`].
pub fn scale_from_args() -> RunScale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--paper") {
        return RunScale::Paper;
    }
    if args.iter().any(|a| a == "--quick")
        || std::env::var("PRACMHBENCH_QUICK").is_ok_and(|v| v == "1")
    {
        return RunScale::Quick;
    }
    RunScale::Standard
}
