//! Table and series printing shared by the figure/table regeneration binaries.

/// A simple named table: headers plus string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the table).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        format!(
            "{}\n{}",
            self.title,
            pracmhbench_core::format_table(&headers, &self.rows)
        )
    }
}

/// Prints a table to stdout.
pub fn print_table(table: &Table) {
    println!("{}", table.render());
}

/// Prints a named numeric series (one figure line) as `label: v1 v2 v3 ...`.
pub fn print_series(label: &str, values: &[f64]) {
    let joined: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    println!("{label}: {}", joined.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_and_rows() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.starts_with("Demo"));
        assert!(rendered.contains('1'));
        assert_eq!(rendered.lines().count(), 4);
    }
}
