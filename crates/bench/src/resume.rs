//! Durable checkpoint/resume plumbing shared by the long-running bench
//! binaries (`paper_scale`, `figures`).
//!
//! A paper-scale run is hours of wall-clock; the session layer's durable
//! checkpoints (`mhfl_fl::persist`) make it interruption-tolerant. The
//! helpers here wrap the common shape — *resume from the checkpoint file if
//! it exists, otherwise start fresh; auto-save every N rounds; optionally
//! stop after a round budget (for smoke tests that simulate the
//! interruption)* — so every binary exposes the same `--resume` contract.

use std::path::Path;

use mhfl_algorithms::build_algorithm;
use mhfl_fl::{FlError, FlResult, RoundEvent, Session};
use pracmhbench_core::{CheckpointObserver, ExperimentSpec, MetricsReport};

/// Returns the value following `flag` in the process arguments
/// (`--flag value`), if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `true` when `flag` appears anywhere in the process arguments (a bare
/// boolean switch, no value).
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parses the value following `flag` as a `usize`, panicking with a usage
/// message on garbage (these are operator-facing CLI flags).
pub fn arg_usize(flag: &str) -> Option<usize> {
    arg_value(flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} expects an integer, got {v:?}"))
    })
}

/// The outcome of one resumable run.
pub struct ResumableOutcome {
    /// The final report — `None` when the run was deliberately stopped
    /// after `stop_after_rounds` (the interruption half of a smoke test).
    pub report: Option<MetricsReport>,
    /// The completed-round count the run resumed from (`None` = fresh run).
    pub resumed_from: Option<usize>,
    /// Completed rounds when the function returned.
    pub completed_rounds: usize,
}

/// Advances a session one event, tolerating failed *auto-saves*: a
/// `FlError::Persist` from a `CheckpointObserver` save leaves the session
/// live (see `Session::next_event`), and a long run should not lose its
/// in-memory progress to a transient disk error — the failure is logged and
/// the run continues on the previous good checkpoint.
pub fn next_tolerating_save_failure(session: &mut Session<'_>) -> FlResult<Option<RoundEvent>> {
    loop {
        match session.next_event() {
            Err(FlError::Persist(e)) => {
                eprintln!(
                    "warning: periodic checkpoint save failed ({e}); \
                     continuing on the previous checkpoint"
                );
            }
            other => return other,
        }
    }
}

/// Runs `spec` with durable checkpointing to `path`: resumes from the file
/// when it exists (validating the engine configuration against the spec),
/// auto-saves every `every` completed rounds and at run end, and — when
/// `stop_after_rounds` is set — saves and returns early once that many
/// rounds have completed, simulating an interruption.
///
/// A run interrupted this way and re-invoked with the same arguments
/// continues bit-exactly: the final `MetricsReport::digest()` equals the
/// uninterrupted run's. A *failed periodic save* does not abort the run
/// (the session keeps going on the previous good checkpoint); only the
/// explicit interruption save under `stop_after_rounds` is load-bearing
/// enough to propagate its error.
pub fn run_resumable(
    spec: &ExperimentSpec,
    path: &Path,
    every: usize,
    stop_after_rounds: Option<usize>,
) -> Result<ResumableOutcome, Box<dyn std::error::Error>> {
    let ctx = spec.build_context()?;
    let mut algorithm = build_algorithm(spec.method);
    let engine = spec.engine();
    let (mut session, resumed_from) = if path.exists() {
        let session = engine.restore_from(algorithm.as_mut(), &ctx, path)?;
        let from = session.completed_rounds();
        eprintln!(
            "resume: continuing from {} at round {from} (t = {:.1}s)",
            path.display(),
            session.sim_time_secs()
        );
        (session, Some(from))
    } else {
        (engine.session(algorithm.as_mut(), &ctx)?, None)
    };
    session.observe(Box::new(CheckpointObserver::every(path, every)));

    if let Some(stop) = stop_after_rounds {
        while session.completed_rounds() < stop && !session.is_finished() {
            if next_tolerating_save_failure(&mut session)?.is_none() {
                break;
            }
        }
        if !session.is_finished() {
            session.save(path)?;
            let completed_rounds = session.completed_rounds();
            eprintln!(
                "resume: stopped after round {completed_rounds}, checkpoint saved to {}",
                path.display()
            );
            return Ok(ResumableOutcome {
                report: None,
                resumed_from,
                completed_rounds,
            });
        }
    }

    let report = loop {
        match next_tolerating_save_failure(&mut session)? {
            Some(RoundEvent::RunCompleted { report }) => break report,
            Some(_) => {}
            None => break session.report().clone(),
        }
    };
    let completed = session.completed_rounds();
    Ok(ResumableOutcome {
        completed_rounds: completed.max(report.records.last().map_or(0, |r| r.round)),
        report: Some(report),
        resumed_from,
    })
}
