//! Shared helpers for the PracMHBench benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper.
//! The helpers here provide consistent command-line handling (a `--quick`
//! mode used by the test suite), table formatting and series printing so the
//! produced output has the same rows/columns the paper reports.

pub mod output;
pub mod resume;
pub mod runconfig;

pub use output::{print_series, print_table, Table};
pub use resume::{
    arg_usize, arg_value, has_flag, next_tolerating_save_failure, run_resumable, ResumableOutcome,
};
pub use runconfig::{scale_from_args, RunScale};
