//! Benchmarks width sub-model extraction (prefix and rolling) from a global
//! proxy model — the per-client cost a server pays every round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_fl::submodel::{extract_submodel, WidthSelection};
use mhfl_models::{InputKind, ModelFamily, ProxyConfig, ProxyModel};

fn bench_extraction(c: &mut Criterion) {
    let cfg = ProxyConfig::for_family(
        ModelFamily::ResNet101,
        InputKind::Image {
            channels: 3,
            height: 8,
            width: 8,
        },
        100,
        0,
    );
    let global = ProxyModel::new(cfg).unwrap();
    let global_sd = global.state_dict();
    let global_specs = global.param_specs();
    let half_specs = ProxyModel::new(cfg.with_width(0.5)).unwrap().param_specs();

    c.bench_function("extract_prefix_half_width", |b| {
        b.iter(|| {
            black_box(
                extract_submodel(
                    &global_sd,
                    &global_specs,
                    &half_specs,
                    WidthSelection::Prefix,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("extract_rolling_half_width", |b| {
        b.iter(|| {
            black_box(
                extract_submodel(
                    &global_sd,
                    &global_specs,
                    &half_specs,
                    WidthSelection::Rolling { shift: 13 },
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
