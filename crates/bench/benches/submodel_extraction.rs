//! Benchmarks width sub-model extraction (prefix and rolling) from a global
//! proxy model — the per-client cost a server pays every round — in both
//! the retained clone-then-gather-per-axis reference form and the
//! plan-cached single-pass form the algorithms actually run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_fl::submodel::{
    extract_submodel, ExtractionPlan, PlanCache, ServerAggregator, WidthSelection,
};
use mhfl_models::{InputKind, ModelFamily, ProxyConfig, ProxyModel};

fn bench_extraction(c: &mut Criterion) {
    let cfg = ProxyConfig::for_family(
        ModelFamily::ResNet101,
        InputKind::Image {
            channels: 3,
            height: 8,
            width: 8,
        },
        100,
        0,
    );
    let global = ProxyModel::new(cfg).unwrap();
    let global_sd = global.state_dict();
    let global_specs = global.param_specs();
    let half_specs = ProxyModel::new(cfg.with_width(0.5)).unwrap().param_specs();

    c.bench_function("extract_prefix_half_width", |b| {
        b.iter(|| {
            black_box(
                extract_submodel(
                    &global_sd,
                    &global_specs,
                    &half_specs,
                    WidthSelection::Prefix,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("extract_rolling_half_width", |b| {
        b.iter(|| {
            black_box(
                extract_submodel(
                    &global_sd,
                    &global_specs,
                    &half_specs,
                    WidthSelection::Rolling { shift: 13 },
                )
                .unwrap(),
            )
        })
    });
    // The planned paths the algorithms run in production: the plan is built
    // once per (shape set, selection) and replayed every round.
    let cache = PlanCache::new();
    c.bench_function("extract_planned_rolling_half_width", |b| {
        b.iter(|| {
            let plan = cache
                .for_client_specs(
                    &global_specs,
                    &half_specs,
                    WidthSelection::Rolling { shift: 13 },
                )
                .unwrap();
            black_box(plan.extract(&global_sd).unwrap())
        })
    });
    let update = extract_submodel(
        &global_sd,
        &global_specs,
        &half_specs,
        WidthSelection::Rolling { shift: 13 },
    )
    .unwrap();
    c.bench_function("aggregate_reference_half_width", |b| {
        b.iter(|| {
            let mut agg = ServerAggregator::new(global_specs.clone());
            agg.add_update(&update, WidthSelection::Rolling { shift: 13 }, 1.0)
                .unwrap();
            black_box(agg)
        })
    });
    let plan = ExtractionPlan::for_state(
        &global_specs,
        &update,
        WidthSelection::Rolling { shift: 13 },
    )
    .unwrap();
    c.bench_function("aggregate_planned_half_width", |b| {
        b.iter(|| {
            let mut agg = ServerAggregator::new(global_specs.clone());
            agg.add_update_with_plan(&update, &plan, 1.0).unwrap();
            black_box(agg)
        })
    });
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
