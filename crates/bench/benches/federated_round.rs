//! Benchmarks one full federated round (local training + aggregation) for a
//! width-level and a depth-level algorithm.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_algorithms::build_algorithm;
use mhfl_data::{DataTask, FederatedDataset};
use mhfl_device::{ConstraintCase, CostModel, ModelPool};
use mhfl_fl::{FederationContext, LocalTrainConfig};
use mhfl_models::{MhflMethod, ModelFamily};

fn context(method: MhflMethod) -> FederationContext {
    let task = DataTask::UciHar;
    let data = FederatedDataset::generate(task, 8, 16, None, 0);
    let pool = ModelPool::build(
        ModelFamily::ResNet101,
        &ModelFamily::RESNET_FAMILY,
        &MhflMethod::ALL,
        task.num_classes(),
    );
    let case = ConstraintCase::Memory;
    let devices = case.build_population(8, 0);
    let assignments = case.assign_clients(&pool, method, &devices, &CostModel::default());
    FederationContext::new(
        data,
        assignments,
        LocalTrainConfig { local_steps: 2, ..LocalTrainConfig::default() },
        0,
    )
    .unwrap()
}

fn bench_round(c: &mut Criterion) {
    for method in [MhflMethod::SHeteroFl, MhflMethod::DepthFl] {
        let ctx = context(method);
        c.bench_function(&format!("federated_round_{method}"), |b| {
            b.iter(|| {
                let mut alg = build_algorithm(method);
                alg.setup(&ctx).unwrap();
                black_box(alg.run_round(1, &[0, 1, 2, 3], &ctx).unwrap())
            })
        });
    }
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
