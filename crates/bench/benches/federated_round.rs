//! Benchmarks one full federated round (client phase + aggregation) for a
//! width-level and a depth-level algorithm, plus the client-phase fan-out
//! in sequential vs. threaded execution so the parallel speedup is tracked
//! in the perf trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_algorithms::build_algorithm;
use mhfl_data::{DataTask, FederatedDataset};
use mhfl_device::{ConstraintCase, CostModel, ModelPool};
use mhfl_fl::{run_clients, FederationContext, LocalTrainConfig, Parallelism};
use mhfl_models::{MhflMethod, ModelFamily};

fn context(method: MhflMethod) -> FederationContext {
    let task = DataTask::UciHar;
    let data = FederatedDataset::generate(task, 8, 16, None, 0);
    let pool = ModelPool::build(
        ModelFamily::ResNet101,
        &ModelFamily::RESNET_FAMILY,
        &MhflMethod::ALL,
        task.num_classes(),
    );
    let case = ConstraintCase::Memory;
    let devices = case.build_population(8, 0);
    let assignments = case.assign_clients(&pool, method, &devices, &CostModel::default());
    FederationContext::new(
        data,
        assignments,
        LocalTrainConfig {
            local_steps: 2,
            ..LocalTrainConfig::default()
        },
        0,
    )
    .unwrap()
}

fn bench_round(c: &mut Criterion) {
    for method in [MhflMethod::SHeteroFl, MhflMethod::DepthFl] {
        let ctx = context(method);
        c.bench_function(&format!("federated_round_{method}"), |b| {
            b.iter(|| {
                let mut alg = build_algorithm(method);
                alg.setup(&ctx).unwrap();
                let updates = run_clients(
                    alg.as_ref(),
                    1,
                    &[0, 1, 2, 3],
                    &ctx,
                    Parallelism::Sequential,
                )
                .unwrap();
                alg.aggregate(1, black_box(updates), &ctx).unwrap();
            })
        });
    }
}

fn bench_client_fanout(c: &mut Criterion) {
    let method = MhflMethod::SHeteroFl;
    let ctx = context(method);
    let mut alg = build_algorithm(method);
    alg.setup(&ctx).unwrap();
    let selected: Vec<usize> = (0..8).collect();
    for (label, mode) in [
        ("sequential", Parallelism::Sequential),
        ("threads", Parallelism::threads()),
    ] {
        c.bench_function(&format!("client_fanout_{label}"), |b| {
            b.iter(|| black_box(run_clients(alg.as_ref(), 1, &selected, &ctx, mode).unwrap()))
        });
    }
}

criterion_group!(benches, bench_round, bench_client_fanout);
criterion_main!(benches);
