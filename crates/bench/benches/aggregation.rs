//! Benchmarks server-side partial aggregation of heterogeneous client updates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_fl::submodel::{extract_submodel, ServerAggregator, WidthSelection};
use mhfl_models::{InputKind, ModelFamily, ProxyConfig, ProxyModel};

fn bench_aggregation(c: &mut Criterion) {
    let cfg = ProxyConfig::for_family(
        ModelFamily::ResNet101,
        InputKind::Image {
            channels: 3,
            height: 8,
            width: 8,
        },
        100,
        0,
    );
    let global = ProxyModel::new(cfg).unwrap();
    let global_sd = global.state_dict();
    let specs = global.param_specs();
    // Ten clients at mixed widths.
    let updates: Vec<_> = (0..10)
        .map(|i| {
            let width = [0.25, 0.5, 0.75, 1.0][i % 4];
            let client_specs = ProxyModel::new(cfg.with_width(width))
                .unwrap()
                .param_specs();
            extract_submodel(&global_sd, &specs, &client_specs, WidthSelection::Prefix).unwrap()
        })
        .collect();

    c.bench_function("aggregate_10_mixed_width_clients", |b| {
        b.iter(|| {
            let mut agg = ServerAggregator::new(specs.clone());
            for u in &updates {
                agg.add_update(u, WidthSelection::Prefix, 1.0).unwrap();
            }
            black_box(agg.finalize(&global_sd).unwrap())
        })
    });
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
