//! Benchmarks one local SGD step of each proxy-model modality.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_data::{generate_dataset, DataTask};
use mhfl_fl::train::local_train_ce;
use mhfl_fl::LocalTrainConfig;
use mhfl_models::{ProxyConfig, ProxyModel};
use mhfl_tensor::SeededRng;
use pracmhbench_core::base_family_for_task;

fn bench_training_step(c: &mut Criterion) {
    for task in [DataTask::Cifar10, DataTask::AgNews, DataTask::UciHar] {
        let data = generate_dataset(task, 64, 0, None);
        let cfg = LocalTrainConfig {
            local_steps: 1,
            batch_size: 16,
            ..LocalTrainConfig::default()
        };
        c.bench_function(&format!("local_step_{task}"), |b| {
            b.iter(|| {
                let mut model = ProxyModel::new(ProxyConfig::for_family(
                    base_family_for_task(task),
                    task.input_kind(),
                    task.num_classes(),
                    1,
                ))
                .unwrap();
                let mut rng = SeededRng::new(2);
                black_box(local_train_ce(&mut model, &data, &cfg, &mut rng).unwrap())
            })
        });
    }
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
