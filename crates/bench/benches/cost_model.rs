//! Benchmarks the analytical cost model and constraint-based model-pool
//! selection (the operations behind Table I, Fig. 3 and client assignment).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_device::{ConstraintCase, CostModel, ModelPool};
use mhfl_models::{MhflMethod, ModelFamily, ModelSpec};

fn bench_cost_model(c: &mut Criterion) {
    let spec = ModelSpec::new(ModelFamily::ResNet101, 100);
    c.bench_function("analytical_stats_resnet101", |b| {
        b.iter(|| black_box(spec.stats(black_box(0.5), black_box(1.0))))
    });

    let pool = ModelPool::build(
        ModelFamily::ResNet101,
        &ModelFamily::RESNET_FAMILY,
        &MhflMethod::HETEROGENEOUS,
        100,
    );
    let case = ConstraintCase::Computation {
        deadline_secs: 300.0,
    };
    let devices = case.build_population(100, 0);
    let cost_model = CostModel::default();
    c.bench_function("assign_100_clients_computation_limited", |b| {
        b.iter(|| {
            black_box(case.assign_clients(&pool, MhflMethod::SHeteroFl, &devices, &cost_model))
        })
    });
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
