//! Micro-benchmarks of the tensor substrate (matmul, softmax, gather).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhfl_tensor::{SeededRng, Tensor};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut rng = SeededRng::new(0);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    // The blocked kernel vs. the retained naive reference, and the
    // transpose-aware variant vs. materialising the transpose, at a
    // training-step-sized shape.
    let x = Tensor::randn(&[64, 256], 1.0, &mut rng);
    let w = Tensor::randn(&[256, 256], 0.1, &mut rng);
    c.bench_function("matmul_blocked_64x256x256", |bench| {
        bench.iter(|| black_box(x.matmul(&w).unwrap()))
    });
    c.bench_function("matmul_naive_64x256x256", |bench| {
        bench.iter(|| black_box(x.matmul_naive(&w).unwrap()))
    });
    c.bench_function("matmul_nt_64x256x256", |bench| {
        bench.iter(|| black_box(x.matmul_nt(&w).unwrap()))
    });
    c.bench_function("matmul_transpose_then_naive_64x256x256", |bench| {
        bench.iter(|| black_box(x.matmul_naive(&w.transpose().unwrap()).unwrap()))
    });
    let logits = Tensor::randn(&[128, 100], 1.0, &mut rng);
    c.bench_function("softmax_rows_128x100", |bench| {
        bench.iter(|| black_box(logits.softmax_rows().unwrap()))
    });
    let big = Tensor::randn(&[256, 64], 1.0, &mut rng);
    let idx: Vec<usize> = (0..128).collect();
    c.bench_function("gather_axis0_128_of_256", |bench| {
        bench.iter(|| black_box(big.gather_axis0(&idx).unwrap()))
    });
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
