//! # mhfl-net
//!
//! Sharded multi-process execution for the PracMHBench engine: a server that
//! owns the deterministic [`Session`](mhfl_fl::Session) round loop and N
//! worker processes that compute [`ClientUpdate`](mhfl_fl::ClientUpdate)s,
//! speaking length-prefixed, FNV-1a-checksummed, versioned frames
//! (the shared [`mhfl_fl::wire`] codec) over TCP or Unix sockets — `std`
//! only, no external networking deps.
//!
//! ## Topology
//!
//! ```text
//!                    ┌────────────────────────────┐
//!                    │  mhfl-server               │
//!                    │  FlEngine / Session        │
//!                    │  scheduler · clock · agg   │
//!                    │  RemoteRunner (sharding)   │
//!                    └──┬──────────┬──────────┬───┘
//!             Dispatch  │          │          │   UpdateReady / Heartbeat
//!        (round, shard, ▼          ▼          ▼
//!         state once/round)   tcp: or unix: sockets
//!                    ┌──────┐  ┌──────┐   ┌──────┐
//!                    │worker│  │worker│ … │worker│   mhfl-worker
//!                    │  0   │  │  1   │   │ N-1  │   client_update only
//!                    └──────┘  └──────┘   └──────┘
//! ```
//!
//! The server keeps every piece of round-loop state — scheduling, the
//! simulated clock, aggregation order, evaluation — exactly where the
//! single-process engine keeps it, and swaps only the *executor* of the
//! client phase: a [`RemoteRunner`] plugged into
//! [`Session::set_client_runner`](mhfl_fl::Session::set_client_runner)
//! shards each round's selection across the live workers and reassembles the
//! updates **in selection order**. Because every
//! [`ClientUpdate`](mhfl_fl::ClientUpdate) is a pure function of
//! `(algorithm state, round, client, ctx)` and the state ships to workers
//! through the same snapshot/restore codec the checkpoint suite proves
//! bit-exact, a distributed run's
//! [`MetricsReport::digest`](mhfl_fl::MetricsReport::digest) is **bitwise
//! identical** to the single-process reference — for 1, 2, or N workers,
//! and even when workers die mid-round (their unfinished clients are
//! redispatched to survivors, recomputing the same bits).
//!
//! ## Failure semantics
//!
//! * Worker death (connection drop, I/O error, or missed heartbeats past
//!   the read timeout) never loses an update: the dead worker's unreturned
//!   clients are requeued to the survivors in the next dispatch wave.
//! * Every protocol violation and transport failure is a typed [`NetError`],
//!   surfaced to the engine as
//!   [`FlError::Remote`](mhfl_fl::FlError) — never a panic.
//! * If every worker is gone mid-round, the run fails with
//!   [`NetError::NoWorkers`] instead of hanging.
//!
//! Entry points: [`distributed::run_server`] / [`distributed::run_worker`]
//! for whole runs, [`RemoteRunner`] + [`WorkerPool`] / [`serve`] for custom
//! drivers, and the `mhfl-server` / `mhfl-worker` binaries for the command
//! line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod distributed;
mod error;
mod message;
mod server;
mod transport;
mod worker;

pub use distributed::{run_server, run_server_with_timeout, run_worker, ServerOutcome};
pub use error::{NetError, NetResult};
pub use message::{read_message, write_message, Message, PROTOCOL_VERSION};
pub use server::{RemoteRunner, WorkerPool, WorkerStats, DEFAULT_READ_TIMEOUT};
pub use transport::{Conn, Endpoint, Listener};
pub use worker::{serve, WorkerOptions, WorkerReport};
