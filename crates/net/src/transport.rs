//! TCP / Unix-socket transport, `std` only.
//!
//! Endpoints are written `tcp:HOST:PORT` or `unix:/path/to.sock` (a bare
//! `HOST:PORT` means TCP). Binding `tcp:127.0.0.1:0` picks an ephemeral
//! port; [`Listener::local_endpoint`] reports the real one so tests and
//! examples never race over fixed ports.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::error::{io_err, NetError, NetResult};

/// Where a server listens / a worker connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4400`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:ADDR`, `unix:PATH`, or a bare `ADDR` (TCP).
    ///
    /// # Errors
    /// Returns [`NetError::Protocol`] on an empty address.
    pub fn parse(s: &str) -> NetResult<Endpoint> {
        let endpoint = if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else {
            Endpoint::Tcp(s.strip_prefix("tcp:").unwrap_or(s).to_string())
        };
        let empty = match &endpoint {
            Endpoint::Tcp(addr) => addr.is_empty(),
            Endpoint::Unix(path) => path.as_os_str().is_empty(),
        };
        if empty {
            return Err(NetError::Protocol {
                detail: format!("empty endpoint in {s:?}"),
            });
        }
        Ok(endpoint)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound server socket.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (the path is unlinked first so a stale socket
    /// file from a crashed run cannot block rebinding).
    Unix(UnixListener),
}

impl Listener {
    /// Binds the endpoint.
    ///
    /// # Errors
    /// Returns [`NetError::Io`] if binding fails.
    pub fn bind(endpoint: &Endpoint) -> NetResult<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(
                TcpListener::bind(addr).map_err(|e| io_err("bind", e))?,
            )),
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(
                    UnixListener::bind(path).map_err(|e| io_err("bind", e))?,
                ))
            }
        }
    }

    /// The endpoint actually bound — resolves an ephemeral TCP port 0 to
    /// the real port.
    ///
    /// # Errors
    /// Returns [`NetError::Io`] if the local address cannot be read.
    pub fn local_endpoint(&self) -> NetResult<Endpoint> {
        match self {
            Listener::Tcp(l) => {
                let addr = l.local_addr().map_err(|e| io_err("local_addr", e))?;
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            Listener::Unix(l) => {
                let addr = l.local_addr().map_err(|e| io_err("local_addr", e))?;
                Ok(Endpoint::Unix(
                    addr.as_pathname()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("<unnamed>")),
                ))
            }
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    /// Returns [`NetError::Io`] if accepting fails.
    pub fn accept(&self) -> NetResult<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept().map_err(|e| io_err("accept", e))?;
                stream.set_nodelay(true).map_err(|e| io_err("accept", e))?;
                Ok(Conn::Tcp(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept().map_err(|e| io_err("accept", e))?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One established connection, readable and writable.
#[derive(Debug)]
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl Conn {
    /// Connects to the endpoint once.
    ///
    /// # Errors
    /// Returns [`NetError::Io`] if the connection is refused or fails.
    pub fn connect(endpoint: &Endpoint) -> NetResult<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
                stream.set_nodelay(true).map_err(|e| io_err("connect", e))?;
                Ok(Conn::Tcp(stream))
            }
            Endpoint::Unix(path) => Ok(Conn::Unix(
                UnixStream::connect(path).map_err(|e| io_err("connect", e))?,
            )),
        }
    }

    /// Connects, retrying every 50 ms until `deadline` has elapsed — for
    /// workers racing a server that is still binding its socket.
    ///
    /// # Errors
    /// Returns the last connection error once the deadline passes.
    pub fn connect_within(endpoint: &Endpoint, deadline: Duration) -> NetResult<Conn> {
        let start = Instant::now();
        loop {
            match Conn::connect(endpoint) {
                Ok(conn) => return Ok(conn),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Clones the connection handle (shared underlying socket) so one side
    /// can read while another thread writes.
    ///
    /// # Errors
    /// Returns [`NetError::Io`] if the OS refuses the duplication.
    pub fn try_clone(&self) -> NetResult<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone().map_err(|e| io_err("clone", e))?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone().map_err(|e| io_err("clone", e))?)),
        }
    }

    /// Sets (or clears) the read timeout. The server uses this as its
    /// missed-heartbeat detector: a worker that neither computes nor
    /// heartbeats within the window counts as dead.
    ///
    /// # Errors
    /// Returns [`NetError::Io`] if the socket option cannot be set.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> NetResult<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
        .map_err(|e| io_err("set timeout", e))
    }

    /// Shuts down both directions — the "crash" used by chaos hooks.
    pub fn shutdown(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{read_message, write_message, Message};

    #[test]
    fn endpoint_parsing_and_display_round_trip() {
        let tcp = Endpoint::parse("tcp:127.0.0.1:4400").unwrap();
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:4400".into()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:4400");
        let bare = Endpoint::parse("127.0.0.1:4400").unwrap();
        assert_eq!(bare, tcp);
        let unix = Endpoint::parse("unix:/tmp/mhfl.sock").unwrap();
        assert_eq!(unix, Endpoint::Unix(PathBuf::from("/tmp/mhfl.sock")));
        assert_eq!(unix.to_string(), "unix:/tmp/mhfl.sock");
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn tcp_and_unix_sockets_carry_frames() {
        let dir = std::env::temp_dir().join("mhfl_net_transport_test");
        std::fs::create_dir_all(&dir).unwrap();
        let endpoints = [
            Endpoint::Tcp("127.0.0.1:0".into()),
            Endpoint::Unix(dir.join("t.sock")),
        ];
        for endpoint in endpoints {
            let listener = Listener::bind(&endpoint).unwrap();
            let actual = listener.local_endpoint().unwrap();
            let client = std::thread::spawn(move || {
                let mut conn = Conn::connect_within(&actual, Duration::from_secs(5)).unwrap();
                write_message(&mut conn, &Message::Heartbeat { seq: 42 }).unwrap();
                assert!(matches!(
                    read_message(&mut conn).unwrap(),
                    Message::Shutdown
                ));
            });
            let mut server_side = listener.accept().unwrap();
            assert!(matches!(
                read_message(&mut server_side).unwrap(),
                Message::Heartbeat { seq: 42 }
            ));
            write_message(&mut server_side, &Message::Shutdown).unwrap();
            client.join().unwrap();
        }
    }

    #[test]
    fn read_timeout_surfaces_as_typed_io_error() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let actual = listener.local_endpoint().unwrap();
        let silent = std::thread::spawn(move || {
            let conn = Conn::connect_within(&actual, Duration::from_secs(5)).unwrap();
            // Hold the connection open without sending anything.
            std::thread::sleep(Duration::from_millis(400));
            drop(conn);
        });
        let mut server_side = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        match read_message(&mut server_side) {
            Err(NetError::Io { op, .. }) => assert_eq!(op, "read frame header"),
            other => panic!("expected a timeout I/O error, got {other:?}"),
        }
        silent.join().unwrap();
    }
}
