//! Server side: the worker pool and the [`RemoteRunner`] that plugs into
//! [`Session::set_client_runner`](mhfl_fl::Session::set_client_runner).
//!
//! The runner's whole contract is *selection-order reassembly*: whatever
//! worker computes a client's update, the update lands in the slot its
//! client occupies in the scheduler's selection — so aggregation folds
//! updates in exactly the order the single-process engine would, and the
//! digest cannot move.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mhfl_fl::{
    AlgorithmState, ClientRunner, ClientUpdate, FederationContext, FlAlgorithm, FlResult,
    Parallelism,
};

use crate::error::{NetError, NetResult};
use crate::message::{read_message, write_message, Message, PROTOCOL_VERSION};
use crate::transport::{Conn, Listener};

/// Default window in which a worker must either deliver an update or a
/// heartbeat before the server declares it dead. Workers heartbeat every
/// ~500 ms, so this tolerates many missed beats but never hangs a round.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-worker utilisation accounting, reported by the distributed bench.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// The worker's self-reported display name.
    pub name: String,
    /// Client updates dispatched to this worker (requeues count again).
    pub dispatched: usize,
    /// Client updates actually received back.
    pub completed: usize,
    /// Wall-clock seconds the server spent waiting on (and receiving from)
    /// this worker — the numerator of its utilisation share.
    pub busy_secs: f64,
    /// Whether the worker died (connection lost / heartbeats missed).
    pub dead: bool,
}

struct WorkerHandle {
    conn: Conn,
    /// The round whose algorithm state this worker last restored; `None`
    /// until the first dispatch. Requeue waves within a round skip the
    /// state payload for synced workers.
    synced_round: Option<usize>,
}

/// The accepted worker connections plus their utilisation ledger.
pub struct WorkerPool {
    workers: Vec<Option<WorkerHandle>>,
    stats: Vec<WorkerStats>,
}

impl WorkerPool {
    /// Accepts `count` workers from the listener, validating each handshake:
    /// the worker's protocol version and experiment-spec fingerprint must
    /// match ours, otherwise its results would silently diverge. Each
    /// accepted worker gets an [`Message::AssignShard`] reply and the
    /// server-side read timeout (the missed-heartbeat detector).
    ///
    /// # Errors
    /// Returns [`NetError::HandshakeMismatch`] or [`NetError::Protocol`] on
    /// a bad handshake and [`NetError::Io`] on socket failure.
    pub fn accept(
        listener: &Listener,
        count: usize,
        fingerprint: u64,
        num_clients: usize,
    ) -> NetResult<WorkerPool> {
        Self::accept_with_timeout(
            listener,
            count,
            fingerprint,
            num_clients,
            DEFAULT_READ_TIMEOUT,
        )
    }

    /// [`accept`](WorkerPool::accept) with an explicit read timeout —
    /// tests shrink it to fail fast.
    ///
    /// # Errors
    /// Same as [`accept`](WorkerPool::accept).
    pub fn accept_with_timeout(
        listener: &Listener,
        count: usize,
        fingerprint: u64,
        num_clients: usize,
        read_timeout: Duration,
    ) -> NetResult<WorkerPool> {
        let mut workers = Vec::with_capacity(count);
        let mut stats = Vec::with_capacity(count);
        for worker_index in 0..count {
            let mut conn = listener.accept()?;
            conn.set_read_timeout(Some(read_timeout))?;
            let hello = read_message(&mut conn)?;
            let Message::Hello {
                protocol,
                fingerprint: theirs,
                worker_name,
            } = hello
            else {
                return Err(NetError::Protocol {
                    detail: format!("expected Hello as the first frame, got {hello:?}"),
                });
            };
            if protocol != PROTOCOL_VERSION {
                return Err(NetError::Protocol {
                    detail: format!(
                        "worker speaks protocol {protocol}, server speaks {PROTOCOL_VERSION}"
                    ),
                });
            }
            if theirs != fingerprint {
                // Tell the worker why before dropping it.
                let _ = write_message(
                    &mut conn,
                    &Message::Abort {
                        detail: "experiment spec fingerprint mismatch".into(),
                    },
                );
                return Err(NetError::HandshakeMismatch {
                    ours: fingerprint,
                    theirs,
                });
            }
            write_message(
                &mut conn,
                &Message::AssignShard {
                    worker_index,
                    num_workers: count,
                    num_clients,
                },
            )?;
            workers.push(Some(WorkerHandle {
                conn,
                synced_round: None,
            }));
            stats.push(WorkerStats {
                name: worker_name,
                ..WorkerStats::default()
            });
        }
        Ok(WorkerPool { workers, stats })
    }

    /// Number of workers still connected.
    pub fn live(&self) -> usize {
        self.workers.iter().filter(|w| w.is_some()).count()
    }

    /// The per-worker utilisation ledger.
    pub fn stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    fn kill(&mut self, index: usize) {
        if let Some(handle) = self.workers[index].take() {
            handle.conn.shutdown();
        }
        self.stats[index].dead = true;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Best-effort clean shutdown so workers exit instead of blocking on
        // a read forever.
        for handle in self.workers.iter_mut().flatten() {
            let _ = write_message(&mut handle.conn, &Message::Shutdown);
        }
    }
}

/// A [`ClientRunner`] that shards each round's selection across the pool
/// and reassembles the updates in selection order.
///
/// Dispatch is wave-based: positions still unfilled after a wave (because
/// their worker died mid-shard) are redistributed across the survivors and
/// dispatched again — an update is a pure function of
/// `(state, round, client, ctx)`, so the recomputed bits are identical and
/// nothing is lost. The algorithm state is snapshotted once per round and
/// shipped only to workers not yet synced to that round.
pub struct RemoteRunner {
    pool: WorkerPool,
    published: Arc<Mutex<Vec<WorkerStats>>>,
}

impl RemoteRunner {
    /// Wraps an accepted pool.
    pub fn new(pool: WorkerPool) -> RemoteRunner {
        RemoteRunner {
            pool,
            published: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A shared handle to the utilisation ledger, updated after every
    /// dispatch call and on drop — the way a driver that hands the runner
    /// to a [`Session`](mhfl_fl::Session) (which consumes it) still gets
    /// the final stats back.
    pub fn stats_handle(&self) -> Arc<Mutex<Vec<WorkerStats>>> {
        Arc::clone(&self.published)
    }

    fn publish(&self) {
        *self.published.lock().expect("stats lock") = self.pool.stats.clone();
    }

    /// Sends one wave of dispatches and collects their updates into
    /// `slots`. Returns the positions that remain unfilled (their workers
    /// died). `state` is shipped to workers not yet synced to `round`.
    fn run_wave(
        &mut self,
        round: usize,
        pending: &[usize],
        clients: &[usize],
        state: &AlgorithmState,
        parallelism: Parallelism,
        slots: &mut [Option<ClientUpdate>],
    ) -> NetResult<()> {
        let live: Vec<usize> = (0..self.pool.workers.len())
            .filter(|&i| self.pool.workers[i].is_some())
            .collect();
        if live.is_empty() {
            return Err(NetError::NoWorkers {
                pending: pending.len(),
            });
        }
        // Round-robin by selection position: deterministic, balanced, and
        // independent of which workers happen to be alive.
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
        for (i, &position) in pending.iter().enumerate() {
            shards[i % live.len()].push(position);
        }

        // Dispatch phase: get every worker computing before reading any
        // results back.
        for (&worker, shard) in live.iter().zip(&shards) {
            if shard.is_empty() {
                continue;
            }
            let handle = self.pool.workers[worker].as_mut().expect("live worker");
            let message = Message::Dispatch {
                round,
                clients: shard.iter().map(|&p| clients[p]).collect(),
                state: (handle.synced_round != Some(round)).then(|| state.clone()),
                parallelism,
            };
            self.pool.stats[worker].dispatched += shard.len();
            if write_message(&mut handle.conn, &message).is_err() {
                self.pool.kill(worker);
                continue;
            }
            self.pool.workers[worker]
                .as_mut()
                .expect("live worker")
                .synced_round = Some(round);
        }

        // Collection phase: workers stream updates concurrently; reading
        // them one worker at a time is safe because a worker blocked on a
        // full socket buffer is unblocked the moment its turn comes.
        for (&worker, shard) in live.iter().zip(&shards) {
            if shard.is_empty() || self.pool.workers[worker].is_none() {
                continue;
            }
            let started = Instant::now();
            let mut received = 0;
            while received < shard.len() {
                let handle = self.pool.workers[worker].as_mut().expect("live worker");
                match read_message(&mut handle.conn) {
                    Ok(Message::Heartbeat { .. }) => {}
                    Ok(Message::UpdateReady {
                        round: update_round,
                        update,
                    }) => {
                        let position = shard[received];
                        if update_round != round || update.client != clients[position] {
                            return Err(NetError::Protocol {
                                detail: format!(
                                    "worker {worker} answered round {update_round} client {} \
                                     where round {round} client {} was expected",
                                    update.client, clients[position]
                                ),
                            });
                        }
                        slots[position] = Some(update);
                        received += 1;
                        self.pool.stats[worker].completed += 1;
                    }
                    Ok(Message::Abort { detail }) => {
                        // The worker's algorithm failed deterministically;
                        // every replica would fail the same way, so don't
                        // requeue — surface it.
                        return Err(NetError::Protocol {
                            detail: format!("worker {worker} aborted: {detail}"),
                        });
                    }
                    Ok(other) => {
                        return Err(NetError::Protocol {
                            detail: format!("unexpected frame from worker {worker}: {other:?}"),
                        });
                    }
                    Err(_) => {
                        // Connection lost or heartbeat window exceeded:
                        // the worker is dead, its unreturned positions
                        // stay pending for the next wave.
                        self.pool.kill(worker);
                        break;
                    }
                }
            }
            self.pool.stats[worker].busy_secs += started.elapsed().as_secs_f64();
        }
        Ok(())
    }
}

impl ClientRunner for RemoteRunner {
    fn run_clients(
        &mut self,
        algorithm: &dyn FlAlgorithm,
        round: usize,
        clients: &[usize],
        ctx: &FederationContext,
        parallelism: Parallelism,
    ) -> FlResult<Vec<ClientUpdate>> {
        let _ = ctx; // the workers own their own (identical) context
        if clients.is_empty() {
            return Ok(Vec::new());
        }
        let state = algorithm.snapshot()?;
        let mut slots: Vec<Option<ClientUpdate>> = (0..clients.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..clients.len()).collect();
        while !pending.is_empty() {
            if let Err(e) = self.run_wave(round, &pending, clients, &state, parallelism, &mut slots)
            {
                self.publish();
                return Err(e.into());
            }
            pending = (0..clients.len()).filter(|&p| slots[p].is_none()).collect();
        }
        self.publish();
        let updates = slots
            .into_iter()
            .map(|slot| slot.expect("no pending position left unfilled"))
            .collect();
        Ok(updates)
    }
}

impl Drop for RemoteRunner {
    fn drop(&mut self) {
        self.publish();
    }
}
