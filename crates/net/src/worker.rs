//! Worker side: serve one connection, computing client updates on demand.
//!
//! A worker owns a *replica* of the experiment — the same
//! [`FederationContext`] (rebuilt from the same spec and seed) and a fresh
//! algorithm instance whose state is overwritten by the server's
//! round-start snapshot — so its updates are bit-identical to what the
//! server would compute locally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mhfl_fl::{run_clients, FederationContext, FlAlgorithm};

use crate::error::{NetError, NetResult};
use crate::message::{read_message, write_message, Message, PROTOCOL_VERSION};
use crate::transport::Conn;

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Display name reported in the handshake and the server's utilisation
    /// ledger.
    pub name: String,
    /// Heartbeat interval; the server's read timeout should be a multiple
    /// of this.
    pub heartbeat: Duration,
    /// Chaos hook: drop the connection (simulating a crash) after sending
    /// this many updates in total — exercised by the kill-mid-round smoke.
    pub die_after_updates: Option<usize>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: "worker".into(),
            heartbeat: Duration::from_millis(500),
            die_after_updates: None,
        }
    }
}

/// What one [`serve`] call did, for logs and assertions.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Index assigned by the server's handshake.
    pub worker_index: usize,
    /// Dispatches handled.
    pub dispatches: usize,
    /// Updates sent back.
    pub updates_sent: usize,
    /// Whether the chaos hook fired (the connection was dropped on
    /// purpose).
    pub died: bool,
}

/// Serves one server connection until [`Message::Shutdown`] (or the chaos
/// hook fires): handshake, then a loop of
/// [`Message::Dispatch`] → restore-state-if-shipped → compute → stream
/// [`Message::UpdateReady`]s back in shard order. A side thread heartbeats
/// through the same socket (frames are mutex-serialised so they never
/// interleave) to keep long local computations from looking like death.
///
/// # Errors
/// [`NetError::HandshakeMismatch`] if the server rejects the fingerprint,
/// [`NetError::Io`] on transport failure, [`NetError::Protocol`] on an
/// out-of-protocol frame or a local algorithm failure (which is reported
/// to the server as [`Message::Abort`] first).
pub fn serve(
    conn: Conn,
    fingerprint: u64,
    algorithm: &mut dyn FlAlgorithm,
    ctx: &FederationContext,
    options: WorkerOptions,
) -> NetResult<WorkerReport> {
    let mut reader = conn;
    let writer = Arc::new(Mutex::new(reader.try_clone()?));

    write_message(
        &mut *writer.lock().expect("writer lock"),
        &Message::Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint,
            worker_name: options.name.clone(),
        },
    )?;
    let mut report = WorkerReport::default();
    match read_message(&mut reader)? {
        Message::AssignShard { worker_index, .. } => report.worker_index = worker_index,
        Message::Abort { detail } => {
            return Err(NetError::Protocol {
                detail: format!("server rejected handshake: {detail}"),
            })
        }
        other => {
            return Err(NetError::Protocol {
                detail: format!("expected AssignShard after Hello, got {other:?}"),
            })
        }
    }

    // Liveness side-channel: heartbeat frames share the write half through
    // the mutex, so they are serialised against update frames.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let interval = options.heartbeat;
        std::thread::spawn(move || {
            let mut seq = 0u64;
            let mut last = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(20));
                if last.elapsed() < interval {
                    continue;
                }
                last = Instant::now();
                seq += 1;
                let mut w = writer.lock().expect("writer lock");
                if write_message(&mut *w, &Message::Heartbeat { seq }).is_err() {
                    break;
                }
            }
        })
    };
    // Whatever way serve() exits, the heartbeat thread must be reaped.
    let result = serve_loop(&mut reader, &writer, algorithm, ctx, &options, &mut report);
    stop.store(true, Ordering::Relaxed);
    heartbeat.join().expect("heartbeat thread");
    result.map(|()| report)
}

fn serve_loop(
    reader: &mut Conn,
    writer: &Arc<Mutex<Conn>>,
    algorithm: &mut dyn FlAlgorithm,
    ctx: &FederationContext,
    options: &WorkerOptions,
    report: &mut WorkerReport,
) -> NetResult<()> {
    loop {
        match read_message(reader)? {
            Message::Dispatch {
                round,
                clients,
                state,
                parallelism,
            } => {
                report.dispatches += 1;
                if let Some(state) = state {
                    if let Err(e) = algorithm.restore(state, ctx) {
                        return abort(writer, format!("state restore failed: {e}"));
                    }
                }
                let updates = match run_clients(&*algorithm, round, &clients, ctx, parallelism) {
                    Ok(updates) => updates,
                    Err(e) => return abort(writer, format!("client phase failed: {e}")),
                };
                for update in updates {
                    write_message(
                        &mut *writer.lock().expect("writer lock"),
                        &Message::UpdateReady { round, update },
                    )?;
                    report.updates_sent += 1;
                    if options.die_after_updates == Some(report.updates_sent) {
                        // Simulated crash: vanish mid-shard without a
                        // goodbye, exactly like a killed process.
                        reader.shutdown();
                        report.died = true;
                        return Ok(());
                    }
                }
            }
            Message::Shutdown => return Ok(()),
            Message::Heartbeat { .. } => {}
            Message::Abort { detail } => {
                return Err(NetError::Protocol {
                    detail: format!("server aborted: {detail}"),
                })
            }
            other => {
                return Err(NetError::Protocol {
                    detail: format!("unexpected frame while serving: {other:?}"),
                })
            }
        }
    }
}

/// Reports a local failure to the server, then surfaces it locally.
fn abort(writer: &Arc<Mutex<Conn>>, detail: String) -> NetResult<()> {
    let _ = write_message(
        &mut *writer.lock().expect("writer lock"),
        &Message::Abort {
            detail: detail.clone(),
        },
    );
    Err(NetError::Protocol { detail })
}
