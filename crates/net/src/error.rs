//! Typed errors for the distributed layer.

use std::fmt;

use mhfl_fl::{FlError, PersistError};

/// Crate-wide result alias.
pub type NetResult<T> = std::result::Result<T, NetError>;

/// Everything that can go wrong between a server and its workers. Every
/// variant is a recoverable, reportable condition — corrupt or foreign
/// bytes, dead peers and protocol violations all surface here, never as a
/// panic.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed (includes read timeouts, which the server
    /// treats as missed heartbeats).
    Io {
        /// What was being attempted (`"connect"`, `"read frame"`, ...).
        op: &'static str,
        /// The underlying I/O error.
        detail: String,
    },
    /// A frame failed wire-level validation: bad magic, unsupported wire
    /// version, checksum mismatch, truncation or a malformed payload.
    Codec(PersistError),
    /// The peer sent a well-formed frame the protocol does not allow here
    /// (wrong message kind, wrong round, wrong client).
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Server and worker were launched with different experiment setups:
    /// their spec fingerprints disagree, so their contexts would diverge.
    HandshakeMismatch {
        /// The fingerprint this side computed.
        ours: u64,
        /// The fingerprint the peer reported.
        theirs: u64,
    },
    /// Every worker died while client work was still outstanding; there is
    /// nobody left to requeue onto.
    NoWorkers {
        /// How many clients were still pending.
        pending: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { op, detail } => write!(f, "i/o failure during {op}: {detail}"),
            NetError::Codec(e) => write!(f, "wire codec error: {e}"),
            NetError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            NetError::HandshakeMismatch { ours, theirs } => write!(
                f,
                "experiment setup mismatch: server fingerprint {ours:#018x}, \
                 worker fingerprint {theirs:#018x} — both sides must be \
                 launched with the same spec"
            ),
            NetError::NoWorkers { pending } => write!(
                f,
                "all workers are gone with {pending} client update(s) still \
                 pending; nothing left to reschedule onto"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for NetError {
    fn from(e: PersistError) -> Self {
        NetError::Codec(e)
    }
}

impl From<NetError> for FlError {
    fn from(e: NetError) -> Self {
        FlError::Remote(e.to_string())
    }
}

/// Shorthand for wrapping a [`std::io::Error`].
pub(crate) fn io_err(op: &'static str, e: std::io::Error) -> NetError {
    NetError::Io {
        op,
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_errors_surface_as_typed_fl_errors() {
        let e: FlError = NetError::NoWorkers { pending: 3 }.into();
        match e {
            FlError::Remote(msg) => assert!(msg.contains("3 client")),
            other => panic!("expected FlError::Remote, got {other:?}"),
        }
        let e: NetError = PersistError::TrailingData { bytes: 9 }.into();
        assert!(e.to_string().contains("wire codec"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
