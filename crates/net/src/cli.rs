//! Shared command-line spec parsing for the `mhfl-server` / `mhfl-worker`
//! binaries and the distributed bench/example drivers.
//!
//! Both sides of a distributed run must be launched with the *same*
//! experiment spec — the worker rebuilds the federation context from it —
//! so the flags here round-trip through [`spec_flags`] and any residual
//! mismatch is caught by the [`spec_fingerprint`] handshake.

use mhfl_data::DataTask;
use mhfl_device::ConstraintCase;
use mhfl_fl::wire::fnv64;
use mhfl_fl::{Execution, Parallelism};
use mhfl_models::MhflMethod;
use pracmhbench_core::{ExperimentSpec, RunScale};

use crate::error::{NetError, NetResult};

/// The value following `flag` in `args`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether `flag` appears in `args`.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn normalise(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

fn bad(flag: &str, value: &str, expected: &str) -> NetError {
    NetError::Protocol {
        detail: format!("{flag} {value:?}: expected {expected}"),
    }
}

fn parse_task(value: &str) -> NetResult<DataTask> {
    let wanted = normalise(value);
    DataTask::ALL
        .into_iter()
        .find(|t| normalise(&format!("{t:?}")) == wanted)
        .ok_or_else(|| bad("--task", value, "one of the paper's data tasks"))
}

fn parse_method(value: &str) -> NetResult<MhflMethod> {
    let wanted = normalise(value);
    MhflMethod::ALL
        .into_iter()
        .find(|m| normalise(&format!("{m:?}")) == wanted)
        .ok_or_else(|| bad("--method", value, "one of the MHFL methods"))
}

fn parse_constraint(value: &str) -> NetResult<ConstraintCase> {
    // The paper's canonical parameters: 300 s computation deadline, 200 s
    // communication budget.
    match normalise(value).as_str() {
        "memory" | "mem" => Ok(ConstraintCase::Memory),
        "computation" | "comp" => Ok(ConstraintCase::Computation {
            deadline_secs: 300.0,
        }),
        "communication" | "comm" => Ok(ConstraintCase::Communication { budget_secs: 200.0 }),
        "combined" => Ok(ConstraintCase::memory_plus_communication(200.0)),
        _ => Err(bad(
            "--constraint",
            value,
            "memory | computation | communication | combined",
        )),
    }
}

fn parse_scale(value: &str) -> NetResult<RunScale> {
    match normalise(value).as_str() {
        "quick" => Ok(RunScale::Quick),
        "standard" => Ok(RunScale::Standard),
        "paper" => Ok(RunScale::Paper),
        _ => Err(bad("--scale", value, "quick | standard | paper")),
    }
}

fn parse_execution(value: &str) -> NetResult<Execution> {
    if normalise(value) == "sync" {
        return Ok(Execution::Synchronous);
    }
    if let Some(rest) = value.strip_prefix("async:") {
        let mut parts = rest.split(':');
        let buffer = parts
            .next()
            .and_then(|p| p.parse::<usize>().ok())
            .ok_or_else(|| bad("--execution", value, "async:<buffer>[:<concurrency>]"))?;
        let concurrency = match parts.next() {
            Some(p) => p
                .parse::<usize>()
                .map_err(|_| bad("--execution", value, "async:<buffer>[:<concurrency>]"))?,
            None => 0,
        };
        return Ok(Execution::AsyncBuffered {
            buffer_size: buffer,
            concurrency,
        });
    }
    Err(bad("--execution", value, "sync | async:<buffer>"))
}

fn parse_parallelism(value: &str) -> NetResult<Parallelism> {
    if normalise(value) == "seq" {
        return Ok(Parallelism::Sequential);
    }
    if let Some(n) = value.strip_prefix("threads:") {
        let workers = n
            .parse::<usize>()
            .map_err(|_| bad("--parallelism", value, "seq | threads:<n>"))?;
        return Ok(Parallelism::Threads { workers });
    }
    Err(bad("--parallelism", value, "seq | threads:<n>"))
}

/// Builds an [`ExperimentSpec`] from the shared flag set. Every flag is
/// optional; the defaults give the quick smoke spec (UCI-HAR / SHeteroFL /
/// memory / seed 42 / synchronous / sequential).
///
/// # Errors
/// Returns [`NetError::Protocol`] on an unrecognised value.
pub fn parse_spec(args: &[String]) -> NetResult<ExperimentSpec> {
    let task = match arg_value(args, "--task") {
        Some(v) => parse_task(&v)?,
        None => DataTask::UciHar,
    };
    let method = match arg_value(args, "--method") {
        Some(v) => parse_method(&v)?,
        None => MhflMethod::SHeteroFl,
    };
    let constraint = match arg_value(args, "--constraint") {
        Some(v) => parse_constraint(&v)?,
        None => ConstraintCase::Memory,
    };
    let mut spec = ExperimentSpec::new(task, method, constraint);
    spec = spec.with_scale(match arg_value(args, "--scale") {
        Some(v) => parse_scale(&v)?,
        None => RunScale::Quick,
    });
    if let Some(v) = arg_value(args, "--seed") {
        let seed = v
            .parse::<u64>()
            .map_err(|_| bad("--seed", &v, "an unsigned integer"))?;
        spec = spec.with_seed(seed);
    }
    if let Some(v) = arg_value(args, "--execution") {
        spec = spec.with_execution(parse_execution(&v)?);
    }
    if let Some(v) = arg_value(args, "--parallelism") {
        spec = spec.with_parallelism(parse_parallelism(&v)?);
    }
    Ok(spec)
}

/// Serialises a spec back to the flag set [`parse_spec`] reads — how the
/// bench and example launch worker processes with a guaranteed-identical
/// spec.
pub fn spec_flags(spec: &ExperimentSpec) -> Vec<String> {
    let constraint = match spec.constraint {
        ConstraintCase::Memory => "memory",
        ConstraintCase::Computation { .. } => "computation",
        ConstraintCase::Communication { .. } => "communication",
        ConstraintCase::Combined { .. } => "combined",
    };
    let scale = match spec.scale {
        RunScale::Quick => "quick",
        RunScale::Standard => "standard",
        RunScale::Paper => "paper",
    };
    let execution = match spec.execution {
        Execution::Synchronous => "sync".to_string(),
        Execution::AsyncBuffered {
            buffer_size,
            concurrency,
        } => format!("async:{buffer_size}:{concurrency}"),
    };
    let parallelism = match spec.parallelism {
        Parallelism::Sequential => "seq".to_string(),
        Parallelism::Threads { workers } => format!("threads:{workers}"),
    };
    vec![
        "--task".into(),
        format!("{:?}", spec.task),
        "--method".into(),
        format!("{:?}", spec.method),
        "--constraint".into(),
        constraint.into(),
        "--scale".into(),
        scale.into(),
        "--seed".into(),
        spec.seed.to_string(),
        "--execution".into(),
        execution,
        "--parallelism".into(),
        parallelism,
    ]
}

/// FNV-1a fingerprint of the full spec. Server and worker exchange it in
/// the [`Message::Hello`](crate::Message) handshake: equal fingerprints
/// mean both sides rebuild byte-identical federation contexts, so their
/// client updates agree bit-for-bit.
pub fn spec_fingerprint(spec: &ExperimentSpec) -> u64 {
    // `ExperimentSpec` derives a complete `Debug` over plain-data fields,
    // which makes its rendering a canonical serialisation of the setup.
    fnv64(format!("{spec:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_flags_round_trip_through_parse_spec() {
        let spec = ExperimentSpec::new(
            DataTask::Cifar10,
            MhflMethod::FedProto,
            ConstraintCase::Computation {
                deadline_secs: 300.0,
            },
        )
        .with_scale(RunScale::Quick)
        .with_seed(7)
        .with_execution(Execution::async_buffered(2))
        .with_parallelism(Parallelism::Threads { workers: 3 });
        let parsed = parse_spec(&spec_flags(&spec)).expect("round trip parses");
        assert_eq!(parsed, spec);
        assert_eq!(spec_fingerprint(&parsed), spec_fingerprint(&spec));
    }

    #[test]
    fn fingerprints_separate_different_setups() {
        let a = ExperimentSpec::new(
            DataTask::UciHar,
            MhflMethod::SHeteroFl,
            ConstraintCase::Memory,
        );
        let b = a.with_seed(43);
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn unknown_values_are_typed_errors() {
        let args = vec!["--task".to_string(), "mnist".to_string()];
        assert!(matches!(parse_spec(&args), Err(NetError::Protocol { .. })));
    }
}
