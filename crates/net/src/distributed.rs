//! Whole-run drivers: everything between "I have a spec and a socket" and
//! "here is the digest".

use std::time::{Duration, Instant};

use mhfl_fl::{FlResult, MetricsReport};
use pracmhbench_core::ExperimentSpec;

use crate::cli::spec_fingerprint;
use crate::error::{NetError, NetResult};
use crate::server::{RemoteRunner, WorkerPool, WorkerStats, DEFAULT_READ_TIMEOUT};
use crate::transport::{Conn, Endpoint, Listener};
use crate::worker::{serve, WorkerOptions, WorkerReport};

/// The result of a distributed run on the server side.
#[derive(Debug, Clone)]
pub struct ServerOutcome {
    /// The full metric report — its digest is the distributed-correctness
    /// witness, bitwise identical to a single-process run of the same spec.
    pub report: MetricsReport,
    /// Per-worker utilisation.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock seconds spent accepting and handshaking the pool.
    pub accept_secs: f64,
    /// Wall-clock seconds of the federated run itself.
    pub run_secs: f64,
}

/// Runs the full experiment as the server: accept `num_workers` workers
/// from `listener`, drive the deterministic [`Session`](mhfl_fl::Session)
/// round loop with a [`RemoteRunner`], and return the report plus the
/// utilisation ledger.
///
/// # Errors
/// Handshake, transport and requeue-exhaustion failures surface as
/// [`FlError::Remote`](mhfl_fl::FlError); engine and algorithm failures
/// keep their own [`FlError`](mhfl_fl::FlError) variants.
pub fn run_server(
    listener: &Listener,
    num_workers: usize,
    spec: &ExperimentSpec,
) -> FlResult<ServerOutcome> {
    run_server_with_timeout(listener, num_workers, spec, DEFAULT_READ_TIMEOUT)
}

/// [`run_server`] with an explicit missed-heartbeat window.
///
/// # Errors
/// Same as [`run_server`].
pub fn run_server_with_timeout(
    listener: &Listener,
    num_workers: usize,
    spec: &ExperimentSpec,
    read_timeout: Duration,
) -> FlResult<ServerOutcome> {
    let ctx = spec.build_context()?;
    let started = Instant::now();
    let pool = WorkerPool::accept_with_timeout(
        listener,
        num_workers,
        spec_fingerprint(spec),
        ctx.num_clients(),
        read_timeout,
    )?;
    let accept_secs = started.elapsed().as_secs_f64();

    let mut algorithm = mhfl_algorithms::build_algorithm(spec.method);
    let mut session = spec.engine().session(algorithm.as_mut(), &ctx)?;
    let runner = RemoteRunner::new(pool);
    let stats = runner.stats_handle();
    session.set_client_runner(Box::new(runner));

    let started = Instant::now();
    let report = session.drain()?;
    let run_secs = started.elapsed().as_secs_f64();

    let workers = stats.lock().expect("stats lock").clone();
    Ok(ServerOutcome {
        report,
        workers,
        accept_secs,
        run_secs,
    })
}

/// Runs as a worker: connect to `endpoint` (retrying for up to ten seconds
/// while the server binds), rebuild the federation context from the spec,
/// and serve dispatches until the server shuts the run down.
///
/// # Errors
/// Propagates connection, handshake and protocol failures as typed
/// [`NetError`]s.
pub fn run_worker(
    endpoint: &Endpoint,
    spec: &ExperimentSpec,
    options: WorkerOptions,
) -> NetResult<WorkerReport> {
    let conn = Conn::connect_within(endpoint, Duration::from_secs(10))?;
    let ctx = spec.build_context().map_err(|e| NetError::Protocol {
        detail: format!("worker context build failed: {e}"),
    })?;
    let mut algorithm = mhfl_algorithms::build_algorithm(spec.method);
    serve(
        conn,
        spec_fingerprint(spec),
        algorithm.as_mut(),
        &ctx,
        options,
    )
}
