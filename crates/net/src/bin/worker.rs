//! `mhfl-worker` — one client-phase worker of a distributed run.
//!
//! Rebuilds the federation context from the same spec flags the server was
//! launched with (the handshake fingerprint rejects any mismatch), then
//! computes whatever client shards the server dispatches until shutdown.
//!
//! ```bash
//! mhfl-worker --connect tcp:127.0.0.1:4400 \
//!     --task uci_har --method shetero_fl --constraint memory \
//!     --scale quick --seed 42
//! ```
//!
//! `--die-after <n>` is the chaos hook used by the kill-mid-round smoke:
//! the worker drops its connection after sending n updates, like a crash.

use std::time::Duration;

use mhfl_net::cli::{arg_value, parse_spec};
use mhfl_net::{run_worker, Endpoint, WorkerOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let endpoint = arg_value(&args, "--connect").unwrap_or_else(|| fail("--connect is required"));
    let endpoint = Endpoint::parse(&endpoint).unwrap_or_else(|e| fail(&e.to_string()));
    let spec = parse_spec(&args).unwrap_or_else(|e| fail(&e.to_string()));

    let mut options = WorkerOptions {
        name: arg_value(&args, "--name").unwrap_or_else(|| format!("pid{}", std::process::id())),
        ..WorkerOptions::default()
    };
    if let Some(ms) = arg_value(&args, "--heartbeat-ms") {
        let ms: u64 = ms
            .parse()
            .unwrap_or_else(|_| fail("--heartbeat-ms expects milliseconds"));
        options.heartbeat = Duration::from_millis(ms);
    }
    if let Some(n) = arg_value(&args, "--die-after") {
        options.die_after_updates = Some(
            n.parse()
                .unwrap_or_else(|_| fail("--die-after expects a count")),
        );
    }

    let name = options.name.clone();
    let report = run_worker(&endpoint, &spec, options).unwrap_or_else(|e| fail(&e.to_string()));
    eprintln!(
        "mhfl-worker {name}: served {} dispatch(es), sent {} update(s){}",
        report.dispatches,
        report.updates_sent,
        if report.died {
            " before simulated crash"
        } else {
            ""
        }
    );
}

fn fail(message: &str) -> ! {
    eprintln!("mhfl-worker: {message}");
    std::process::exit(1);
}
