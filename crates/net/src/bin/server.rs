//! `mhfl-server` — the aggregation server of a distributed run.
//!
//! Owns the full deterministic round loop (scheduling, clock, aggregation,
//! evaluation) and farms the client phase out to `--workers` N remote
//! `mhfl-worker` processes. The final digest is bitwise identical to a
//! single-process run of the same spec.
//!
//! ```bash
//! mhfl-server --listen tcp:127.0.0.1:4400 --workers 2 \
//!     --task uci_har --method shetero_fl --constraint memory \
//!     --scale quick --seed 42
//! ```

use mhfl_net::cli::{arg_value, parse_spec};
use mhfl_net::{run_server, Endpoint, Listener};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let endpoint = arg_value(&args, "--listen").unwrap_or_else(|| "tcp:127.0.0.1:4400".into());
    let endpoint = Endpoint::parse(&endpoint).unwrap_or_else(|e| fail(&e.to_string()));
    let workers: usize = arg_value(&args, "--workers")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--workers expects a number"))
        })
        .unwrap_or(2);
    let spec = parse_spec(&args).unwrap_or_else(|e| fail(&e.to_string()));

    let listener = Listener::bind(&endpoint).unwrap_or_else(|e| fail(&e.to_string()));
    let actual = listener
        .local_endpoint()
        .unwrap_or_else(|e| fail(&e.to_string()));
    eprintln!(
        "mhfl-server: listening on {actual}, waiting for {workers} worker(s) \
         ({} / {} / {:?} / seed {})",
        spec.method, spec.task, spec.scale, spec.seed
    );

    let outcome = run_server(&listener, workers, &spec).unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "mhfl-server: run complete in {:.2}s (accept {:.2}s): final acc {:.4}, \
         digest 0x{:016x}",
        outcome.run_secs,
        outcome.accept_secs,
        outcome.report.final_accuracy(),
        outcome.report.digest()
    );
    for w in &outcome.workers {
        let utilisation = if outcome.run_secs > 0.0 {
            w.busy_secs / outcome.run_secs
        } else {
            0.0
        };
        println!(
            "  worker {:<12} dispatched {:>5}  completed {:>5}  busy {:>7.2}s  \
             utilisation {:>5.1}%{}",
            w.name,
            w.dispatched,
            w.completed,
            w.busy_secs,
            utilisation * 100.0,
            if w.dead { "  [died]" } else { "" }
        );
    }
}

fn fail(message: &str) -> ! {
    eprintln!("mhfl-server: {message}");
    std::process::exit(1);
}
