//! The server ⇄ worker message set and its frame codec.
//!
//! Every message is one [`mhfl_fl::wire`] frame: the 8-byte wire magic, the
//! wire version, a kind byte, a `u32` payload length, the payload encoded
//! with the shared [`Encoder`], and an FNV-1a checksum trailer. The frame
//! layer already rejects foreign bytes, future versions, truncation and
//! bit flips with typed errors; this module only assigns kinds and payload
//! shapes.
//!
//! | kind | message       | payload |
//! |------|---------------|---------|
//! | 0x01 | `Hello`       | protocol `u32`, spec fingerprint `u64`, worker name |
//! | 0x02 | `AssignShard` | worker index, worker count, client count |
//! | 0x03 | `Dispatch`    | round, client ids, optional [`AlgorithmState`], [`Parallelism`] |
//! | 0x04 | `UpdateReady` | round, one [`ClientUpdate`] |
//! | 0x05 | `Heartbeat`   | sequence number `u64` |
//! | 0x06 | `Abort`       | human-readable reason |
//! | 0x07 | `Shutdown`    | (empty) |

use std::io::{Read, Write};

use mhfl_fl::wire::{
    check_frame_payload, decode_frame_header, encode_frame, put_algorithm_state, put_update,
    take_algorithm_state, take_update, Decoder, Encoder, PersistError, FRAME_HEADER_LEN,
    FRAME_TRAILER_LEN, WIRE_VERSION,
};
use mhfl_fl::{AlgorithmState, ClientUpdate, Parallelism};

use crate::error::{io_err, NetError, NetResult};

/// The protocol version spoken by this build — currently the wire-format
/// version itself, re-checked explicitly in the [`Message::Hello`]
/// handshake so a future protocol bump can outpace the frame format.
pub const PROTOCOL_VERSION: u32 = WIRE_VERSION;

const MSG_HELLO: u8 = 0x01;
const MSG_ASSIGN_SHARD: u8 = 0x02;
const MSG_DISPATCH: u8 = 0x03;
const MSG_UPDATE_READY: u8 = 0x04;
const MSG_HEARTBEAT: u8 = 0x05;
const MSG_ABORT: u8 = 0x06;
const MSG_SHUTDOWN: u8 = 0x07;

/// One frame of the server ⇄ worker protocol.
#[derive(Debug, Clone)]
pub enum Message {
    /// Worker → server, first frame after connecting: protocol version,
    /// experiment-spec fingerprint and a display name.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Fingerprint of the worker's experiment spec; must equal the
        /// server's or the handshake is rejected.
        fingerprint: u64,
        /// Display name for logs and utilisation reports.
        worker_name: String,
    },
    /// Server → worker, handshake reply: this worker's index in the pool.
    AssignShard {
        /// Zero-based index of this worker.
        worker_index: usize,
        /// Total number of workers the server accepted.
        num_workers: usize,
        /// Client population size of the experiment.
        num_clients: usize,
    },
    /// Server → worker: compute updates for `clients` of `round`, in order.
    Dispatch {
        /// The federated round the clients train in.
        round: usize,
        /// The client ids of this worker's shard, in selection order.
        clients: Vec<usize>,
        /// The algorithm state to restore before computing — sent on the
        /// first dispatch of each round, omitted on requeue waves within
        /// the same round (the worker is already synced).
        state: Option<AlgorithmState>,
        /// Thread-level parallelism the worker should use locally.
        parallelism: Parallelism,
    },
    /// Worker → server: one computed update, streamed in shard order.
    UpdateReady {
        /// Echo of the dispatch round, validated by the server.
        round: usize,
        /// The computed update.
        update: ClientUpdate,
    },
    /// Worker → server liveness signal, sent from a side thread so a long
    /// local computation never looks like a dead connection.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// Either direction: the sender hit a non-recoverable failure and is
    /// about to close the connection.
    Abort {
        /// Human-readable reason.
        detail: String,
    },
    /// Server → worker: clean end of service.
    Shutdown,
}

fn put_parallelism(e: &mut Encoder, parallelism: Parallelism) {
    match parallelism {
        Parallelism::Sequential => e.put_u8(0),
        Parallelism::Threads { workers } => {
            e.put_u8(1);
            e.put_usize(workers);
        }
    }
}

fn take_parallelism(d: &mut Decoder<'_>) -> NetResult<Parallelism> {
    match d.take_u8()? {
        0 => Ok(Parallelism::Sequential),
        1 => Ok(Parallelism::Threads {
            workers: d.take_usize()?,
        }),
        tag => Err(NetError::Codec(PersistError::Malformed {
            section: "message",
            detail: format!("unknown parallelism tag {tag}"),
        })),
    }
}

/// Encodes one message as a complete wire frame.
pub fn encode_message(message: &Message) -> Vec<u8> {
    let mut e = Encoder::new();
    let kind = match message {
        Message::Hello {
            protocol,
            fingerprint,
            worker_name,
        } => {
            e.put_u32(*protocol);
            e.put_u64(*fingerprint);
            e.put_str(worker_name);
            MSG_HELLO
        }
        Message::AssignShard {
            worker_index,
            num_workers,
            num_clients,
        } => {
            e.put_usize(*worker_index);
            e.put_usize(*num_workers);
            e.put_usize(*num_clients);
            MSG_ASSIGN_SHARD
        }
        Message::Dispatch {
            round,
            clients,
            state,
            parallelism,
        } => {
            e.put_usize(*round);
            e.put_usize(clients.len());
            for &client in clients {
                e.put_usize(client);
            }
            match state {
                Some(state) => {
                    e.put_bool(true);
                    put_algorithm_state(&mut e, state);
                }
                None => e.put_bool(false),
            }
            put_parallelism(&mut e, *parallelism);
            MSG_DISPATCH
        }
        Message::UpdateReady { round, update } => {
            e.put_usize(*round);
            put_update(&mut e, update);
            MSG_UPDATE_READY
        }
        Message::Heartbeat { seq } => {
            e.put_u64(*seq);
            MSG_HEARTBEAT
        }
        Message::Abort { detail } => {
            e.put_str(detail);
            MSG_ABORT
        }
        Message::Shutdown => MSG_SHUTDOWN,
    };
    encode_frame(kind, &e.into_bytes())
}

/// Decodes a verified frame payload into a [`Message`].
///
/// # Errors
/// Returns [`NetError::Codec`] on a malformed payload and
/// [`NetError::Protocol`] on an unknown kind.
pub fn decode_message(kind: u8, payload: &[u8]) -> NetResult<Message> {
    let mut d = Decoder::new(payload, "message");
    let message = match kind {
        MSG_HELLO => Message::Hello {
            protocol: d.take_u32()?,
            fingerprint: d.take_u64()?,
            worker_name: d.take_str()?,
        },
        MSG_ASSIGN_SHARD => Message::AssignShard {
            worker_index: d.take_usize()?,
            num_workers: d.take_usize()?,
            num_clients: d.take_usize()?,
        },
        MSG_DISPATCH => {
            let round = d.take_usize()?;
            let len = d.take_len(8)?;
            let mut clients = Vec::with_capacity(len);
            for _ in 0..len {
                clients.push(d.take_usize()?);
            }
            let state = if d.take_bool()? {
                Some(take_algorithm_state(&mut d)?)
            } else {
                None
            };
            let parallelism = take_parallelism(&mut d)?;
            Message::Dispatch {
                round,
                clients,
                state,
                parallelism,
            }
        }
        MSG_UPDATE_READY => Message::UpdateReady {
            round: d.take_usize()?,
            update: take_update(&mut d)?,
        },
        MSG_HEARTBEAT => Message::Heartbeat { seq: d.take_u64()? },
        MSG_ABORT => Message::Abort {
            detail: d.take_str()?,
        },
        MSG_SHUTDOWN => Message::Shutdown,
        other => {
            return Err(NetError::Protocol {
                detail: format!("unknown message kind {other:#04x}"),
            })
        }
    };
    d.finish()?;
    Ok(message)
}

/// Writes one message to a stream and flushes it.
///
/// # Errors
/// Returns [`NetError::Io`] on a write failure — the caller treats that as
/// a dead peer.
pub fn write_message(w: &mut impl Write, message: &Message) -> NetResult<()> {
    let frame = encode_message(message);
    w.write_all(&frame).map_err(|e| io_err("write frame", e))?;
    w.flush().map_err(|e| io_err("flush frame", e))?;
    Ok(())
}

/// Reads exactly one message from a stream: header first (to learn the
/// payload length), then payload + checksum trailer, verified before
/// decoding.
///
/// # Errors
/// [`NetError::Io`] on connection loss or a read timeout (the server's
/// missed-heartbeat signal), [`NetError::Codec`] on any corruption,
/// [`NetError::Protocol`] on an unknown kind.
pub fn read_message(r: &mut impl Read) -> NetResult<Message> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| io_err("read frame header", e))?;
    let (kind, len) = decode_frame_header(&header)?;
    let mut body = vec![0u8; len + FRAME_TRAILER_LEN];
    r.read_exact(&mut body)
        .map_err(|e| io_err("read frame body", e))?;
    let stored = u64::from_le_bytes(body[len..].try_into().expect("trailer is 8 bytes"));
    check_frame_payload(&body[..len], stored)?;
    decode_message(kind, &body[..len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_fl::ClientPayload;

    fn round_trip(message: &Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, message).expect("write");
        read_message(&mut buf.as_slice()).expect("read")
    }

    #[test]
    fn every_message_kind_round_trips() {
        match round_trip(&Message::Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint: 0xDEAD_BEEF,
            worker_name: "w0".into(),
        }) {
            Message::Hello {
                protocol,
                fingerprint,
                worker_name,
            } => {
                assert_eq!(protocol, PROTOCOL_VERSION);
                assert_eq!(fingerprint, 0xDEAD_BEEF);
                assert_eq!(worker_name, "w0");
            }
            other => panic!("wrong kind: {other:?}"),
        }

        match round_trip(&Message::Dispatch {
            round: 3,
            clients: vec![5, 1, 7],
            state: Some(AlgorithmState::default()),
            parallelism: Parallelism::Threads { workers: 2 },
        }) {
            Message::Dispatch {
                round,
                clients,
                state,
                parallelism,
            } => {
                assert_eq!(round, 3);
                assert_eq!(clients, vec![5, 1, 7]);
                assert!(state.is_some());
                assert_eq!(parallelism, Parallelism::Threads { workers: 2 });
            }
            other => panic!("wrong kind: {other:?}"),
        }

        match round_trip(&Message::UpdateReady {
            round: 2,
            update: ClientUpdate::new(4, 17, ClientPayload::Empty),
        }) {
            Message::UpdateReady { round, update } => {
                assert_eq!(round, 2);
                assert_eq!(update.client, 4);
                assert_eq!(update.num_samples, 17);
            }
            other => panic!("wrong kind: {other:?}"),
        }

        assert!(matches!(
            round_trip(&Message::Heartbeat { seq: 9 }),
            Message::Heartbeat { seq: 9 }
        ));
        assert!(matches!(round_trip(&Message::Shutdown), Message::Shutdown));
        match round_trip(&Message::Abort {
            detail: "boom".into(),
        }) {
            Message::Abort { detail } => assert_eq!(detail, "boom"),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn several_messages_stream_back_to_back() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Heartbeat { seq: 1 }).unwrap();
        write_message(&mut buf, &Message::Heartbeat { seq: 2 }).unwrap();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Message::Heartbeat { seq: 1 }
        ));
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Message::Heartbeat { seq: 2 }
        ));
        assert!(matches!(read_message(&mut r).unwrap(), Message::Shutdown));
        assert!(r.is_empty());
    }

    #[test]
    fn corrupted_streams_are_typed_errors_never_panics() {
        let mut frame = encode_message(&Message::Heartbeat { seq: 7 });

        // Foreign magic.
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_message(&mut bad.as_slice()),
            Err(NetError::Codec(PersistError::BadMagic { .. }))
        ));

        // A flipped payload bit is a checksum mismatch.
        let payload_byte = FRAME_HEADER_LEN; // first payload byte of seq
        frame[payload_byte] ^= 0x01;
        assert!(matches!(
            read_message(&mut frame.as_slice()),
            Err(NetError::Codec(PersistError::ChecksumMismatch { .. }))
        ));
        frame[payload_byte] ^= 0x01;

        // Truncation at every cut point is an I/O or codec error.
        for cut in 0..frame.len() {
            assert!(
                read_message(&mut frame[..cut].as_ref()).is_err(),
                "truncation at {cut} must fail"
            );
        }

        // An unknown kind is a protocol violation.
        let unknown = encode_frame(0x7F, &[]);
        assert!(matches!(
            read_message(&mut unknown.as_slice()),
            Err(NetError::Protocol { .. })
        ));
    }
}
