//! Deterministic random number generation for reproducible experiments.

/// A self-contained xoshiro256++ core, seeded via splitmix64 so any 64-bit
/// seed yields a well-mixed initial state. Keeping the generator in-tree
/// (instead of depending on `rand`) makes experiment reproducibility a
/// property of this repository alone.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_words(s: [u64; 4]) -> Self {
        Xoshiro256 { s }
    }

    fn words(&self) -> [u64; 4] {
        self.s
    }

    fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[low, high)`.
    fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        let sample = low + self.unit_f64() * (high - low);
        // Guard against rounding up to the (exclusive) upper bound.
        if sample >= high {
            low.max(high - f64::EPSILON * high.abs())
        } else {
            sample
        }
    }

    fn range_f32(&mut self, low: f32, high: f32) -> f32 {
        let sample = low + self.unit_f64() as f32 * (high - low);
        if sample >= high {
            low.max(high - f32::EPSILON * high.abs())
        } else {
            sample
        }
    }

    /// Uniform draw in `[0, n)` via 128-bit widening multiply.
    fn range_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A bit-exact snapshot of a [`SeededRng`], sufficient to resume its stream
/// exactly where it left off.
///
/// Produced by [`SeededRng::snapshot`] and consumed by
/// [`SeededRng::from_snapshot`]; the checkpoint/resume machinery of the
/// federated engine stores one of these per live generator so a restored run
/// replays the identical random sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState {
    /// The xoshiro256++ state words.
    pub words: [u64; 4],
    /// The seed the generator was created with (kept so
    /// [`SeededRng::derive`] keeps producing the same child streams).
    pub seed: u64,
    /// Whether the generator is the zero-initialisation stub.
    pub zero_init: bool,
}

/// A seeded random number generator shared by data generation and model
/// initialisation so entire experiments are reproducible from a single seed.
///
/// ```
/// use mhfl_tensor::SeededRng;
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: Xoshiro256,
    seed: u64,
    zero_init: bool,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: Xoshiro256::new(seed),
            seed,
            zero_init: false,
        }
    }

    /// Creates a generator whose continuous samplers ([`normal`] and
    /// [`uniform`]) return `0.0` without touching the generator state.
    ///
    /// Used to build parameter containers whose values are immediately
    /// overwritten — e.g. `ProxyModel::from_state` reconstructing a client
    /// model from a stored snapshot — skipping the Box–Muller work of a full
    /// random initialisation. Discrete samplers are unaffected.
    ///
    /// [`normal`]: SeededRng::normal
    /// [`uniform`]: SeededRng::uniform
    pub fn zero_init() -> Self {
        SeededRng {
            zero_init: true,
            ..SeededRng::new(0)
        }
    }

    /// Whether this generator is the zero-initialisation stub produced by
    /// [`SeededRng::zero_init`].
    pub fn is_zero_init(&self) -> bool {
        self.zero_init
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the generator's full state. Resuming from the snapshot with
    /// [`SeededRng::from_snapshot`] continues the exact same stream: the
    /// n-th draw after the snapshot equals the n-th draw after the capture.
    pub fn snapshot(&self) -> RngState {
        RngState {
            words: self.inner.words(),
            seed: self.seed,
            zero_init: self.zero_init,
        }
    }

    /// Reconstructs a generator from a [`snapshot`](SeededRng::snapshot).
    pub fn from_snapshot(state: RngState) -> SeededRng {
        SeededRng {
            inner: Xoshiro256::from_words(state.words),
            seed: state.seed,
            zero_init: state.zero_init,
        }
    }

    /// Derives a child generator whose stream is independent of, but fully
    /// determined by, this generator's seed and the supplied `stream` label.
    ///
    /// Used to hand out per-client, per-round generators that do not depend
    /// on the order in which clients are simulated.
    pub fn derive(&self, stream: u64) -> SeededRng {
        // SplitMix64-style mixing keeps derived seeds well distributed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SeededRng {
            // Children of a zero-init stub stay zero-init, so an entire model
            // built from one skips initialisation in every sub-module.
            zero_init: self.zero_init,
            ..SeededRng::new(z ^ (z >> 31))
        }
    }

    /// Samples a standard-normal value scaled to mean `mean` and standard
    /// deviation `std` (Box–Muller transform; avoids extra dependencies).
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        if self.zero_init {
            return 0.0;
        }
        let u1: f32 = self.inner.range_f32(f32::EPSILON, 1.0);
        let u2: f32 = self.inner.range_f32(0.0, 1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Samples uniformly from `[low, high)`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        if self.zero_init {
            return 0.0;
        }
        if (high - low).abs() < f32::EPSILON {
            return low;
        }
        self.inner.range_f32(low, high)
    }

    /// Samples an integer uniformly from `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.range_u64(n as u64) as usize
    }

    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.unit_f64() < p
    }

    /// Draws a sample from a symmetric Dirichlet distribution with
    /// concentration `alpha` over `k` categories, via normalised Gamma
    /// samples (Marsaglia–Tsang for alpha >= 1, boosting otherwise).
    pub fn dirichlet(&mut self, alpha: f64, k: usize) -> Vec<f64> {
        assert!(k > 0, "dirichlet requires at least one category");
        let mut draws: Vec<f64> = (0..k).map(|_| self.gamma(alpha)).collect();
        let sum: f64 = draws.iter().sum();
        if sum <= f64::EPSILON {
            // Degenerate case: fall back to a one-hot on a random category.
            let hot = self.index(k);
            draws = vec![0.0; k];
            draws[hot] = 1.0;
            return draws;
        }
        draws.iter_mut().for_each(|d| *d /= sum);
        draws
    }

    /// Samples from a Gamma(shape, 1) distribution.
    fn gamma(&mut self, shape: f64) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}
            let u: f64 = self.inner.range_f64(f64::EPSILON, 1.0);
            return self.gamma(shape + 1.0) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = {
                let u1: f64 = self.inner.range_f64(f64::EPSILON, 1.0);
                let u2: f64 = self.inner.range_f64(0.0, 1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = self.inner.range_f64(f64::EPSILON, 1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    /// Samples from a log-normal distribution with the given parameters of
    /// the underlying normal (used by the synthetic IMA device population).
    pub fn log_normal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal(mu, sigma).exp()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.range_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Chooses `count` distinct indices from `[0, n)` uniformly at random.
    ///
    /// # Panics
    /// Panics if `count > n`.
    pub fn choose_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot choose {count} items from {n}");
        let mut indices: Vec<usize> = (0..n).collect();
        self.shuffle(&mut indices);
        indices.truncate(count);
        indices.sort_unstable();
        indices
    }

    /// Chooses `count` distinct indices from `[0, n)` uniformly at random in
    /// O(count) time and memory (Robert Floyd's sampling algorithm),
    /// returned sorted ascending.
    ///
    /// The subset is uniform like [`choose_indices`](SeededRng::choose_indices)
    /// but the two methods consume the stream differently and realise
    /// different subsets for the same state: `choose_indices` shuffles all
    /// `n` candidates (O(n) work — fine when `count` is a sizeable fraction
    /// of `n`), while this never touches more than `count` of them — the
    /// population-scale path, where `n` is millions and `count` is dozens.
    ///
    /// # Panics
    /// Panics if `count > n`.
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot sample {count} items from {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(count);
        for j in (n - count)..n {
            let candidate = self.index(j + 1);
            if chosen.contains(&candidate) {
                chosen.push(j);
            } else {
                chosen.push(candidate);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Samples an index according to the (non-negative, not necessarily
    /// normalised) weights. Falls back to uniform if all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index requires weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= f64::EPSILON {
            return self.index(weights.len());
        }
        let mut target = self.inner.range_f64(0.0, total);
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let base = SeededRng::new(42);
        let mut a = base.derive(1);
        let mut b = base.derive(2);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_reproducible() {
        let base = SeededRng::new(7);
        let mut a = base.derive(5);
        let mut b = SeededRng::new(7).derive(5);
        assert_eq!(a.index(1000), b.index(1000));
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SeededRng::new(3);
        for &alpha in &[0.1, 0.5, 1.0, 5.0] {
            let draw = rng.dirichlet(alpha, 10);
            let sum: f64 = draw.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha={alpha} sum={sum}");
            assert!(draw.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn dirichlet_concentration_effect() {
        // Small alpha should produce more skewed distributions on average.
        let mut rng = SeededRng::new(11);
        let avg_max = |alpha: f64, rng: &mut SeededRng| -> f64 {
            (0..200)
                .map(|_| rng.dirichlet(alpha, 10).into_iter().fold(0.0f64, f64::max))
                .sum::<f64>()
                / 200.0
        };
        let skewed = avg_max(0.1, &mut rng);
        let flat = avg_max(10.0, &mut rng);
        assert!(skewed > flat, "skewed={skewed} flat={flat}");
    }

    #[test]
    fn choose_indices_distinct_sorted() {
        let mut rng = SeededRng::new(5);
        let picked = rng.choose_indices(100, 10);
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_indices_distinct_sorted_and_sparse() {
        let mut rng = SeededRng::new(5);
        let picked = rng.sample_indices(1_000_000_000, 20);
        assert_eq!(picked.len(), 20);
        assert!(picked.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        assert!(picked.iter().all(|&i| i < 1_000_000_000));
        // Deterministic given the stream state.
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        assert_eq!(a.sample_indices(1 << 40, 16), b.sample_indices(1 << 40, 16));
        // Degenerate edges.
        assert!(rng.sample_indices(10, 0).is_empty());
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        // Every index of a small range should be hit at a similar rate.
        let mut rng = SeededRng::new(31);
        let mut hits = [0usize; 10];
        for _ in 0..2000 {
            for i in rng.sample_indices(10, 3) {
                hits[i] += 1;
            }
        }
        // Expected 600 hits each; allow a generous band.
        assert!(
            hits.iter().all(|&h| (400..800).contains(&h)),
            "hits={hits:?}"
        );
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = SeededRng::new(13);
        let n = 5000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.2, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.3, "std={}", var.sqrt());
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut rng = SeededRng::new(21);
        let weights = [0.01, 0.01, 10.0, 0.01];
        let hits = (0..500)
            .filter(|_| rng.weighted_index(&weights) == 2)
            .count();
        assert!(hits > 400, "hits={hits}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SeededRng::new(1);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn snapshot_resumes_the_exact_stream() {
        let mut rng = SeededRng::new(99);
        // Burn an arbitrary prefix of the stream.
        for _ in 0..37 {
            rng.normal(0.0, 1.0);
            rng.index(17);
        }
        let snapshot = rng.snapshot();
        let mut resumed = SeededRng::from_snapshot(snapshot);
        for _ in 0..64 {
            assert_eq!(
                rng.normal(0.0, 1.0).to_bits(),
                resumed.normal(0.0, 1.0).to_bits()
            );
            assert_eq!(rng.index(1000), resumed.index(1000));
            assert_eq!(rng.bernoulli(0.3), resumed.bernoulli(0.3));
        }
        // Derived children depend on the original seed, which the snapshot
        // preserves.
        assert_eq!(rng.derive(5).index(100), resumed.derive(5).index(100));
        // Zero-init flag survives the round trip.
        let stub = SeededRng::zero_init();
        let mut restored = SeededRng::from_snapshot(stub.snapshot());
        assert!(restored.is_zero_init());
        assert_eq!(restored.normal(2.0, 1.0), 0.0);
    }

    #[test]
    fn zero_init_samplers_return_zero_and_propagate_to_children() {
        let mut rng = SeededRng::zero_init();
        assert!(rng.is_zero_init());
        assert_eq!(rng.normal(5.0, 2.0), 0.0);
        assert_eq!(rng.uniform(1.0, 3.0), 0.0);
        let mut child = rng.derive(7);
        assert!(child.is_zero_init());
        assert_eq!(child.normal(1.0, 1.0), 0.0);
        // A regular generator is unaffected.
        let mut real = SeededRng::new(7);
        assert!(!real.is_zero_init());
        assert!(!real.derive(3).is_zero_init());
        assert_ne!(real.normal(5.0, 2.0), 0.0);
    }
}
