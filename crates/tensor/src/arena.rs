//! [`TensorArena`]: the recycling buffer pool behind [`Tensor`] storage.
//!
//! Every `Tensor` owns a `Vec<f32>` buffer. Before this module existed each
//! construction hit the system allocator and each drop freed — in a
//! federated round that means fresh allocations for every client model,
//! every extracted sub-model, every activation of every training step and
//! every `ClientUpdate` payload, round after round, even though the set of
//! buffer sizes is essentially static once the experiment is running.
//!
//! The arena turns that steady-state traffic into recycling:
//!
//! * **leases** hand out buffers (empty-with-capacity, or zero-filled) from
//!   a free list bucketed by capacity;
//! * **recycling** happens on the tensor drop path: storage returns to the
//!   pool instead of being freed (see `Storage` in `tensor.rs`);
//! * a **per-thread local pool** serves leases and recycles without any
//!   synchronisation, so kernel worker threads and the federated client
//!   fan-out never contend on a lock;
//! * a shared, mutex-protected **overflow pool** catches buffers from
//!   threads that exit (scoped kernel workers live for one call) and feeds
//!   threads whose local pool misses, so recycling works across the thread
//!   topology, not just within one thread.
//!
//! The pool is **observably inert**: a lease only changes *where* the bytes
//! of a buffer come from, never their values — zero-filled leases are
//! re-zeroed on reuse, and capacity-only leases are handed out empty. The
//! golden-digest suite and `tests/arena.rs` pin this.
//!
//! With the `alloc-count` feature the arena counts its traffic
//! (fresh allocations vs. pool hits, per thread and process-wide), which is
//! how `paper_scale` proves near-zero steady-state allocations per round
//! and how the kernel regression tests assert warm paths allocate nothing.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Retained bytes cap of each thread-local pool (beyond it, recycled
/// buffers overflow to the shared pool).
const LOCAL_CAP_BYTES: usize = 32 << 20;
/// Retained bytes cap of the shared overflow pool (beyond it, recycled
/// buffers are actually freed).
const SHARED_CAP_BYTES: usize = 64 << 20;
/// A lease may be served by a pooled buffer up to this factor larger than
/// requested; anything bigger stays pooled for a closer fit.
const FIT_FACTOR: usize = 2;

/// Free lists bucketed by exact buffer capacity.
///
/// `BTreeMap` (rather than a hash map) so a missed exact-capacity lookup
/// can fall forward to the nearest larger bucket within [`FIT_FACTOR`] —
/// that tolerance is what keeps hit rates high when activation batch sizes
/// vary client to client.
#[derive(Default)]
struct Pool {
    buckets: BTreeMap<usize, Vec<Vec<f32>>>,
    held_bytes: usize,
}

impl Pool {
    /// Takes a buffer with `capacity >= len` (closest fit first), or `None`.
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        let cap = *self
            .buckets
            .range(len..=len.saturating_mul(FIT_FACTOR))
            .next()?
            .0;
        let bucket = self.buckets.get_mut(&cap)?;
        let buf = bucket.pop()?;
        if bucket.is_empty() {
            self.buckets.remove(&cap);
        }
        self.held_bytes -= cap * 4;
        Some(buf)
    }

    /// Stores a cleared buffer, keyed by its capacity. Returns `false`
    /// (buffer handed back) when the pool is at its byte cap.
    fn put(&mut self, buf: Vec<f32>, cap_bytes: usize) -> Result<(), Vec<f32>> {
        let bytes = buf.capacity() * 4;
        if bytes == 0 || self.held_bytes + bytes > cap_bytes {
            return Err(buf);
        }
        self.held_bytes += bytes;
        self.buckets.entry(buf.capacity()).or_default().push(buf);
        Ok(())
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.held_bytes = 0;
    }
}

/// The process-wide shared overflow pool.
static SHARED: Mutex<Pool> = Mutex::new(Pool {
    buckets: BTreeMap::new(),
    held_bytes: 0,
});

/// A thread's private pool. On thread exit the retained buffers drain into
/// [`SHARED`] instead of being freed, which is what lets one-shot scoped
/// kernel worker threads hand their scratch to the next kernel invocation.
struct LocalPool(Pool);

impl Drop for LocalPool {
    fn drop(&mut self) {
        let mut shared = SHARED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (_, bucket) in std::mem::take(&mut self.0.buckets) {
            for buf in bucket {
                let _ = shared.put(buf, SHARED_CAP_BYTES);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalPool> = RefCell::new(LocalPool(Pool::default()));
}

// ---------------------------------------------------------------------------
// Allocation counters (feature = "alloc-count")
// ---------------------------------------------------------------------------

/// A snapshot of the arena's allocation counters.
///
/// Only meaningful with the `alloc-count` feature; without it every field
/// reads zero. `fresh_allocs` is the number the whole tentpole is
/// accountable for: leases the pool could not serve, i.e. real system
/// allocations of tensor storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Leases that missed the pool and allocated fresh storage.
    pub fresh_allocs: u64,
    /// Leases served by recycled storage.
    pub pool_hits: u64,
    /// Buffers returned to (and retained by) the pool.
    pub recycled: u64,
    /// Buffers the pool refused (byte cap reached) and actually freed.
    pub released: u64,
}

#[cfg(feature = "alloc-count")]
mod counters {
    use super::ArenaStats;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    static G_FRESH: AtomicU64 = AtomicU64::new(0);
    static G_HITS: AtomicU64 = AtomicU64::new(0);
    static G_RECYCLED: AtomicU64 = AtomicU64::new(0);
    static G_RELEASED: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static T_FRESH: Cell<u64> = const { Cell::new(0) };
        static T_HITS: Cell<u64> = const { Cell::new(0) };
        static T_RECYCLED: Cell<u64> = const { Cell::new(0) };
        static T_RELEASED: Cell<u64> = const { Cell::new(0) };
    }

    fn bump(global: &AtomicU64, local: &'static std::thread::LocalKey<Cell<u64>>) {
        global.fetch_add(1, Ordering::Relaxed);
        let _ = local.try_with(|c| c.set(c.get() + 1));
    }

    pub(super) fn fresh() {
        bump(&G_FRESH, &T_FRESH);
    }
    pub(super) fn hit() {
        bump(&G_HITS, &T_HITS);
    }
    pub(super) fn recycled() {
        bump(&G_RECYCLED, &T_RECYCLED);
    }
    pub(super) fn released() {
        bump(&G_RELEASED, &T_RELEASED);
    }

    pub(super) fn global_stats() -> ArenaStats {
        ArenaStats {
            fresh_allocs: G_FRESH.load(Ordering::Relaxed),
            pool_hits: G_HITS.load(Ordering::Relaxed),
            recycled: G_RECYCLED.load(Ordering::Relaxed),
            released: G_RELEASED.load(Ordering::Relaxed),
        }
    }

    pub(super) fn thread_stats() -> ArenaStats {
        ArenaStats {
            fresh_allocs: T_FRESH.with(Cell::get),
            pool_hits: T_HITS.with(Cell::get),
            recycled: T_RECYCLED.with(Cell::get),
            released: T_RELEASED.with(Cell::get),
        }
    }

    pub(super) fn reset_thread_stats() {
        T_FRESH.with(|c| c.set(0));
        T_HITS.with(|c| c.set(0));
        T_RECYCLED.with(|c| c.set(0));
        T_RELEASED.with(|c| c.set(0));
    }
}

#[cfg(not(feature = "alloc-count"))]
mod counters {
    use super::ArenaStats;

    #[inline(always)]
    pub(super) fn fresh() {}
    #[inline(always)]
    pub(super) fn hit() {}
    #[inline(always)]
    pub(super) fn recycled() {}
    #[inline(always)]
    pub(super) fn released() {}

    pub(super) fn global_stats() -> ArenaStats {
        ArenaStats::default()
    }
    pub(super) fn thread_stats() -> ArenaStats {
        ArenaStats::default()
    }
    pub(super) fn reset_thread_stats() {}
}

// ---------------------------------------------------------------------------
// The public handle
// ---------------------------------------------------------------------------

/// Handle to the process-wide tensor buffer pool.
///
/// The arena is a process-level resource (every [`Tensor`](crate::Tensor)
/// returns its storage here when dropped), so the handle is zero-sized and
/// obtained via [`TensorArena::global`]. Taking `&TensorArena` in an API
/// documents that a function allocates through the pool.
///
/// ```
/// use mhfl_tensor::{Tensor, TensorArena};
///
/// let arena = TensorArena::global();
/// let t = Tensor::zeroed_in(arena, &[4, 4]);
/// assert_eq!(t.as_slice(), &[0.0; 16]);
/// drop(t); // storage returns to the pool, not the allocator
/// let mut buf = arena.lease(16);
/// buf.extend((0..16).map(|x| x as f32));
/// let u = Tensor::from_pool(buf, &[4, 4])?;
/// assert_eq!(u.len(), 16);
/// # Ok::<(), mhfl_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct TensorArena {
    _priv: (),
}

static GLOBAL: TensorArena = TensorArena { _priv: () };

impl TensorArena {
    /// `true` when the crate was compiled with the `alloc-count` feature,
    /// i.e. when [`stats`](TensorArena::stats) reports real numbers instead
    /// of zeros. Lets audit tooling fail loudly when run against a binary
    /// that cannot observe allocations.
    pub const fn counting_enabled() -> bool {
        cfg!(feature = "alloc-count")
    }

    /// The process-wide arena every tensor recycles into.
    pub fn global() -> &'static TensorArena {
        &GLOBAL
    }

    /// Leases an **empty** buffer with `capacity >= len`, for callers that
    /// fill by `extend`/`push`. Never zero-fills; the buffer's length is 0.
    pub fn lease(&self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        if let Some(buf) = take_pooled(len) {
            counters::hit();
            return buf;
        }
        counters::fresh();
        Vec::with_capacity(len)
    }

    /// Leases a buffer of exactly `len` zeros. Recycled storage is
    /// re-zeroed before it is handed out, so pooled and fresh buffers are
    /// indistinguishable to the caller — stale contents can never leak.
    pub fn lease_zeroed(&self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        if let Some(mut buf) = take_pooled(len) {
            counters::hit();
            buf.resize(len, 0.0);
            return buf;
        }
        counters::fresh();
        vec![0.0; len]
    }

    /// Returns a buffer to the pool (thread-local first, shared overflow
    /// second, freed once both byte caps are reached). The buffer is
    /// cleared; its capacity is what the pool retains.
    pub fn recycle(&self, mut buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let buf = match LOCAL.try_with(|local| local.borrow_mut().0.put(buf, LOCAL_CAP_BYTES)) {
            Ok(Ok(())) => {
                counters::recycled();
                return;
            }
            Ok(Err(buf)) => buf,
            // Thread-local already torn down (thread exit): go shared.
            Err(_) => return, // buf moved into the closure; nothing to do
        };
        let mut shared = SHARED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match shared.put(buf, SHARED_CAP_BYTES) {
            Ok(()) => counters::recycled(),
            Err(_) => counters::released(),
        }
    }

    /// Drains the calling thread's local pool into the shared overflow
    /// pool, making its buffers visible to other threads.
    pub fn flush_thread_pool(&self) {
        let drained = LOCAL
            .try_with(|local| std::mem::take(&mut local.borrow_mut().0.buckets))
            .unwrap_or_default();
        let _ = LOCAL.try_with(|local| local.borrow_mut().0.held_bytes = 0);
        let mut shared = SHARED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (_, bucket) in drained {
            for buf in bucket {
                let _ = shared.put(buf, SHARED_CAP_BYTES);
            }
        }
    }

    /// Frees everything the calling thread's pool and the shared pool
    /// retain (tests and memory-pressure escapes; steady-state code never
    /// needs this).
    pub fn clear(&self) {
        let _ = LOCAL.try_with(|local| local.borrow_mut().0.clear());
        SHARED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// Process-wide allocation counters (all zero without the
    /// `alloc-count` feature).
    pub fn stats(&self) -> ArenaStats {
        counters::global_stats()
    }

    /// The calling thread's allocation counters (all zero without the
    /// `alloc-count` feature). Immune to concurrent test threads, which is
    /// what the zero-allocation kernel regressions assert against.
    pub fn thread_stats(&self) -> ArenaStats {
        counters::thread_stats()
    }

    /// Resets the calling thread's counters (the process-wide counters are
    /// monotone; diff two [`TensorArena::stats`] snapshots instead).
    pub fn reset_thread_stats(&self) {
        counters::reset_thread_stats();
    }
}

/// The lease fast path: thread-local pool, then the shared overflow pool.
fn take_pooled(len: usize) -> Option<Vec<f32>> {
    if let Ok(Some(buf)) = LOCAL.try_with(|local| local.borrow_mut().0.take(len)) {
        return Some(buf);
    }
    SHARED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take(len)
}

/// Recycle entry point for the tensor drop path (see `Storage`).
pub(crate) fn recycle_storage(buf: Vec<f32>) {
    GLOBAL.recycle(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_zeroed_rezeroes_recycled_storage() {
        let arena = TensorArena::global();
        let mut buf = arena.lease_zeroed(1024);
        for v in buf.iter_mut() {
            *v = 7.25;
        }
        arena.recycle(buf);
        // Whatever buffer serves this lease (the poisoned one included),
        // its contents must be exactly zero.
        let buf = arena.lease_zeroed(1024);
        assert_eq!(buf.len(), 1024);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lease_is_empty_with_capacity() {
        let arena = TensorArena::global();
        let mut buf = arena.lease_zeroed(513);
        buf.iter_mut().for_each(|v| *v = 1.0);
        arena.recycle(buf);
        let leased = arena.lease(513);
        assert!(leased.is_empty(), "capacity leases must start empty");
        assert!(leased.capacity() >= 513);
    }

    #[test]
    fn close_fit_serves_but_distant_capacity_does_not() {
        let arena = TensorArena::global();
        arena.flush_thread_pool();
        let probe = 77_771; // a capacity no other test uses
        arena.recycle(Vec::with_capacity(probe));
        // Within FIT_FACTOR: served from the pool.
        let hit = arena.lease(probe / 2 + 1);
        assert!(hit.capacity() > probe / 2);
        arena.recycle(hit);
        // Far below the pooled capacity: a fresh allocation, so tiny
        // tensors can never pin huge buffers.
        let fresh = arena.lease(8);
        assert!(fresh.capacity() < probe);
    }

    #[test]
    fn zero_len_leases_bypass_the_pool() {
        let arena = TensorArena::global();
        assert_eq!(arena.lease(0).capacity(), 0);
        assert!(arena.lease_zeroed(0).is_empty());
        arena.recycle(Vec::new()); // must not poison anything
    }

    #[test]
    fn flush_makes_local_buffers_visible_to_other_threads() {
        let arena = TensorArena::global();
        let probe = 99_991;
        arena.recycle(Vec::with_capacity(probe));
        arena.flush_thread_pool();
        let served = std::thread::spawn(move || {
            let buf = TensorArena::global().lease(probe);
            buf.capacity() >= probe
        })
        .join()
        .unwrap();
        assert!(served, "a flushed buffer must serve another thread");
    }

    #[cfg(feature = "alloc-count")]
    #[test]
    fn thread_stats_count_misses_and_hits() {
        let arena = TensorArena::global();
        arena.reset_thread_stats();
        let probe = 88_883;
        let buf = arena.lease_zeroed(probe);
        assert_eq!(arena.thread_stats().fresh_allocs, 1);
        arena.recycle(buf);
        assert_eq!(arena.thread_stats().recycled, 1);
        let _buf = arena.lease_zeroed(probe);
        assert_eq!(arena.thread_stats().pool_hits, 1);
        assert_eq!(arena.thread_stats().fresh_allocs, 1);
    }
}
