//! Shape and stride helpers.

use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// A tensor shape: the extent of every dimension in row-major order.
///
/// `Shape` is a thin wrapper over `Vec<usize>` that adds stride and index
/// arithmetic used throughout the crate.
///
/// ```
/// use mhfl_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Total number of elements described by the shape.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape describes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides for the shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    /// Returns an error if the index rank differs from the shape rank or any
    /// coordinate is out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
                op: "flat_index",
            });
        }
        let strides = self.strides();
        let mut offset = 0;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            offset += i * strides[axis];
        }
        Ok(offset)
    }

    /// Returns `true` if two shapes are compatible for elementwise ops with
    /// trailing broadcasting (identical, or the right shape matches a suffix
    /// of the left with all leading dimensions broadcast).
    pub fn broadcastable_from(&self, rhs: &Shape) -> bool {
        if self.0 == rhs.0 {
            return true;
        }
        if rhs.rank() > self.rank() {
            return false;
        }
        let offset = self.rank() - rhs.rank();
        self.0[offset..]
            .iter()
            .zip(rhs.0.iter())
            .all(|(&l, &r)| l == r || r == 1)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[5]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn flat_index_valid() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.flat_index(&[0, 0]).unwrap(), 0);
        assert_eq!(s.flat_index(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn flat_index_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
    }

    #[test]
    fn broadcast_compat() {
        let a = Shape::new(&[4, 3]);
        let b = Shape::new(&[3]);
        assert!(a.broadcastable_from(&b));
        assert!(a.broadcastable_from(&a));
        let c = Shape::new(&[4]);
        assert!(!a.broadcastable_from(&c));
        assert!(!b.broadcastable_from(&a));
    }

    #[test]
    fn dim_errors() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(s.dim(2).is_err());
    }
}
