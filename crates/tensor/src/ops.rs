//! Arithmetic, linear algebra and reduction operations on [`Tensor`].

use crate::arena::TensorArena;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = TensorArena::global().lease(self.len());
        data.extend(self.as_slice().iter().map(|&x| f(x)));
        Tensor::from_pool(data, self.dims()).expect("map preserves shape")
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.as_mut_slice().iter_mut().for_each(|x| *x = f(*x));
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.dims() != rhs.dims() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "zip_with",
            });
        }
        let mut data = TensorArena::global().lease(self.len());
        data.extend(
            self.as_slice()
                .iter()
                .zip(rhs.as_slice())
                .map(|(&a, &b)| f(a, b)),
        );
        Tensor::from_pool(data, self.dims())
    }

    /// Elementwise addition.
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (the AXPY kernel used by SGD and by
    /// server-side aggregation).
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.dims() != rhs.dims() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, value: f32) -> Tensor {
        self.map(|x| x * value)
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_inplace(&mut self, value: f32) {
        self.map_inplace(|x| x * value);
    }

    /// Adds `bias` (a rank-1 tensor of length equal to the trailing
    /// dimension) to every row of a rank-2 tensor.
    ///
    /// # Errors
    /// Returns an error for rank/shape mismatches.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || bias.rank() != 1 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: bias.dims().to_vec(),
                op: "add_row_broadcast",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: bias.dims().to_vec(),
                op: "add_row_broadcast",
            });
        }
        let mut out = self.clone();
        let b = bias.as_slice();
        for r in 0..rows {
            let row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
            for (value, add) in row.iter_mut().zip(b) {
                *value += add;
            }
        }
        Ok(out)
    }

    /// Validates a rank-2 × rank-2 product and returns `(m, inner_a,
    /// inner_b, n)` where `inner_a`/`inner_b` are the contraction extents
    /// the caller must match up.
    fn matmul_dims(&self, rhs: &Tensor, op: &'static str) -> Result<[usize; 4]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op,
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.rank(),
                op,
            });
        }
        Ok([self.dims()[0], self.dims()[1], rhs.dims()[0], rhs.dims()[1]])
    }

    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs the blocked kernel of [`crate::kernels`]; bitwise identical to
    /// [`Tensor::matmul_naive`] for finite inputs and independent of the
    /// configured kernel worker count.
    ///
    /// # Errors
    /// Returns an error if either operand is not rank-2 or the inner
    /// dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let [m, k, k2, n] = self.matmul_dims(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = TensorArena::global().lease_zeroed(m * n);
        crate::kernels::matmul(self.as_slice(), rhs.as_slice(), m, k, n, &mut out);
        Tensor::from_pool(out, &[m, n])
    }

    /// The retained naive reference kernel: `ikj` loop order, one pass, no
    /// blocking, no threading. Kept (and property-tested) as the ground
    /// truth the blocked [`Tensor::matmul`] and the transpose-aware
    /// variants must agree with bit-for-bit.
    ///
    /// # Errors
    /// Returns an error if either operand is not rank-2 or the inner
    /// dimensions disagree.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Result<Tensor> {
        let [m, k, k2, n] = self.matmul_dims(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul",
            });
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = TensorArena::global().lease_zeroed(m * n);
        // ikj loop order keeps the inner loop contiguous over both `b` and `out`.
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        Tensor::from_pool(out, &[m, n])
    }

    /// Transpose-aware product `self × rhsᵀ`: `[m, k] x [n, k] -> [m, n]`,
    /// without materialising the transpose. Bitwise identical to
    /// `self.matmul(&rhs.transpose()?)` for finite inputs — this is the
    /// kernel behind `y = x Wᵀ` in `Linear::forward`.
    ///
    /// # Errors
    /// Returns an error if either operand is not rank-2 or the trailing
    /// dimensions disagree.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let [m, k, n, k2] = self.matmul_dims(rhs, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul_nt",
            });
        }
        let mut out = TensorArena::global().lease_zeroed(m * n);
        crate::kernels::matmul_nt(self.as_slice(), rhs.as_slice(), m, k, n, &mut out);
        Tensor::from_pool(out, &[m, n])
    }

    /// Transpose-aware product `selfᵀ × rhs`: `[k, m] x [k, n] -> [m, n]`,
    /// without materialising the transpose. Bitwise identical to
    /// `self.transpose()?.matmul(rhs)` for finite inputs — this is the
    /// kernel behind `dW = dYᵀ X` in `Linear::backward`.
    ///
    /// # Errors
    /// Returns an error if either operand is not rank-2 or the leading
    /// dimensions disagree.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let [k, m, k2, n] = self.matmul_dims(rhs, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul_tn",
            });
        }
        let mut out = TensorArena::global().lease_zeroed(m * n);
        crate::kernels::matmul_tn(self.as_slice(), rhs.as_slice(), m, k, n, &mut out);
        Tensor::from_pool(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let src = self.as_slice();
        let mut out = TensorArena::global().lease_zeroed(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        Tensor::from_pool(out, &[cols, rows])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    /// Returns an error for empty tensors.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
            .ok_or(TensorError::Empty("max"))
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Per-row sums of a rank-2 tensor.
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank-2.
    pub fn row_sums(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "row_sums",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut data = TensorArena::global().lease(rows);
        data.extend((0..rows).map(|r| {
            self.as_slice()[r * cols..(r + 1) * cols]
                .iter()
                .sum::<f32>()
        }));
        Tensor::from_pool(data, &[rows])
    }

    /// Per-column sums of a rank-2 tensor. Each column is accumulated in
    /// ascending row order, so the result is bitwise identical to
    /// `self.transpose()?.row_sums()?` without materialising the transpose
    /// (the kernel behind `db = colsum(dY)` in `Linear::backward`).
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank-2.
    pub fn col_sums(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "col_sums",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut data = TensorArena::global().lease_zeroed(cols);
        for r in 0..rows {
            let row = &self.as_slice()[r * cols..(r + 1) * cols];
            for (acc, value) in data.iter_mut().zip(row) {
                *acc += value;
            }
        }
        Tensor::from_pool(data, &[cols])
    }

    /// Per-column means of a rank-2 tensor.
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank-2 or has zero rows.
    pub fn col_means(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "col_means",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if rows == 0 {
            return Err(TensorError::Empty("col_means"));
        }
        let mut data = TensorArena::global().lease_zeroed(cols);
        for r in 0..rows {
            let row = &self.as_slice()[r * cols..(r + 1) * cols];
            for (acc, value) in data.iter_mut().zip(row) {
                *acc += value;
            }
        }
        data.iter_mut().for_each(|x| *x /= rows as f32);
        Tensor::from_pool(data, &[cols])
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilised).
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank-2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "softmax_rows",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let arena = TensorArena::global();
        let mut out = arena.lease_zeroed(rows * cols);
        // One leased scratch row reused across all rows instead of a fresh
        // `exps` vector per row.
        let mut exps = arena.lease(cols);
        for r in 0..rows {
            let row = &self.as_slice()[r * cols..(r + 1) * cols];
            let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            exps.clear();
            exps.extend(row.iter().map(|&x| (x - maxv).exp()));
            let denom: f32 = exps.iter().sum::<f32>().max(f32::EPSILON);
            for c in 0..cols {
                out[r * cols + c] = exps[c] / denom;
            }
        }
        arena.recycle(exps);
        Tensor::from_pool(out, &[rows, cols])
    }

    /// Row-wise argmax of a rank-2 tensor (predicted class per sample).
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank-2 or has zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "argmax_rows",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if cols == 0 {
            return Err(TensorError::Empty("argmax_rows"));
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.as_slice()[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (c, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = c;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Clips every element into `[-limit, limit]`.
    pub fn clamp_abs(&self, limit: f32) -> Tensor {
        self.map(|x| x.clamp(-limit, limit))
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.as_slice().iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn elementwise_ops() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        let c = t2(&[1.0, 2.0], 1, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        acc.axpy(0.5, &g).unwrap();
        acc.axpy(0.5, &g).unwrap();
        assert_eq!(acc.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t2(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_shape_errors() {
        let a = t2(&[1.0, 2.0], 1, 2);
        let b = t2(&[1.0, 2.0, 3.0], 3, 1);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn blocked_and_transpose_aware_kernels_match_naive_bitwise() {
        let mut rng = crate::SeededRng::new(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 2),
            (5, 7, 9),
            (1, 16, 130), // wide output: exercises the packed-panel path
            (3, 0, 4),    // k = 0: all-zero output
            (17, 70, 33), // non-multiple-of-tile dims
        ] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let naive = a.matmul_naive(&b).unwrap();
            let blocked = a.matmul(&b).unwrap();
            assert_eq!(
                naive
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                blocked
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "blocked matmul diverged at {m}x{k}x{n}"
            );
            let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
            let nt = a.matmul_nt(&bt).unwrap();
            let nt_ref = a.matmul_naive(&bt.transpose().unwrap()).unwrap();
            assert_eq!(nt, nt_ref, "matmul_nt diverged at {m}x{k}x{n}");
            let at = Tensor::randn(&[k, m], 1.0, &mut rng);
            let tn = at.matmul_tn(&b).unwrap();
            let tn_ref = at.transpose().unwrap().matmul_naive(&b).unwrap();
            assert_eq!(tn, tn_ref, "matmul_tn diverged at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_is_worker_count_invariant() {
        let _guard = crate::kernels::worker_test_lock();
        let mut rng = crate::SeededRng::new(11);
        let a = Tensor::randn(&[64, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[48, 160], 1.0, &mut rng);
        let sequential = a.matmul(&b).unwrap();
        crate::set_kernel_workers(4);
        let threaded = a.matmul(&b).unwrap();
        crate::set_kernel_workers(1);
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn transpose_aware_shape_errors() {
        let a = t2(&[1.0, 2.0], 1, 2);
        // matmul_nt needs matching trailing dims.
        assert!(a.matmul_nt(&t2(&[1.0, 2.0, 3.0], 1, 3)).is_err());
        // matmul_tn needs matching leading dims.
        assert!(a.matmul_tn(&t2(&[1.0, 2.0, 3.0], 3, 1)).is_err());
        let v = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        assert!(v.matmul_nt(&a).is_err());
        assert!(v.matmul_tn(&a).is_err());
        assert!(a.matmul_naive(&t2(&[1.0, 2.0, 3.0], 3, 1)).is_err());
    }

    #[test]
    fn col_sums_match_transposed_row_sums() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(a.col_sums().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        let via_transpose = a.transpose().unwrap().row_sums().unwrap();
        assert_eq!(a.col_sums().unwrap(), via_transpose);
        let v = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        assert!(v.col_sums().is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max().unwrap(), 4.0);
        assert!((a.norm() - (30.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(a.row_sums().unwrap().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.col_means().unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = t2(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], 2, 3);
        let s = a.softmax_rows().unwrap();
        for r in 0..2 {
            let row_sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Stable on large inputs.
        assert!(!s.has_non_finite());
        // Monotone: larger logits get larger probability.
        assert!(s.at(&[0, 2]).unwrap() > s.at(&[0, 0]).unwrap());
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = t2(&[0.1, 0.9, 0.0, 0.7, 0.2, 0.1], 2, 3);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn broadcast_bias_add() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let c = a.add_row_broadcast(&b).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn clamp_and_finite_checks() {
        let a = Tensor::from_vec(vec![-5.0, 0.5, 7.0], &[3]).unwrap();
        assert_eq!(a.clamp_abs(1.0).as_slice(), &[-1.0, 0.5, 1.0]);
        assert!(!a.has_non_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(bad.has_non_finite());
    }
}
