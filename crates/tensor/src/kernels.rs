//! Blocked matmul kernels and the row-range worker pool.
//!
//! The three kernels here ([`matmul`], [`matmul_nt`], [`matmul_tn`]) are the
//! hot path of every proxy-model forward/backward step. They are written
//! under one hard constraint: **bitwise identity** with the retained naive
//! reference kernel ([`Tensor::matmul_naive`](crate::Tensor::matmul_naive)).
//! For every output element the partial products are accumulated in strictly
//! ascending `k` order with plain `f32` multiply-then-add (no FMA, no
//! multiple accumulators per element), so blocking, panel packing and
//! row-range threading change *where* the arithmetic happens but never its
//! result — the golden-trace regression harness depends on this.
//!
//! Speed comes from three sources instead:
//!
//! * **cache blocking** — `k`/`j` panels sized to L1 so a panel of the
//!   right-hand side is reused across many output rows before eviction,
//!   with explicit packing once the row stride exceeds the panel width;
//! * **transpose-aware variants** — `matmul_nt` (`A·Bᵀ`) and `matmul_tn`
//!   (`Aᵀ·B`) read the operand in its natural layout, so `Linear` and
//!   attention layers no longer materialise explicit transposes;
//! * **row-range threading** — output rows are split into contiguous
//!   chunks across a scoped worker pool (one thread per configured kernel
//!   worker). Each element is still produced by exactly one thread in the
//!   same order, so results are independent of the worker count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows of a right-hand-side `k`-panel (`KC × NC × 4` bytes ≈ one 32 KiB L1
/// data cache).
const KC: usize = 64;
/// Columns of a right-hand-side panel.
const NC: usize = 128;
/// Total multiply-adds below which row-range threading never pays for the
/// scoped-thread spawn.
const PAR_FLOP_THRESHOLD: usize = 1 << 17;

/// Number of worker threads the kernels may fan output rows across.
/// Configured process-wide; `1` (the default) keeps every kernel on the
/// calling thread.
static KERNEL_WORKERS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Set on threads that are already part of an outer worker pool (e.g.
    /// the federated client fan-out): kernels on such threads stay
    /// sequential instead of oversubscribing the machine.
    static IN_WORKER_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Sets the number of worker threads matmul kernels may split output rows
/// across. `0` resolves to the number of available cores. Results are
/// bitwise independent of this setting; only wall-clock time changes.
pub fn set_kernel_workers(workers: usize) {
    let resolved = if workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        workers
    };
    KERNEL_WORKERS.store(resolved.max(1), Ordering::Relaxed);
}

/// The currently configured kernel worker count.
pub fn kernel_workers() -> usize {
    KERNEL_WORKERS.load(Ordering::Relaxed).max(1)
}

/// Marks the calling thread as part of an outer worker pool: matmul kernels
/// invoked from it run sequentially (the cores are already busy running
/// sibling workers). Called by the federated client fan-out for each of its
/// worker threads.
pub fn mark_worker_thread() {
    IN_WORKER_POOL.with(|flag| flag.set(true));
}

/// Worker count effective for kernels launched from the calling thread.
fn effective_workers() -> usize {
    if IN_WORKER_POOL.with(Cell::get) {
        1
    } else {
        kernel_workers()
    }
}

/// Runs `kernel(first_row, rows_in_chunk, out_chunk)` over contiguous chunks
/// of the `rows × cols` output, on the calling thread when the work is small
/// and across a scoped worker pool otherwise. Chunks never share an output
/// element, so the split is observation-free.
fn run_row_chunks(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    flops_per_row: usize,
    kernel: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    let workers = effective_workers().min(rows.max(1));
    if workers <= 1 || cols == 0 || rows.saturating_mul(flops_per_row) < PAR_FLOP_THRESHOLD {
        kernel(0, rows, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (index, chunk) in out.chunks_mut(chunk_rows * cols).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || kernel(index * chunk_rows, chunk.len() / cols, chunk));
        }
    });
}

/// Blocked `[m, k] × [k, n] -> [m, n]`: `out` must be zeroed, row-major.
pub(crate) fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    run_row_chunks(out, m, n, k.saturating_mul(n), |row0, nrows, chunk| {
        matmul_rows(a, b, k, n, row0, nrows, chunk);
    });
}

/// The [`matmul`] kernel for output rows `row0 .. row0 + nrows`.
fn matmul_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    nrows: usize,
    out: &mut [f32],
) {
    if n <= NC {
        // The full row of B fits the panel budget: block over k only. For
        // each output element the k-blocks arrive in ascending order, and
        // within a block kk ascends — the naive accumulation order.
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            for i in 0..nrows {
                let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
                let orow = &mut out[i * n..(i + 1) * n];
                for kk in kb..kend {
                    let aik = arow[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..kk * n + n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += aik * bv;
                    }
                }
            }
        }
        return;
    }
    // Wide B: pack an L1-sized KC×NC panel so the inner loop streams a
    // contiguous buffer instead of striding across full B rows. The panel
    // is leased from the arena — worker threads drain their pools into the
    // shared pool on exit, so even scoped one-shot workers reuse the panel
    // of a previous kernel invocation instead of allocating.
    let arena = crate::arena::TensorArena::global();
    let mut panel = arena.lease_zeroed(KC * NC);
    for jb in (0..n).step_by(NC) {
        let jend = (jb + NC).min(n);
        let nc = jend - jb;
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            let kc = kend - kb;
            for p in 0..kc {
                let src = (kb + p) * n + jb;
                panel[p * nc..(p + 1) * nc].copy_from_slice(&b[src..src + nc]);
            }
            for i in 0..nrows {
                let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
                let orow = &mut out[i * n + jb..i * n + jend];
                for p in 0..kc {
                    let aik = arow[kb + p];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &panel[p * nc..(p + 1) * nc];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
    arena.recycle(panel);
}

/// Transpose-aware `[m, k] × [n, k]ᵀ -> [m, n]` (`A·Bᵀ` without
/// materialising `Bᵀ`): every output element is a dot product of two
/// contiguous rows. `out` must be zeroed.
pub(crate) fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    run_row_chunks(out, m, n, k.saturating_mul(n), |row0, nrows, chunk| {
        matmul_nt_rows(a, b, k, n, row0, nrows, chunk);
    });
}

fn matmul_nt_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    nrows: usize,
    out: &mut [f32],
) {
    // Pack L1-sized panels of Bᵀ on the fly: `panel[p][j] = b[jb + j][kb + p]`
    // relocates the values (a tile-local transpose) without touching the
    // arithmetic, which then runs the same contiguous, vectorisable inner-j
    // loop as the plain blocked kernel — per (i, j) the k-blocks and the
    // within-block p both ascend, i.e. the naive accumulation order. Leased
    // from the arena, like the matmul_rows panel.
    let arena = crate::arena::TensorArena::global();
    let mut panel = arena.lease_zeroed(KC * NC);
    for jb in (0..n).step_by(NC) {
        let jend = (jb + NC).min(n);
        let nc = jend - jb;
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            let kc = kend - kb;
            for (j, col) in (jb..jend).enumerate() {
                let brow = &b[col * k + kb..col * k + kend];
                for (p, &bv) in brow.iter().enumerate() {
                    panel[p * nc + j] = bv;
                }
            }
            for i in 0..nrows {
                let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
                let orow = &mut out[i * n + jb..i * n + jend];
                for p in 0..kc {
                    let aik = arow[kb + p];
                    if aik == 0.0 {
                        continue;
                    }
                    let prow = &panel[p * nc..(p + 1) * nc];
                    for (o, &bv) in orow.iter_mut().zip(prow) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
    arena.recycle(panel);
}

/// Transpose-aware `[k, m]ᵀ × [k, n] -> [m, n]` (`Aᵀ·B` without
/// materialising `Aᵀ`): the reduction runs over the shared leading (sample)
/// axis, reading both operands row-contiguously. `out` must be zeroed.
pub(crate) fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    run_row_chunks(out, m, n, k.saturating_mul(n), |row0, nrows, chunk| {
        matmul_tn_rows(a, b, m, k, n, row0, nrows, chunk);
    });
}

#[allow(clippy::too_many_arguments)] // a flat kernel signature, on purpose
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    row0: usize,
    nrows: usize,
    out: &mut [f32],
) {
    // Block over output rows so the live block stays cache-resident while
    // the s (sample) loop streams A and B once per block. Every output
    // element belongs to exactly one block, so its s order is untouched.
    let ob = (4096 / n.max(1)).max(4);
    for obs in (0..nrows).step_by(ob) {
        let oend = (obs + ob).min(nrows);
        for s in 0..k {
            let arow = &a[s * m..s * m + m];
            let brow = &b[s * n..s * n + n];
            for o in obs..oend {
                let av = arow[row0 + o];
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[o * n..(o + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
    }
}

/// Serialises tests that mutate the process-global worker count, so exact
/// assertions on [`kernel_workers`] cannot race sibling tests running on
/// other threads of the test harness.
#[cfg(test)]
pub(crate) fn worker_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_config_round_trips_and_clamps() {
        let _guard = worker_test_lock();
        set_kernel_workers(3);
        assert_eq!(kernel_workers(), 3);
        set_kernel_workers(0);
        assert!(kernel_workers() >= 1);
        set_kernel_workers(1);
        assert_eq!(kernel_workers(), 1);
    }

    /// After one warm-up call the pool holds the output buffer and the
    /// packing panel, so repeated identical matmuls must allocate nothing.
    /// This is the regression guard for the panels-allocated-per-call bug.
    #[cfg(feature = "alloc-count")]
    #[test]
    fn warm_matmul_allocates_nothing() {
        let _guard = worker_test_lock();
        set_kernel_workers(1);
        let arena = crate::arena::TensorArena::global();
        let mut rng = crate::SeededRng::new(3);
        let a = crate::Tensor::randn(&[32, 64], 1.0, &mut rng);
        // n = 256 > NC forces the packed-panel path.
        let b = crate::Tensor::randn(&[64, 256], 1.0, &mut rng);
        // Two warm-up calls: `reference` keeps its buffer, so the pool needs
        // a second pass to hold both an output buffer and a packing panel.
        let reference = a.matmul(&b).unwrap();
        drop(a.matmul(&b).unwrap());
        arena.reset_thread_stats();
        for _ in 0..8 {
            let out = a.matmul(&b).unwrap();
            assert_eq!(out, reference);
        }
        let stats = arena.thread_stats();
        assert_eq!(
            stats.fresh_allocs, 0,
            "warm matmul must be allocation-free: {stats:?}"
        );
        assert!(stats.pool_hits > 0, "warm matmul must lease from the pool");
    }

    #[test]
    fn row_chunking_covers_every_row_exactly_once() {
        let _guard = worker_test_lock();
        set_kernel_workers(4);
        let (m, n) = (37, 8);
        let mut out = vec![0.0f32; m * n];
        // Force the threaded path with a huge per-row flop estimate.
        run_row_chunks(&mut out, m, n, usize::MAX / m, |row0, nrows, chunk| {
            for r in 0..nrows {
                for c in 0..n {
                    chunk[r * n + c] += (row0 + r) as f32;
                }
            }
        });
        for r in 0..m {
            for c in 0..n {
                assert_eq!(out[r * n + c], r as f32, "row {r} col {c}");
            }
        }
        set_kernel_workers(1);
    }
}
