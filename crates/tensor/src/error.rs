//! Error type for tensor operations.

use std::fmt;

/// Errors produced by tensor construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The supplied data length does not match the product of the shape.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors participating in a binary operation have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An element or slice index was out of bounds.
    IndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// The length of the dimension being indexed.
        len: usize,
    },
    /// The operation requires a specific rank (e.g. matmul requires rank 2).
    RankMismatch {
        /// The required rank.
        expected: usize,
        /// The actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A reshape target has a different number of elements.
    ReshapeMismatch {
        /// Source element count.
        from: usize,
        /// Target element count.
        to: usize,
    },
    /// A tensor was empty where a non-empty tensor was required.
    Empty(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "incompatible shapes {left:?} and {right:?} for {op}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of length {len}"
                )
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => {
                write!(f, "{op} requires rank {expected}, got rank {actual}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape tensor of {from} elements into {to} elements"
                )
            }
            TensorError::Empty(op) => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}
