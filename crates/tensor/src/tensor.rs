//! The core [`Tensor`] type: construction, access, reshaping and slicing.

use serde::{Deserialize, Serialize};

use crate::arena::TensorArena;
use crate::{Result, SeededRng, Shape, TensorError};

/// The owned buffer behind a tensor, with a pool-recycling drop path.
///
/// `Storage` is a thin wrapper over `Vec<f32>` whose `Drop` hands the buffer
/// back to the process-wide [`TensorArena`] instead of freeing it, and whose
/// `Clone` leases the copy's buffer from the same pool. Everything else
/// derefs through to the vector, so the rest of the crate reads and writes
/// storage exactly as it did when the field was a plain `Vec<f32>`.
#[derive(Default)]
struct Storage {
    data: Vec<f32>,
}

impl Storage {
    fn new(data: Vec<f32>) -> Self {
        Storage { data }
    }

    /// Moves the buffer out, leaving an empty vec for the no-op drop.
    fn take(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        crate::arena::recycle_storage(std::mem::take(&mut self.data));
    }
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        let mut buf = TensorArena::global().lease(self.data.len());
        buf.extend_from_slice(&self.data);
        Storage { data: buf }
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.data.fmt(f)
    }
}

impl std::ops::Deref for Storage {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.data
    }
}

impl std::ops::DerefMut for Storage {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.data
    }
}

/// A dense, row-major, `f32` n-dimensional array.
///
/// This is the only numeric container used by the PracMHBench reproduction.
/// All model parameters, activations, gradients and dataset features are
/// `Tensor`s, which lets the sub-model extraction and aggregation machinery
/// treat everything uniformly.
///
/// ```
/// use mhfl_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Storage,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` is not the
    /// product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Storage::new(data),
        })
    }

    /// Creates a tensor from an arena-leased buffer (see
    /// [`TensorArena::lease`]). Functionally identical to
    /// [`Tensor::from_vec`] — every tensor recycles its storage on drop —
    /// but states the pooled provenance at the call site, which is how the
    /// hot paths document that they allocate nothing in steady state.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` is not the
    /// product of `dims`.
    pub fn from_pool(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        Tensor::from_vec(data, dims)
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        let mut data = TensorArena::global().lease(1);
        data.push(value);
        Tensor {
            shape: Shape::scalar(),
            data: Storage::new(data),
        }
    }

    /// Creates a tensor filled with zeros, with storage leased from the
    /// process-wide [`TensorArena`].
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor::zeroed_in(TensorArena::global(), dims)
    }

    /// Creates a zero-filled tensor whose storage is leased from `arena`.
    ///
    /// Recycled buffers are re-zeroed before reuse, so this is
    /// indistinguishable from a fresh allocation — stale pool contents can
    /// never leak into a new tensor.
    pub fn zeroed_in(arena: &TensorArena, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: Storage::new(arena.lease_zeroed(len)),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let mut data = TensorArena::global().lease(len);
        data.resize(len, value);
        Tensor {
            shape,
            data: Storage::new(data),
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor with entries drawn from `N(0, std^2)`.
    pub fn randn(dims: &[usize], std: f32, rng: &mut SeededRng) -> Self {
        if rng.is_zero_init() {
            return Tensor::zeros(dims);
        }
        let shape = Shape::new(dims);
        let mut data = TensorArena::global().lease(shape.len());
        data.extend((0..shape.len()).map(|_| rng.normal(0.0, std)));
        Tensor {
            shape,
            data: Storage::new(data),
        }
    }

    /// Creates a tensor with entries drawn uniformly from `[low, high)`.
    pub fn rand_uniform(dims: &[usize], low: f32, high: f32, rng: &mut SeededRng) -> Self {
        if rng.is_zero_init() {
            return Tensor::zeros(dims);
        }
        let shape = Shape::new(dims);
        let mut data = TensorArena::global().lease(shape.len());
        data.extend((0..shape.len()).map(|_| rng.uniform(low, high)));
        Tensor {
            shape,
            data: Storage::new(data),
        }
    }

    /// Kaiming/He initialisation for a weight of shape `[fan_out, fan_in, ...]`.
    pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut SeededRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(dims, std, rng)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying buffer.
    ///
    /// The buffer leaves the arena's custody: it is the caller's to keep,
    /// and the caller may hand it back via [`TensorArena::recycle`] (or by
    /// rewrapping it with [`Tensor::from_pool`]) when done.
    pub fn into_vec(mut self) -> Vec<f32> {
        self.data.take()
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    /// Returns an error if the index is invalid for this shape.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    /// Returns an error if the index is invalid for this shape.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Errors
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let target = Shape::new(dims);
        if target.len() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: target.len(),
            });
        }
        Ok(Tensor {
            shape: target,
            data: self.data.clone(), // Storage::clone leases from the pool
        })
    }

    /// Extracts the `index`-th sub-tensor along axis 0 (e.g. one row of a
    /// matrix, one sample of a batch).
    ///
    /// # Errors
    /// Returns an error for scalars or out-of-range indices.
    pub fn index_axis0(&self, index: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "index_axis0",
            });
        }
        let outer = self.dims()[0];
        if index >= outer {
            return Err(TensorError::IndexOutOfBounds { index, len: outer });
        }
        let inner: usize = self.dims()[1..].iter().product();
        let start = index * inner;
        let mut data = TensorArena::global().lease(inner);
        data.extend_from_slice(&self.data[start..start + inner]);
        Tensor::from_pool(data, &self.dims()[1..])
    }

    /// Stacks rank-`k` tensors of identical shape into a rank-`k+1` tensor
    /// along a new leading axis.
    ///
    /// # Errors
    /// Returns an error if `parts` is empty or the shapes differ.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::Empty("stack"))?;
        let mut data = TensorArena::global().lease(first.len() * parts.len());
        for p in parts {
            if p.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: p.dims().to_vec(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Selects rows (axis-0 slices) by index, producing a new tensor whose
    /// leading dimension equals `indices.len()`.
    ///
    /// This is the primitive behind width-heterogeneous sub-model extraction:
    /// selecting a subset of output channels of a weight matrix.
    ///
    /// # Errors
    /// Returns an error for scalars or out-of-range indices.
    pub fn gather_axis0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "gather_axis0",
            });
        }
        let outer = self.dims()[0];
        let inner: usize = self.dims()[1..].iter().product();
        let mut data = TensorArena::global().lease(indices.len() * inner);
        for &i in indices {
            if i >= outer {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: outer,
                });
            }
            data.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.dims()[1..]);
        Tensor::from_vec(data, &dims)
    }

    /// Selects columns (axis-1 slices) by index for rank-2 tensors.
    ///
    /// # Errors
    /// Returns an error if the tensor is not rank 2 or an index is invalid.
    pub fn gather_axis1(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "gather_axis1",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut data = TensorArena::global().lease(rows * indices.len());
        for r in 0..rows {
            for &c in indices {
                if c >= cols {
                    return Err(TensorError::IndexOutOfBounds {
                        index: c,
                        len: cols,
                    });
                }
                data.push(self.data[r * cols + c]);
            }
        }
        Tensor::from_vec(data, &[rows, indices.len()])
    }

    /// Gathers along an arbitrary axis by index.
    ///
    /// # Errors
    /// Returns an error if `axis` is out of range or an index is invalid.
    pub fn gather_axis(&self, axis: usize, indices: &[usize]) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let dims = self.dims();
        let axis_len = dims[axis];
        for &i in indices {
            if i >= axis_len {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: axis_len,
                });
            }
        }
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut data = TensorArena::global().lease(outer * indices.len() * inner);
        for o in 0..outer {
            for &i in indices {
                let start = (o * axis_len + i) * inner;
                data.extend_from_slice(&self.data[start..start + inner]);
            }
        }
        let mut new_dims = dims.to_vec();
        new_dims[axis] = indices.len();
        Tensor::from_vec(data, &new_dims)
    }

    /// Writes values into positions selected along `axis` (the inverse of
    /// [`Tensor::gather_axis`]): `self[..., indices[j], ...] = src[..., j, ...]`.
    ///
    /// Used when loading a sub-model's parameters back into the full global
    /// model at their original positions during aggregation.
    ///
    /// # Errors
    /// Returns an error if shapes/indices are inconsistent.
    pub fn scatter_axis(&mut self, axis: usize, indices: &[usize], src: &Tensor) -> Result<()> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let dims = self.dims().to_vec();
        let src_dims = src.dims();
        if src_dims.len() != dims.len() || src_dims[axis] != indices.len() {
            return Err(TensorError::ShapeMismatch {
                left: dims.clone(),
                right: src_dims.to_vec(),
                op: "scatter_axis",
            });
        }
        for (d, (&a, &b)) in dims.iter().zip(src_dims.iter()).enumerate() {
            if d != axis && a != b {
                return Err(TensorError::ShapeMismatch {
                    left: dims.clone(),
                    right: src_dims.to_vec(),
                    op: "scatter_axis",
                });
            }
        }
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        for o in 0..outer {
            for (j, &i) in indices.iter().enumerate() {
                if i >= axis_len {
                    return Err(TensorError::IndexOutOfBounds {
                        index: i,
                        len: axis_len,
                    });
                }
                let dst_start = (o * axis_len + i) * inner;
                let src_start = (o * indices.len() + j) * inner;
                self.data[dst_start..dst_start + inner]
                    .copy_from_slice(&src.data[src_start..src_start + inner]);
            }
        }
        Ok(())
    }

    /// Concatenates tensors along axis 0.
    ///
    /// # Errors
    /// Returns an error if `parts` is empty or trailing shapes differ.
    pub fn concat_axis0(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::Empty("concat_axis0"))?;
        let tail = &first.dims()[1..];
        let mut rows = 0;
        let mut data = TensorArena::global().lease(parts.iter().map(Tensor::len).sum());
        for p in parts {
            if p.rank() == 0 || &p.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: p.dims().to_vec(),
                    op: "concat_axis0",
                });
            }
            rows += p.dims()[0];
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![rows];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 6.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.at(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.at(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.5).unwrap();
        assert_eq!(t.at(&[1, 0]).unwrap(), 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.dims(), &[2, 6]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5, 3]).is_err());
    }

    #[test]
    fn index_axis0_extracts_row() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let row = t.index_axis0(1).unwrap();
        assert_eq!(row.dims(), &[3]);
        assert_eq!(row.as_slice(), &[3.0, 4.0, 5.0]);
        assert!(t.index_axis0(2).is_err());
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        let c = Tensor::concat_axis0(&[s.clone(), s]).unwrap();
        assert_eq!(c.dims(), &[4, 2]);
    }

    #[test]
    fn gather_axis0_selects_rows() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let g = t.gather_axis0(&[0, 2]).unwrap();
        assert_eq!(g.dims(), &[2, 3]);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn gather_axis1_selects_cols() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let g = t.gather_axis1(&[2, 0]).unwrap();
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.as_slice(), &[2.0, 0.0, 5.0, 3.0]);
    }

    #[test]
    fn gather_axis_general_matches_specialised() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        let g0 = t.gather_axis(0, &[1]).unwrap();
        assert_eq!(g0.dims(), &[1, 3, 4]);
        assert_eq!(g0.as_slice()[0], 12.0);
        let g1 = t.gather_axis(1, &[0, 2]).unwrap();
        assert_eq!(g1.dims(), &[2, 2, 4]);
        assert_eq!(g1.at(&[0, 1, 0]).unwrap(), 8.0);
        let g2 = t.gather_axis(2, &[3]).unwrap();
        assert_eq!(g2.dims(), &[2, 3, 1]);
        assert_eq!(g2.at(&[1, 2, 0]).unwrap(), 23.0);
    }

    #[test]
    fn scatter_is_inverse_of_gather() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let idx = [1usize, 3];
        let g = t.gather_axis(0, &idx).unwrap();
        let mut restored = Tensor::zeros(&[4, 3]);
        restored.scatter_axis(0, &idx, &g).unwrap();
        for &i in &idx {
            for c in 0..3 {
                assert_eq!(restored.at(&[i, c]).unwrap(), t.at(&[i, c]).unwrap());
            }
        }
        // Untouched rows stay zero.
        assert_eq!(restored.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn scatter_shape_validation() {
        let mut t = Tensor::zeros(&[4, 3]);
        let src = Tensor::zeros(&[2, 2]);
        assert!(t.scatter_axis(0, &[0, 1], &src).is_err());
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = SeededRng::new(0);
        let wide = Tensor::kaiming(&[64, 1024], 1024, &mut rng);
        let narrow = Tensor::kaiming(&[64, 4], 4, &mut rng);
        let var = |t: &Tensor| t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!(var(&wide) < var(&narrow));
    }
}
