//! # mhfl-tensor
//!
//! A deliberately small, dependency-light CPU tensor library that underpins
//! the PracMHBench reproduction. It provides exactly what the federated
//! learning substrate needs:
//!
//! * an n-dimensional `f32` [`Tensor`] with row-major storage,
//! * elementwise arithmetic with simple broadcasting,
//! * 2-D matrix multiplication and transposition,
//! * reductions, softmax, argmax,
//! * axis slicing and index-based gathering (used by width/depth sub-model
//!   extraction),
//! * seeded random initialisation so every experiment is reproducible.
//!
//! The library intentionally avoids `unsafe`, SIMD intrinsics and GPU
//! support, but the matmul path is performance-engineered: [`kernels`]
//! provides blocked/tiled kernels with L1-sized packed panels,
//! transpose-aware `A·Bᵀ`/`Aᵀ·B` variants and optional row-range threading
//! over a worker pool ([`set_kernel_workers`]) — all bitwise identical to
//! the retained naive reference kernel ([`Tensor::matmul_naive`]), so
//! reproducibility survives every optimisation.
//!
//! Tensor storage itself is pooled: every buffer is leased from the
//! process-wide [`TensorArena`] and recycled on drop, so steady-state
//! federated rounds run nearly allocation-free (the `alloc-count` feature
//! compiles in counters that prove it). The pool is observably inert —
//! recycled storage is re-zeroed or returned empty, never leaked across
//! leases.
//!
//! ```
//! use mhfl_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), mhfl_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod error;
pub mod kernels;
mod ops;
mod rng;
mod shape;
mod tensor;

pub use arena::{ArenaStats, TensorArena};
pub use error::TensorError;
pub use kernels::{kernel_workers, mark_worker_thread, set_kernel_workers};
pub use rng::{RngState, SeededRng};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
