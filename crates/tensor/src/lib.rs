//! # mhfl-tensor
//!
//! A deliberately small, dependency-light CPU tensor library that underpins
//! the PracMHBench reproduction. It provides exactly what the federated
//! learning substrate needs:
//!
//! * an n-dimensional `f32` [`Tensor`] with row-major storage,
//! * elementwise arithmetic with simple broadcasting,
//! * 2-D matrix multiplication and transposition,
//! * reductions, softmax, argmax,
//! * axis slicing and index-based gathering (used by width/depth sub-model
//!   extraction),
//! * seeded random initialisation so every experiment is reproducible.
//!
//! The library intentionally avoids `unsafe`, SIMD and GPU support: the
//! proxy models used by the benchmark are tiny, and determinism plus clarity
//! matter more than raw throughput here.
//!
//! ```
//! use mhfl_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), mhfl_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ops;
mod rng;
mod shape;
mod tensor;

pub use error::TensorError;
pub use rng::SeededRng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
