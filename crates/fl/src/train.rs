//! Local training and evaluation helpers shared by all algorithms.

use mhfl_data::Dataset;
use mhfl_models::ProxyModel;
use mhfl_nn::loss::{accuracy, cross_entropy};
use mhfl_nn::{Layer, Sgd};
use mhfl_tensor::SeededRng;

use crate::{FlResult, LocalTrainConfig};

/// Runs plain cross-entropy SGD on a client's shard for one federated round
/// (`cfg.local_steps` mini-batches) and returns the mean training loss.
///
/// # Errors
/// Propagates forward/backward errors from the proxy model.
pub fn local_train_ce(
    model: &mut ProxyModel,
    data: &Dataset,
    cfg: &LocalTrainConfig,
    rng: &mut SeededRng,
) -> FlResult<f32> {
    let mut opt = Sgd::new(cfg.sgd);
    let mut losses = Vec::new();
    let mut batches = data.batches(cfg.batch_size, rng);
    if batches.is_empty() {
        return Ok(0.0);
    }
    let mut cursor = 0usize;
    for _ in 0..cfg.local_steps {
        if cursor >= batches.len() {
            batches = data.batches(cfg.batch_size, rng);
            cursor = 0;
        }
        let batch = &batches[cursor];
        cursor += 1;
        model.zero_grad();
        let out = model.forward_detailed(&batch.inputs, true)?;
        let (loss, grad) = cross_entropy(&out.logits, &batch.labels)?;
        model.backward_detailed(&grad, None, &[])?;
        opt.step(model)?;
        losses.push(loss);
    }
    Ok(losses.iter().sum::<f32>() / losses.len().max(1) as f32)
}

/// Evaluates a proxy model's top-1 accuracy on a dataset.
///
/// # Errors
/// Propagates forward errors from the proxy model.
pub fn evaluate_accuracy(model: &mut ProxyModel, data: &Dataset) -> FlResult<f32> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let chunk = 128usize;
    let mut correct_weighted = 0.0f32;
    let mut start = 0usize;
    while start < data.len() {
        let end = (start + chunk).min(data.len());
        let indices: Vec<usize> = (start..end).collect();
        let subset = data.subset(&indices);
        let batch = subset.as_batch();
        let out = model.forward_detailed(&batch.inputs, false)?;
        let acc = accuracy(&out.logits, &batch.labels)?;
        correct_weighted += acc * batch.len() as f32;
        start = end;
    }
    Ok(correct_weighted / data.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{generate_dataset, DataTask};
    use mhfl_models::{ModelFamily, ProxyConfig};

    fn har_model(seed: u64) -> ProxyModel {
        ProxyModel::new(ProxyConfig::for_family(
            ModelFamily::HarCnn,
            DataTask::UciHar.input_kind(),
            DataTask::UciHar.num_classes(),
            seed,
        ))
        .unwrap()
    }

    #[test]
    fn local_training_reduces_loss_and_improves_accuracy() {
        let data = generate_dataset(DataTask::UciHar, 120, 0, None);
        let mut model = har_model(1);
        let mut rng = SeededRng::new(2);
        let cfg = LocalTrainConfig {
            local_steps: 8,
            ..LocalTrainConfig::default()
        };

        let acc_before = evaluate_accuracy(&mut model, &data).unwrap();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..6 {
            let loss = local_train_ce(&mut model, &data, &cfg, &mut rng).unwrap();
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        let acc_after = evaluate_accuracy(&mut model, &data).unwrap();
        assert!(last_loss < first_loss.unwrap());
        assert!(
            acc_after > acc_before,
            "accuracy {acc_before} -> {acc_after}"
        );
        assert!(
            acc_after > 0.4,
            "training accuracy should clearly beat chance, got {acc_after}"
        );
    }

    #[test]
    fn evaluation_handles_empty_and_tiny_datasets() {
        let mut model = har_model(3);
        let empty = generate_dataset(DataTask::UciHar, 0, 0, None);
        assert_eq!(evaluate_accuracy(&mut model, &empty).unwrap(), 0.0);
        let tiny = generate_dataset(DataTask::UciHar, 3, 1, None);
        let acc = evaluate_accuracy(&mut model, &tiny).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn training_on_empty_dataset_is_a_noop() {
        let empty = generate_dataset(DataTask::UciHar, 0, 0, None);
        let mut model = har_model(4);
        let mut rng = SeededRng::new(0);
        let loss =
            local_train_ce(&mut model, &empty, &LocalTrainConfig::default(), &mut rng).unwrap();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn other_modalities_also_train() {
        // CV proxy on synthetic CIFAR-10.
        let data = generate_dataset(DataTask::Cifar10, 64, 5, None);
        let mut model = ProxyModel::new(ProxyConfig::for_family(
            ModelFamily::ResNet18,
            DataTask::Cifar10.input_kind(),
            10,
            6,
        ))
        .unwrap();
        let mut rng = SeededRng::new(7);
        let cfg = LocalTrainConfig {
            local_steps: 4,
            batch_size: 16,
            ..LocalTrainConfig::default()
        };
        let loss = local_train_ce(&mut model, &data, &cfg, &mut rng).unwrap();
        assert!(loss.is_finite() && loss > 0.0);

        // NLP proxy on synthetic AG-News.
        let data = generate_dataset(DataTask::AgNews, 64, 5, None);
        let mut model = ProxyModel::new(ProxyConfig::for_family(
            ModelFamily::CustomTransformer,
            DataTask::AgNews.input_kind(),
            4,
            8,
        ))
        .unwrap();
        let loss = local_train_ce(&mut model, &data, &cfg, &mut rng).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }
}
