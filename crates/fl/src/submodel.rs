//! Width/depth sub-model extraction and overlap-aware aggregation.
//!
//! These are the two primitives every partial-aggregation MHFL algorithm is
//! built from:
//!
//! * [`extract_submodel`] slices a client-sized state dict out of the global
//!   model, choosing channel indices per width-scalable axis according to a
//!   [`WidthSelection`] (contiguous prefix for HeteroFL/Fjord, a rolling
//!   window for FedRolex). Depth-heterogeneous clients simply request fewer
//!   parameter names — the same code path handles them.
//! * [`ServerAggregator`] accumulates client updates back into the global
//!   coordinate space and averages every global entry by how many clients
//!   actually covered it, keeping the previous global value for uncovered
//!   entries (HeteroFL-style partial averaging).
//!
//! Both primitives run fastest through an [`ExtractionPlan`]: the
//! per-parameter, per-axis gather offsets for one `(client shape set,
//! selection)` pair are computed **once** and then replayed every round as
//! a single-pass multi-axis gather (extraction) or scatter-add
//! (aggregation), instead of clone-then-gather-per-axis and per-element
//! coordinate decoding. Plans are cached across rounds by a [`PlanCache`]
//! owned by each algorithm. The planned paths are bit-for-bit identical to
//! the retained sequential reference implementations
//! ([`extract_submodel`], [`ServerAggregator::add_update`]) — the golden
//! trace harness and the property suite pin this.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use mhfl_nn::{AxisRole, ParamSpec, StateDict};
use mhfl_tensor::{Tensor, TensorArena};

use crate::adversary::RobustAggregation;
use crate::{FlError, FlResult};

/// How width-scalable axes choose which global channels a sub-model keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthSelection {
    /// The first `k` channels (nested sub-networks; HeteroFL, Fjord).
    Prefix,
    /// A window of `k` consecutive channels starting at `shift` (mod the full
    /// width), advanced every round (FedRolex).
    Rolling {
        /// Window offset, typically the round index.
        shift: usize,
    },
}

impl WidthSelection {
    /// The global indices a client axis of length `client_len` maps to, for a
    /// global axis of length `global_len`.
    pub fn indices(&self, global_len: usize, client_len: usize) -> Vec<usize> {
        match *self {
            WidthSelection::Prefix => (0..client_len.min(global_len)).collect(),
            WidthSelection::Rolling { shift } => (0..client_len.min(global_len))
                .map(|i| (shift + i) % global_len.max(1))
                .collect(),
        }
    }
}

/// Computes, for one parameter, the global index list of every axis of the
/// client tensor.
///
/// Axes whose client extent equals the global extent map to the identity;
/// width-scalable axes (`OutFeatures`/`InFeatures`) use `selection`; a size
/// mismatch on a `Fixed` axis is an error.
///
/// # Errors
/// Returns [`FlError::InvalidConfig`] when a fixed axis disagrees in size or
/// the ranks differ.
pub fn axis_indices(
    global_shape: &[usize],
    client_shape: &[usize],
    roles: &[AxisRole],
    selection: WidthSelection,
) -> FlResult<Vec<Vec<usize>>> {
    if global_shape.len() != client_shape.len() || roles.len() != global_shape.len() {
        return Err(FlError::InvalidConfig(format!(
            "rank mismatch: global {global_shape:?}, client {client_shape:?}"
        )));
    }
    global_shape
        .iter()
        .zip(client_shape.iter())
        .zip(roles.iter())
        .map(|((&g, &c), role)| {
            if c == g {
                Ok((0..g).collect())
            } else if c < g && matches!(role, AxisRole::OutFeatures | AxisRole::InFeatures) {
                Ok(selection.indices(g, c))
            } else {
                Err(FlError::InvalidConfig(format!(
                    "axis with role {role:?} cannot map client extent {c} onto global extent {g}"
                )))
            }
        })
        .collect()
}

/// Extracts the client-sized sub-model from the global state dict.
///
/// `client_specs` lists the parameters (names, shapes, roles) of the client's
/// model; every one of them must exist in `global_specs`/`global` with a
/// compatible shape.
///
/// # Errors
/// Returns an error if a client parameter is missing from the global model or
/// the shapes cannot be mapped.
pub fn extract_submodel(
    global: &StateDict,
    global_specs: &[ParamSpec],
    client_specs: &[ParamSpec],
    selection: WidthSelection,
) -> FlResult<StateDict> {
    let spec_index: BTreeMap<&str, &ParamSpec> =
        global_specs.iter().map(|s| (s.name.as_str(), s)).collect();
    let mut out = StateDict::new();
    for spec in client_specs {
        let global_spec = spec_index
            .get(spec.name.as_str())
            .ok_or_else(|| FlError::InvalidConfig(format!("global model lacks {}", spec.name)))?;
        let tensor = global.require(&spec.name)?;
        let indices = axis_indices(
            &global_spec.shape,
            &spec.shape,
            &global_spec.roles,
            selection,
        )?;
        let mut sliced = tensor.clone();
        for (axis, idx) in indices.iter().enumerate() {
            if idx.len() != sliced.dims()[axis] || idx.iter().enumerate().any(|(i, &v)| i != v) {
                sliced = sliced.gather_axis(axis, idx)?;
            }
        }
        out.insert(spec.name.clone(), sliced);
    }
    Ok(out)
}

/// One parameter's precomputed gather recipe inside an [`ExtractionPlan`].
#[derive(Debug)]
struct PlanEntry {
    /// Fully-qualified parameter name.
    name: String,
    /// Client-side tensor shape.
    client_dims: Vec<usize>,
    /// Global-side tensor shape (for allocating scatter targets).
    global_dims: Vec<usize>,
    /// `axis_offsets[a][i]` is the flat-offset contribution of client
    /// coordinate `i` on axis `a`: `global_index(a, i) × global_stride(a)`.
    /// Summing one offset per axis yields the flat global position, so a
    /// single odometer pass visits every element — no per-element
    /// coordinate decode, no per-axis intermediate tensors.
    axis_offsets: Vec<Vec<usize>>,
    /// Number of client elements.
    client_len: usize,
    /// Every axis maps identically (extraction is a straight copy).
    identity: bool,
    /// The innermost axis maps to a contiguous global run starting at the
    /// base offset, so the inner loop is a `copy_from_slice`.
    tail_contiguous: bool,
}

impl PlanEntry {
    /// Invokes `f` with the global base offset of every client "row" (all
    /// axes but the innermost), in row-major client order.
    fn for_each_base(&self, f: &mut impl FnMut(usize)) {
        let outer = self.client_dims.len().saturating_sub(1);
        if self.client_dims.contains(&0) {
            return;
        }
        let mut coord = vec![0usize; outer];
        loop {
            let base: usize = coord
                .iter()
                .enumerate()
                .map(|(axis, &c)| self.axis_offsets[axis][c])
                .sum();
            f(base);
            // Row-major odometer: bump the last outer axis first.
            let mut axis = outer;
            loop {
                if axis == 0 {
                    return;
                }
                axis -= 1;
                coord[axis] += 1;
                if coord[axis] < self.client_dims[axis] {
                    break;
                }
                coord[axis] = 0;
            }
        }
    }

    /// Single-pass gather of this parameter out of the global tensor.
    fn gather(&self, src: &Tensor) -> FlResult<Tensor> {
        if self.identity {
            return Ok(src.clone());
        }
        let src_data = src.as_slice();
        let mut data = TensorArena::global().lease(self.client_len);
        let tail = self.axis_offsets.last().map_or(&[][..], Vec::as_slice);
        self.for_each_base(&mut |base| {
            if self.tail_contiguous {
                data.extend_from_slice(&src_data[base..base + tail.len()]);
            } else {
                for &off in tail {
                    data.push(src_data[base + off]);
                }
            }
        });
        Ok(Tensor::from_pool(data, &self.client_dims)?)
    }

    /// Single-pass scatter-add of a client tensor into `sums`/`counts`
    /// (the aggregation return path), visiting client elements in the same
    /// row-major order as the reference implementation.
    fn scatter_add(&self, client: &[f32], sums: &mut [f32], counts: &mut [f32], weight: f32) {
        if self.client_dims.is_empty() {
            // Rank-0 degenerate case: a single scalar at offset 0.
            sums[0] += weight * client[0];
            counts[0] += weight;
            return;
        }
        let tail = self.axis_offsets.last().map_or(&[][..], Vec::as_slice);
        let mut pos = 0usize;
        self.for_each_base(&mut |base| {
            for &off in tail {
                sums[base + off] += weight * client[pos];
                counts[base + off] += weight;
                pos += 1;
            }
        });
    }
}

/// A precomputed, reusable recipe mapping one set of client-shaped tensors
/// onto the global coordinate space under one [`WidthSelection`].
///
/// Building a plan costs one [`axis_indices`] evaluation per parameter;
/// replaying it performs extraction as a single-pass multi-axis gather and
/// aggregation as a single-pass scatter-add. Plans are immutable and
/// shareable across threads ([`PlanCache`] hands them out as [`Arc`]s).
#[derive(Debug)]
pub struct ExtractionPlan {
    entries: Vec<PlanEntry>,
    /// Client parameters the global model does not track (skipped by
    /// aggregation, an error for extraction).
    skipped: Vec<String>,
}

impl ExtractionPlan {
    /// Builds the plan for `client_shapes` (name → shape, in the order the
    /// tensors will be presented) against the global parameter specs.
    ///
    /// Client names missing from `global_specs` are recorded as skipped:
    /// [`ExtractionPlan::extract`] refuses to run with skipped entries
    /// (the global model cannot produce them) while the scatter-add path
    /// ignores them, mirroring [`ServerAggregator::add_update`].
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] when a shape cannot be mapped
    /// (rank mismatch or a shrunken `Fixed` axis).
    pub fn build<'a>(
        global_specs: &[ParamSpec],
        client_shapes: impl IntoIterator<Item = (&'a str, &'a [usize])>,
        selection: WidthSelection,
    ) -> FlResult<Self> {
        let spec_index: BTreeMap<&str, &ParamSpec> =
            global_specs.iter().map(|s| (s.name.as_str(), s)).collect();
        let mut entries = Vec::new();
        let mut skipped = Vec::new();
        for (name, client_dims) in client_shapes {
            let Some(spec) = spec_index.get(name) else {
                skipped.push(name.to_string());
                continue;
            };
            let indices = axis_indices(&spec.shape, client_dims, &spec.roles, selection)?;
            let mut strides = vec![1usize; spec.shape.len()];
            for i in (0..spec.shape.len().saturating_sub(1)).rev() {
                strides[i] = strides[i + 1] * spec.shape[i + 1];
            }
            let identity = indices
                .iter()
                .zip(spec.shape.iter())
                .all(|(idx, &g)| idx.len() == g && idx.iter().enumerate().all(|(i, &v)| i == v));
            let tail_contiguous = indices
                .last()
                .is_some_and(|idx| idx.iter().enumerate().all(|(i, &v)| i == v));
            let axis_offsets: Vec<Vec<usize>> = indices
                .iter()
                .enumerate()
                .map(|(axis, idx)| idx.iter().map(|&v| v * strides[axis]).collect())
                .collect();
            entries.push(PlanEntry {
                name: name.to_string(),
                client_dims: client_dims.to_vec(),
                global_dims: spec.shape.clone(),
                axis_offsets,
                client_len: client_dims.iter().product(),
                identity,
                tail_contiguous,
            });
        }
        Ok(ExtractionPlan { entries, skipped })
    }

    /// Plan for a client model described by its [`ParamSpec`]s (the
    /// extraction direction).
    ///
    /// # Errors
    /// Propagates [`ExtractionPlan::build`] failures.
    pub fn for_client_specs(
        global_specs: &[ParamSpec],
        client_specs: &[ParamSpec],
        selection: WidthSelection,
    ) -> FlResult<Self> {
        Self::build(
            global_specs,
            client_specs
                .iter()
                .map(|s| (s.name.as_str(), s.shape.as_slice())),
            selection,
        )
    }

    /// Plan for an uploaded client state dict (the aggregation direction).
    ///
    /// # Errors
    /// Propagates [`ExtractionPlan::build`] failures.
    pub fn for_state(
        global_specs: &[ParamSpec],
        state: &StateDict,
        selection: WidthSelection,
    ) -> FlResult<Self> {
        Self::build(
            global_specs,
            state.iter().map(|(name, t)| (name.as_str(), t.dims())),
            selection,
        )
    }

    /// Number of parameters the plan maps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the plan maps no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Extracts the client-sized sub-model from the global state dict in a
    /// single gather pass per parameter. Identical output to
    /// [`extract_submodel`] with the plan's selection.
    ///
    /// # Errors
    /// Returns an error if the plan recorded parameters the global model
    /// lacks, or a tensor is missing from `global`.
    pub fn extract(&self, global: &StateDict) -> FlResult<StateDict> {
        if let Some(missing) = self.skipped.first() {
            return Err(FlError::InvalidConfig(format!(
                "global model lacks {missing}"
            )));
        }
        let mut out = StateDict::new();
        for entry in &self.entries {
            let tensor = global.require(&entry.name)?;
            out.insert(entry.name.clone(), entry.gather(tensor)?);
        }
        Ok(out)
    }
}

/// A per-algorithm cache of [`ExtractionPlan`]s, keyed by the client's
/// `(name, shape)` set and the [`WidthSelection`].
///
/// The engine runs one algorithm instance for the whole experiment, so a
/// cache owned by the algorithm persists plans across rounds: nested-prefix
/// recipes (HeteroFL/Fjord, depth prefixes, the homogeneous baseline) hit
/// the cache every round after the first, and FedRolex's rolling window
/// costs one rebuild per `(shape set, shift)`. Interior mutability keeps
/// lookups available from the `&self` client phase across threads.
///
/// At capacity the cache evicts **one cold entry** by the second-chance
/// (clock) policy: every hit marks its slot referenced, and the clock hand
/// sweeps the insertion ring clearing referenced marks until it finds an
/// unmarked victim. Hot per-family plans (re-requested every round) survive
/// FedRolex streaming hundreds of one-shot rolling keys through the cache —
/// the failure mode of the previous wipe-everything-at-cap policy.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<PlanMap>,
}

/// The guarded state of a [`PlanCache`]: the slots plus the clock-eviction
/// bookkeeping. `ring` holds every cached key in insertion order and
/// `hand` is the clock position, so eviction is deterministic given the
/// request sequence (iterating a bare `HashMap` for a victim would not be).
#[derive(Debug, Default)]
struct PlanMap {
    slots: HashMap<u64, CachedPlan>,
    ring: Vec<u64>,
    hand: usize,
}

impl PlanMap {
    /// Inserts a new slot, evicting one cold entry first when at capacity.
    fn insert(&mut self, key: u64, slot: CachedPlan) {
        if self.slots.len() >= PLAN_CACHE_CAP && !self.ring.is_empty() {
            // Second chance: clear referenced marks under the hand until an
            // unreferenced victim appears (at most two sweeps), then reuse
            // its ring position for the new key.
            loop {
                let candidate = self.ring[self.hand];
                let entry = self.slots.get_mut(&candidate).expect("ring tracks slots");
                if entry.referenced {
                    entry.referenced = false;
                    self.hand = (self.hand + 1) % self.ring.len();
                } else {
                    self.slots.remove(&candidate);
                    self.ring[self.hand] = key;
                    self.hand = (self.hand + 1) % self.ring.len();
                    break;
                }
            }
        } else {
            self.ring.push(key);
        }
        self.slots.insert(key, slot);
    }
}

/// One cache slot: the plan plus the exact request it was built for, so a
/// hit is verified structurally instead of trusted to the 64-bit hash.
#[derive(Debug)]
struct CachedPlan {
    selection: WidthSelection,
    /// Canonically ordered client `(name, shape)` pairs.
    shapes: Vec<(String, Vec<usize>)>,
    plan: Arc<ExtractionPlan>,
    /// Set on every hit, cleared when the clock hand sweeps past; an entry
    /// survives one full sweep after its last hit.
    referenced: bool,
}

impl CachedPlan {
    /// Whether this slot was built for exactly the given request (the
    /// global side is covered by the key fingerprint: one cache serves one
    /// algorithm, whose global specs never change).
    fn matches(&self, shapes: &[(&str, &[usize])], selection: WidthSelection) -> bool {
        self.selection == selection
            && self.shapes.len() == shapes.len()
            && self
                .shapes
                .iter()
                .zip(shapes.iter())
                .all(|((name, dims), (req_name, req_dims))| {
                    name == req_name && dims.as_slice() == *req_dims
                })
    }
}

/// Plans are tiny (per-axis offset tables), but FedRolex mints a new shift
/// every round; cap the cache so a 1000-round run cannot grow unboundedly.
const PLAN_CACHE_CAP: usize = 128;

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// FNV-1a fingerprint of the global specs, the client `(name, shape)`
    /// set and the selection. The global side is part of the key because
    /// the plan's offsets and strides are computed from it: the same client
    /// shapes against a different global model must not share a slot.
    fn key<'a>(
        global_specs: &[ParamSpec],
        client_shapes: impl Iterator<Item = (&'a str, &'a [usize])>,
        selection: WidthSelection,
    ) -> u64 {
        let mut h = crate::fnv::Fnv1a::new();
        match selection {
            WidthSelection::Prefix => h.write(&[0u8]),
            WidthSelection::Rolling { shift } => {
                h.write(&[1u8]);
                h.write_u64(shift as u64);
            }
        }
        for spec in global_specs {
            h.write(spec.name.as_bytes());
            h.write(&[0xFE]);
            h.write_u64(spec.shape.len() as u64);
            for &d in &spec.shape {
                h.write_u64(d as u64);
            }
        }
        for (name, dims) in client_shapes {
            h.write(name.as_bytes());
            h.write(&[0xFF]);
            h.write_u64(dims.len() as u64);
            for &d in dims {
                h.write_u64(d as u64);
            }
        }
        h.finish()
    }

    fn get_or_build<'a>(
        &self,
        global_specs: &[ParamSpec],
        shapes: &mut Vec<(&'a str, &'a [usize])>,
        selection: WidthSelection,
    ) -> FlResult<Arc<ExtractionPlan>> {
        // Canonical name order: spec-keyed (model visit order) and
        // state-keyed (BTreeMap order) lookups of the same shape set must
        // share one cache slot. Per-parameter gathers are independent, so
        // plan entry order never affects results.
        shapes.sort_unstable_by_key(|(name, _)| *name);
        let key = Self::key(global_specs, shapes.iter().copied(), selection);
        let mut collision = false;
        if let Some(slot) = self
            .plans
            .lock()
            .expect("plan cache lock")
            .slots
            .get_mut(&key)
        {
            if slot.matches(shapes, selection) {
                slot.referenced = true;
                return Ok(Arc::clone(&slot.plan));
            }
            // A 64-bit fingerprint collision between two distinct requests
            // (astronomically unlikely, but the repo's contract is
            // exactness, not probability): serve a fresh uncached build
            // and leave the slot's first occupant in place.
            collision = true;
        }
        let plan = Arc::new(ExtractionPlan::build(
            global_specs,
            shapes.iter().copied(),
            selection,
        )?);
        if !collision {
            self.plans.lock().expect("plan cache lock").insert(
                key,
                CachedPlan {
                    selection,
                    shapes: shapes
                        .iter()
                        .map(|(name, dims)| (name.to_string(), dims.to_vec()))
                        .collect(),
                    plan: Arc::clone(&plan),
                    referenced: false,
                },
            );
        }
        Ok(plan)
    }

    /// The cached (or freshly built) plan for a client model's specs.
    ///
    /// # Errors
    /// Propagates plan-construction failures.
    pub fn for_client_specs(
        &self,
        global_specs: &[ParamSpec],
        client_specs: &[ParamSpec],
        selection: WidthSelection,
    ) -> FlResult<Arc<ExtractionPlan>> {
        let mut shapes: Vec<(&str, &[usize])> = client_specs
            .iter()
            .map(|s| (s.name.as_str(), s.shape.as_slice()))
            .collect();
        self.get_or_build(global_specs, &mut shapes, selection)
    }

    /// The cached (or freshly built) plan for an uploaded state dict.
    ///
    /// # Errors
    /// Propagates plan-construction failures.
    pub fn for_state(
        &self,
        global_specs: &[ParamSpec],
        state: &StateDict,
        selection: WidthSelection,
    ) -> FlResult<Arc<ExtractionPlan>> {
        let mut shapes: Vec<(&str, &[usize])> = state
            .iter()
            .map(|(name, t)| (name.as_str(), t.dims()))
            .collect();
        self.get_or_build(global_specs, &mut shapes, selection)
    }

    /// Number of cached plans (for tests and telemetry).
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache lock").slots.len()
    }

    /// `true` when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Accumulates heterogeneous client updates into the global coordinate space
/// and produces the HeteroFL-style partial average.
///
/// With a [`RobustAggregation`] mode attached ([`with_robust`]
/// (ServerAggregator::with_robust)) the fold hardens against byzantine
/// contributions: norm-clipping bounds each client's joint L2 norm before
/// the weighted scatter, and coordinate-median replaces the weighted
/// per-coordinate mean with an unweighted per-coordinate median over the
/// clients covering that coordinate. The default
/// ([`RobustAggregation::None`]) is the exact pre-existing streaming path.
#[derive(Debug, Clone)]
pub struct ServerAggregator {
    sums: BTreeMap<String, Tensor>,
    counts: BTreeMap<String, Tensor>,
    global_specs: Vec<ParamSpec>,
    robust: RobustAggregation,
    /// Per-client `(sums, counts)` scatter pairs, kept only under
    /// [`RobustAggregation::CoordinateMedian`] (the median needs every
    /// contribution at finalize time; the mean streams).
    per_update: Vec<(BTreeMap<String, Tensor>, BTreeMap<String, Tensor>)>,
}

impl ServerAggregator {
    /// Creates an aggregator for a global model described by `global_specs`.
    pub fn new(global_specs: Vec<ParamSpec>) -> Self {
        let sums = Self::zeroed_maps(&global_specs);
        let counts = Self::zeroed_maps(&global_specs);
        ServerAggregator {
            sums,
            counts,
            global_specs,
            robust: RobustAggregation::None,
            per_update: Vec::new(),
        }
    }

    /// Builder-style robust-aggregation toggle.
    #[must_use]
    pub fn with_robust(mut self, robust: RobustAggregation) -> Self {
        self.robust = robust;
        self
    }

    fn zeroed_maps(global_specs: &[ParamSpec]) -> BTreeMap<String, Tensor> {
        global_specs
            .iter()
            .map(|s| (s.name.clone(), Tensor::zeros(&s.shape)))
            .collect()
    }

    /// A clipped copy of the uploaded state when the joint L2 norm exceeds
    /// `max_norm`, `None` when the update is already inside the ball (the
    /// common case for honest clients — no copy, no work).
    fn clipped(client_update: &StateDict, max_norm: f32) -> Option<StateDict> {
        if crate::adversary::state_l2_norm(client_update) <= max_norm {
            return None;
        }
        let mut clipped = client_update.clone();
        crate::adversary::clip_state(&mut clipped, max_norm);
        Some(clipped)
    }

    /// Adds one client's updated sub-model, weighted by `weight`
    /// (typically the client's sample count or 1.0).
    ///
    /// # Errors
    /// Returns an error if a client tensor cannot be mapped onto the global
    /// coordinate space.
    pub fn add_update(
        &mut self,
        client_update: &StateDict,
        selection: WidthSelection,
        weight: f32,
    ) -> FlResult<()> {
        if let RobustAggregation::NormClip { max_norm } = self.robust {
            if let Some(clipped) = Self::clipped(client_update, max_norm) {
                return self.add_update_plain(&clipped, selection, weight);
            }
        }
        self.add_update_plain(client_update, selection, weight)
    }

    fn add_update_plain(
        &mut self,
        client_update: &StateDict,
        selection: WidthSelection,
        weight: f32,
    ) -> FlResult<()> {
        scatter_mapped(
            &self.global_specs,
            &mut self.sums,
            &mut self.counts,
            client_update,
            selection,
            weight,
        )?;
        if matches!(self.robust, RobustAggregation::CoordinateMedian) {
            let mut sums = Self::zeroed_maps(&self.global_specs);
            let mut counts = Self::zeroed_maps(&self.global_specs);
            scatter_mapped(
                &self.global_specs,
                &mut sums,
                &mut counts,
                client_update,
                selection,
                1.0,
            )?;
            self.per_update.push((sums, counts));
        }
        Ok(())
    }

    /// Adds one client's updated sub-model through a precomputed
    /// [`ExtractionPlan`] (the same plan that extracted the sub-model),
    /// replacing per-element coordinate decoding with a single scatter-add
    /// pass per parameter. Bit-identical to
    /// [`add_update`](ServerAggregator::add_update) with the plan's
    /// selection: client elements are visited in the same row-major order.
    ///
    /// # Errors
    /// Returns an error if a tensor's shape disagrees with the plan.
    pub fn add_update_with_plan(
        &mut self,
        client_update: &StateDict,
        plan: &ExtractionPlan,
        weight: f32,
    ) -> FlResult<()> {
        if let RobustAggregation::NormClip { max_norm } = self.robust {
            if let Some(clipped) = Self::clipped(client_update, max_norm) {
                return self.add_update_with_plan_plain(&clipped, plan, weight);
            }
        }
        self.add_update_with_plan_plain(client_update, plan, weight)
    }

    fn add_update_with_plan_plain(
        &mut self,
        client_update: &StateDict,
        plan: &ExtractionPlan,
        weight: f32,
    ) -> FlResult<()> {
        scatter_plan(
            &mut self.sums,
            &mut self.counts,
            client_update,
            plan,
            weight,
        )?;
        if matches!(self.robust, RobustAggregation::CoordinateMedian) {
            let mut sums = Self::zeroed_maps(&self.global_specs);
            let mut counts = Self::zeroed_maps(&self.global_specs);
            scatter_plan(&mut sums, &mut counts, client_update, plan, 1.0)?;
            self.per_update.push((sums, counts));
        }
        Ok(())
    }

    /// Number of parameters that received at least one contribution.
    pub fn covered_params(&self) -> usize {
        self.counts
            .values()
            .filter(|c| c.as_slice().iter().any(|&v| v > 0.0))
            .count()
    }

    /// Produces the new global state dict: covered entries become the
    /// weighted average (or, under
    /// [`RobustAggregation::CoordinateMedian`], the per-coordinate median)
    /// of contributions, uncovered entries keep the previous global value.
    pub fn finalize(&self, previous_global: &StateDict) -> FlResult<StateDict> {
        if matches!(self.robust, RobustAggregation::CoordinateMedian) {
            return self.finalize_median(previous_global);
        }
        let mut out = StateDict::new();
        let arena = TensorArena::global();
        for spec in &self.global_specs {
            let prev = previous_global.require(&spec.name)?;
            let sums = &self.sums[&spec.name];
            let counts = &self.counts[&spec.name];
            let mut data = arena.lease(prev.len());
            data.extend(
                prev.as_slice()
                    .iter()
                    .zip(sums.as_slice())
                    .zip(counts.as_slice())
                    .map(|((&p, &s), &c)| if c > 0.0 { s / c } else { p }),
            );
            out.insert(spec.name.clone(), Tensor::from_pool(data, &spec.shape)?);
        }
        Ok(out)
    }

    /// Per-coordinate median over the clients that covered each coordinate;
    /// coordinates nobody covered keep the previous global value. Weights
    /// (sample counts, staleness) are deliberately ignored — a byzantine
    /// client must not be able to buy leverage by claiming more samples.
    fn finalize_median(&self, previous_global: &StateDict) -> FlResult<StateDict> {
        let mut out = StateDict::new();
        let arena = TensorArena::global();
        let mut scratch = arena.lease(self.per_update.len());
        for spec in &self.global_specs {
            let prev = previous_global.require(&spec.name)?;
            let counts = &self.counts[&spec.name];
            let views: Vec<(&[f32], &[f32])> = self
                .per_update
                .iter()
                .map(|(s, c)| (s[&spec.name].as_slice(), c[&spec.name].as_slice()))
                .collect();
            let mut data = arena.lease(prev.len());
            data.extend(
                prev.as_slice()
                    .iter()
                    .zip(counts.as_slice())
                    .enumerate()
                    .map(|(i, (&p, &c))| {
                        if c <= 0.0 {
                            return p;
                        }
                        scratch.clear();
                        for (sums, counts) in &views {
                            // A client covered this coordinate iff its own
                            // scatter (unit weight) counted it.
                            if counts[i] > 0.0 {
                                scratch.push(sums[i] / counts[i]);
                            }
                        }
                        crate::adversary::coordinate_median(&mut scratch).unwrap_or(p)
                    }),
            );
            out.insert(spec.name.clone(), Tensor::from_pool(data, &spec.shape)?);
        }
        arena.recycle(scratch);
        Ok(out)
    }
}

/// Adds one state dict into `(sums, counts)` via per-element coordinate
/// decoding — the reference scatter path of
/// [`ServerAggregator::add_update`], parameterised over the target maps so
/// the coordinate-median mode can scatter per-client copies through the
/// identical arithmetic.
fn scatter_mapped(
    global_specs: &[ParamSpec],
    all_sums: &mut BTreeMap<String, Tensor>,
    all_counts: &mut BTreeMap<String, Tensor>,
    client_update: &StateDict,
    selection: WidthSelection,
    weight: f32,
) -> FlResult<()> {
    let spec_index: BTreeMap<&str, &ParamSpec> =
        global_specs.iter().map(|s| (s.name.as_str(), s)).collect();
    for (name, client_tensor) in client_update.iter() {
        let Some(spec) = spec_index.get(name.as_str()) else {
            // Parameters the global model does not track (e.g. client-only
            // personalisation heads) are simply skipped.
            continue;
        };
        let indices = axis_indices(&spec.shape, client_tensor.dims(), &spec.roles, selection)?;
        let sums = all_sums.get_mut(name).expect("initialised with all specs");
        let counts = all_counts
            .get_mut(name)
            .expect("initialised with all specs");
        accumulate_mapped(sums, counts, client_tensor, &indices, weight)?;
    }
    Ok(())
}

/// The plan-driven scatter of
/// [`ServerAggregator::add_update_with_plan`], parameterised over the
/// target maps (see [`scatter_mapped`]).
fn scatter_plan(
    all_sums: &mut BTreeMap<String, Tensor>,
    all_counts: &mut BTreeMap<String, Tensor>,
    client_update: &StateDict,
    plan: &ExtractionPlan,
    weight: f32,
) -> FlResult<()> {
    for entry in &plan.entries {
        let Some(client_tensor) = client_update.get(&entry.name) else {
            return Err(FlError::InvalidConfig(format!(
                "update lacks {} required by its extraction plan",
                entry.name
            )));
        };
        if client_tensor.dims() != entry.client_dims {
            return Err(FlError::InvalidConfig(format!(
                "{}: update shape {:?} does not match plan shape {:?}",
                entry.name,
                client_tensor.dims(),
                entry.client_dims
            )));
        }
        let sums = all_sums
            .get_mut(&entry.name)
            .ok_or_else(|| FlError::InvalidConfig(format!("unknown parameter {}", entry.name)))?;
        if sums.dims() != entry.global_dims {
            return Err(FlError::InvalidConfig(format!(
                "{}: aggregator shape {:?} does not match plan shape {:?}",
                entry.name,
                sums.dims(),
                entry.global_dims
            )));
        }
        let counts = all_counts
            .get_mut(&entry.name)
            .expect("initialised with all specs");
        entry.scatter_add(
            client_tensor.as_slice(),
            sums.as_mut_slice(),
            counts.as_mut_slice(),
            weight,
        );
    }
    Ok(())
}

/// Adds `weight * client` into `sums` (and `weight` into `counts`) at the
/// global positions described by the per-axis index lists.
fn accumulate_mapped(
    sums: &mut Tensor,
    counts: &mut Tensor,
    client: &Tensor,
    indices: &[Vec<usize>],
    weight: f32,
) -> FlResult<()> {
    let client_dims = client.dims().to_vec();
    let global_dims = sums.dims().to_vec();
    let global_strides = {
        let mut s = vec![1usize; global_dims.len()];
        for i in (0..global_dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * global_dims[i + 1];
        }
        s
    };
    let total: usize = client_dims.iter().product();
    let mut coord = vec![0usize; client_dims.len()];
    let client_data = client.as_slice();
    let sums_data = sums.as_mut_slice();
    let counts_data = counts.as_mut_slice();
    for (flat, &value) in client_data.iter().enumerate().take(total) {
        // Decode the client coordinate.
        let mut rem = flat;
        for (axis, &dim) in client_dims.iter().enumerate().rev() {
            coord[axis] = rem % dim;
            rem /= dim;
        }
        // Map to the global flat offset.
        let mut offset = 0usize;
        for (axis, &c) in coord.iter().enumerate() {
            let mapped = *indices
                .get(axis)
                .and_then(|idx| idx.get(c))
                .ok_or_else(|| FlError::InvalidConfig("index mapping out of range".into()))?;
            offset += mapped * global_strides[axis];
        }
        sums_data[offset] += weight * value;
        counts_data[offset] += weight;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_models::{InputKind, ModelFamily, ProxyConfig, ProxyModel};

    fn cifar_cfg() -> ProxyConfig {
        ProxyConfig::for_family(
            ModelFamily::ResNet50,
            InputKind::Image {
                channels: 3,
                height: 8,
                width: 8,
            },
            10,
            0,
        )
    }

    #[test]
    fn prefix_and_rolling_indices() {
        assert_eq!(WidthSelection::Prefix.indices(8, 4), vec![0, 1, 2, 3]);
        assert_eq!(
            WidthSelection::Rolling { shift: 6 }.indices(8, 4),
            vec![6, 7, 0, 1]
        );
        assert_eq!(
            WidthSelection::Rolling { shift: 0 }.indices(8, 2),
            vec![0, 1]
        );
        // Client wider than global is clamped.
        assert_eq!(WidthSelection::Prefix.indices(2, 5), vec![0, 1]);
    }

    #[test]
    fn axis_indices_validate_roles() {
        let roles = vec![AxisRole::OutFeatures, AxisRole::Fixed];
        let ok = axis_indices(&[8, 10], &[4, 10], &roles, WidthSelection::Prefix).unwrap();
        assert_eq!(ok[0], vec![0, 1, 2, 3]);
        assert_eq!(ok[1].len(), 10);
        // Shrinking a Fixed axis is rejected.
        assert!(axis_indices(&[8, 10], &[8, 5], &roles, WidthSelection::Prefix).is_err());
        // Rank mismatch is rejected.
        assert!(axis_indices(&[8, 10], &[8], &roles, WidthSelection::Prefix).is_err());
    }

    #[test]
    fn extract_submodel_loads_into_smaller_proxy() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let mut client = ProxyModel::new(cifar_cfg().with_width(0.5)).unwrap();
        let sub = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &client.param_specs(),
            WidthSelection::Prefix,
        )
        .unwrap();
        client.load_state_dict(&sub).unwrap();
        // The client's head weight equals the first columns of the global head.
        let g_head = global.state_dict().get("head.weight").unwrap().clone();
        let c_head = client.state_dict().get("head.weight").unwrap().clone();
        assert_eq!(c_head.dims()[0], g_head.dims()[0]);
        assert!(c_head.dims()[1] < g_head.dims()[1]);
        for r in 0..c_head.dims()[0] {
            for c in 0..c_head.dims()[1] {
                assert_eq!(c_head.at(&[r, c]).unwrap(), g_head.at(&[r, c]).unwrap());
            }
        }
    }

    #[test]
    fn rolling_extraction_differs_from_prefix() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let client_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();
        let prefix = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &client_specs,
            WidthSelection::Prefix,
        )
        .unwrap();
        let rolled = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &client_specs,
            WidthSelection::Rolling { shift: 3 },
        )
        .unwrap();
        assert!(prefix.l2_distance_sq(&rolled) > 0.0);
    }

    #[test]
    fn depth_submodel_is_name_subset() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let shallow = ProxyModel::new(cifar_cfg().with_depth(0.5)).unwrap();
        let sub = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &shallow.param_specs(),
            WidthSelection::Prefix,
        )
        .unwrap();
        assert!(sub.len() < global.state_dict().len());
        assert_eq!(sub.len(), shallow.param_specs().len());
    }

    #[test]
    fn aggregation_round_trip_recovers_average() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let global_sd = global.state_dict();

        // Two full-width clients with constant updates 1.0 and 3.0.
        let mut agg = ServerAggregator::new(specs.clone());
        let mut u1 = global_sd.clone();
        for (_, t) in u1.iter_mut() {
            *t = Tensor::full(t.dims(), 1.0);
        }
        let mut u2 = global_sd.clone();
        for (_, t) in u2.iter_mut() {
            *t = Tensor::full(t.dims(), 3.0);
        }
        agg.add_update(&u1, WidthSelection::Prefix, 1.0).unwrap();
        agg.add_update(&u2, WidthSelection::Prefix, 1.0).unwrap();
        let merged = agg.finalize(&global_sd).unwrap();
        for (_, t) in merged.iter() {
            for &v in t.as_slice() {
                assert!((v - 2.0).abs() < 1e-6);
            }
        }
        assert_eq!(agg.covered_params(), specs.len());
    }

    #[test]
    fn uncovered_entries_keep_previous_values() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let global_sd = global.state_dict();
        let half_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();

        let mut half_update =
            extract_submodel(&global_sd, &specs, &half_specs, WidthSelection::Prefix).unwrap();
        for (_, t) in half_update.iter_mut() {
            *t = Tensor::full(t.dims(), 5.0);
        }
        let mut agg = ServerAggregator::new(specs);
        agg.add_update(&half_update, WidthSelection::Prefix, 1.0)
            .unwrap();
        let merged = agg.finalize(&global_sd).unwrap();

        // Covered prefix entries become 5.0; the uncovered tail keeps old values.
        let head_new = merged.get("head.weight").unwrap();
        let head_old = global_sd.get("head.weight").unwrap();
        let half_cols = half_update.get("head.weight").unwrap().dims()[1];
        assert_eq!(head_new.at(&[0, 0]).unwrap(), 5.0);
        assert_eq!(
            head_new.at(&[0, half_cols + 1]).unwrap(),
            head_old.at(&[0, half_cols + 1]).unwrap()
        );
    }

    #[test]
    fn planned_extraction_matches_reference_bitwise() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let global_sd = global.state_dict();
        let specs = global.param_specs();
        for width in [0.25, 0.5, 1.0] {
            let client_specs = ProxyModel::new(cifar_cfg().with_width(width))
                .unwrap()
                .param_specs();
            for selection in [
                WidthSelection::Prefix,
                WidthSelection::Rolling { shift: 3 },
                WidthSelection::Rolling { shift: 11 },
            ] {
                let reference =
                    extract_submodel(&global_sd, &specs, &client_specs, selection).unwrap();
                let plan =
                    ExtractionPlan::for_client_specs(&specs, &client_specs, selection).unwrap();
                let planned = plan.extract(&global_sd).unwrap();
                assert_eq!(
                    reference, planned,
                    "planned extraction diverged (width {width}, {selection:?})"
                );
            }
        }
    }

    #[test]
    fn planned_aggregation_matches_reference_bitwise() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let global_sd = global.state_dict();
        let specs = global.param_specs();
        let half_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();
        for selection in [WidthSelection::Prefix, WidthSelection::Rolling { shift: 5 }] {
            let update = extract_submodel(&global_sd, &specs, &half_specs, selection).unwrap();
            let mut reference = ServerAggregator::new(specs.clone());
            reference.add_update(&update, selection, 2.5).unwrap();
            reference
                .add_update(&global_sd, WidthSelection::Prefix, 1.5)
                .unwrap();
            let mut planned = ServerAggregator::new(specs.clone());
            let plan = ExtractionPlan::for_state(&specs, &update, selection).unwrap();
            planned.add_update_with_plan(&update, &plan, 2.5).unwrap();
            let full_plan =
                ExtractionPlan::for_state(&specs, &global_sd, WidthSelection::Prefix).unwrap();
            planned
                .add_update_with_plan(&global_sd, &full_plan, 1.5)
                .unwrap();
            let ref_final = reference.finalize(&global_sd).unwrap();
            let plan_final = planned.finalize(&global_sd).unwrap();
            assert_eq!(ref_final, plan_final, "planned aggregation diverged");
            assert_eq!(reference.covered_params(), planned.covered_params());
        }
    }

    #[test]
    fn plan_rejects_unknown_parameters_on_extract_but_skips_on_scatter() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let mut state = StateDict::new();
        state.insert("not.a.param", Tensor::zeros(&[2]));
        let plan = ExtractionPlan::for_state(&specs, &state, WidthSelection::Prefix).unwrap();
        assert!(plan.is_empty());
        assert!(plan.extract(&global.state_dict()).is_err());
        // Scatter-add simply contributes nothing, like the reference path.
        let mut agg = ServerAggregator::new(specs);
        agg.add_update_with_plan(&state, &plan, 1.0).unwrap();
        assert_eq!(agg.covered_params(), 0);
    }

    #[test]
    fn plan_cache_reuses_and_distinguishes_selections() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let client_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();
        let cache = PlanCache::new();
        let a = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Prefix)
            .unwrap();
        let b = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Prefix)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical requests must share a plan");
        assert_eq!(cache.len(), 1);
        let c = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 1 })
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "selections must not collide");
        assert_eq!(cache.len(), 2);
        // The state-keyed lookup with the same shapes shares the cache slot.
        let sub = a.extract(&global.state_dict()).unwrap();
        let d = cache
            .for_state(&specs, &sub, WidthSelection::Prefix)
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &d),
            "spec- and state-keyed plans must share"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_cache_distinguishes_global_models_with_identical_client_shapes() {
        // A quarter-width client is extractable from both the full-width and
        // the half-width global; the two plans have identical client shapes
        // but different global strides, so they must not share a cache slot.
        let full = ProxyModel::new(cifar_cfg()).unwrap();
        let half = ProxyModel::new(cifar_cfg().with_width(0.5)).unwrap();
        let quarter_specs = ProxyModel::new(cifar_cfg().with_width(0.25))
            .unwrap()
            .param_specs();
        let cache = PlanCache::new();
        let from_full = cache
            .for_client_specs(&full.param_specs(), &quarter_specs, WidthSelection::Prefix)
            .unwrap();
        let from_half = cache
            .for_client_specs(&half.param_specs(), &quarter_specs, WidthSelection::Prefix)
            .unwrap();
        assert!(
            !Arc::ptr_eq(&from_full, &from_half),
            "plans for different global models must not collide"
        );
        assert_eq!(cache.len(), 2);
        // And each plan extracts correctly from its own global.
        let ref_full = extract_submodel(
            &full.state_dict(),
            &full.param_specs(),
            &quarter_specs,
            WidthSelection::Prefix,
        )
        .unwrap();
        assert_eq!(from_full.extract(&full.state_dict()).unwrap(), ref_full);
        let ref_half = extract_submodel(
            &half.state_dict(),
            &half.param_specs(),
            &quarter_specs,
            WidthSelection::Prefix,
        )
        .unwrap();
        assert_eq!(from_half.extract(&half.state_dict()).unwrap(), ref_half);
    }

    #[test]
    fn plan_cache_eviction_holds_the_cap_and_rebuilds_transparently() {
        // FedRolex mints a fresh rolling shift every round, so a long run
        // streams distinct keys through the cache; the cap must hold and an
        // evicted plan must come back bit-identical when re-requested.
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let client_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();
        let cache = PlanCache::new();
        let reference = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 0 })
            .unwrap();
        let reference_sub = reference.extract(&global.state_dict()).unwrap();

        // Stream well past the cap. The policy is second-chance: an insert
        // at the cap evicts exactly one cold entry, so the cache fills to
        // PLAN_CACHE_CAP and then holds there forever.
        let rounds = 3 * PLAN_CACHE_CAP + 7;
        for shift in 0..rounds {
            cache
                .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift })
                .unwrap();
            assert_eq!(
                cache.len(),
                (shift + 1).min(PLAN_CACHE_CAP),
                "second-chance occupancy must be deterministic (shift {shift})"
            );
        }

        // shift 0 was touched once early and never again, so three full
        // laps of the clock hand have evicted it: re-requesting it must
        // transparently rebuild a distinct Arc with identical behaviour.
        let len_before = cache.len();
        let rebuilt = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 0 })
            .unwrap();
        assert!(
            !Arc::ptr_eq(&reference, &rebuilt),
            "shift 0 should have been evicted and rebuilt, not retained"
        );
        assert_eq!(
            cache.len(),
            len_before,
            "an at-cap insert evicts one entry, so occupancy stays put"
        );
        assert_eq!(
            rebuilt.extract(&global.state_dict()).unwrap(),
            reference_sub,
            "a rebuilt plan must extract the exact same sub-model"
        );
        // And the rebuilt slot serves hits again.
        let hit = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 0 })
            .unwrap();
        assert!(Arc::ptr_eq(&rebuilt, &hit));
    }

    #[test]
    fn plan_cache_keeps_a_hot_key_across_eviction_cycles() {
        // The production access pattern is one hot plan (the dominant client
        // shape) amid a stream of one-shot rolling shifts. Second-chance
        // eviction must keep the hot plan cached: each re-request marks its
        // slot referenced, so the clock hand spares it and evicts a cold
        // one-shot entry instead.
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let client_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();
        let cache = PlanCache::new();
        let hot = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 0 })
            .unwrap();

        // Three full eviction laps of cold keys, re-touching the hot key
        // often enough (well under once per lap) to keep it referenced.
        let rounds = 3 * PLAN_CACHE_CAP;
        for round in 0..rounds {
            cache
                .for_client_specs(
                    &specs,
                    &client_specs,
                    WidthSelection::Rolling { shift: round + 1 },
                )
                .unwrap();
            if round % (PLAN_CACHE_CAP / 4) == 0 {
                let again = cache
                    .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 0 })
                    .unwrap();
                assert!(
                    Arc::ptr_eq(&hot, &again),
                    "hot plan evicted at round {round} despite steady re-use"
                );
            }
            assert!(cache.len() <= PLAN_CACHE_CAP);
        }
        let survivor = cache
            .for_client_specs(&specs, &client_specs, WidthSelection::Rolling { shift: 0 })
            .unwrap();
        assert!(
            Arc::ptr_eq(&hot, &survivor),
            "the hot plan must survive full eviction cycles"
        );
    }

    #[test]
    fn weighted_aggregation_respects_weights() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let global_sd = global.state_dict();
        let mut u1 = global_sd.clone();
        for (_, t) in u1.iter_mut() {
            *t = Tensor::full(t.dims(), 0.0);
        }
        let mut u2 = global_sd.clone();
        for (_, t) in u2.iter_mut() {
            *t = Tensor::full(t.dims(), 4.0);
        }
        let mut agg = ServerAggregator::new(specs);
        agg.add_update(&u1, WidthSelection::Prefix, 3.0).unwrap();
        agg.add_update(&u2, WidthSelection::Prefix, 1.0).unwrap();
        let merged = agg.finalize(&global_sd).unwrap();
        // Weighted mean = (3*0 + 1*4) / 4 = 1.0
        assert!((merged.get("head.bias").unwrap().as_slice()[0] - 1.0).abs() < 1e-6);
    }
}
