//! Width/depth sub-model extraction and overlap-aware aggregation.
//!
//! These are the two primitives every partial-aggregation MHFL algorithm is
//! built from:
//!
//! * [`extract_submodel`] slices a client-sized state dict out of the global
//!   model, choosing channel indices per width-scalable axis according to a
//!   [`WidthSelection`] (contiguous prefix for HeteroFL/Fjord, a rolling
//!   window for FedRolex). Depth-heterogeneous clients simply request fewer
//!   parameter names — the same code path handles them.
//! * [`ServerAggregator`] accumulates client updates back into the global
//!   coordinate space and averages every global entry by how many clients
//!   actually covered it, keeping the previous global value for uncovered
//!   entries (HeteroFL-style partial averaging).

use std::collections::BTreeMap;

use mhfl_nn::{AxisRole, ParamSpec, StateDict};
use mhfl_tensor::Tensor;

use crate::{FlError, FlResult};

/// How width-scalable axes choose which global channels a sub-model keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthSelection {
    /// The first `k` channels (nested sub-networks; HeteroFL, Fjord).
    Prefix,
    /// A window of `k` consecutive channels starting at `shift` (mod the full
    /// width), advanced every round (FedRolex).
    Rolling {
        /// Window offset, typically the round index.
        shift: usize,
    },
}

impl WidthSelection {
    /// The global indices a client axis of length `client_len` maps to, for a
    /// global axis of length `global_len`.
    pub fn indices(&self, global_len: usize, client_len: usize) -> Vec<usize> {
        match *self {
            WidthSelection::Prefix => (0..client_len.min(global_len)).collect(),
            WidthSelection::Rolling { shift } => (0..client_len.min(global_len))
                .map(|i| (shift + i) % global_len.max(1))
                .collect(),
        }
    }
}

/// Computes, for one parameter, the global index list of every axis of the
/// client tensor.
///
/// Axes whose client extent equals the global extent map to the identity;
/// width-scalable axes (`OutFeatures`/`InFeatures`) use `selection`; a size
/// mismatch on a `Fixed` axis is an error.
///
/// # Errors
/// Returns [`FlError::InvalidConfig`] when a fixed axis disagrees in size or
/// the ranks differ.
pub fn axis_indices(
    global_shape: &[usize],
    client_shape: &[usize],
    roles: &[AxisRole],
    selection: WidthSelection,
) -> FlResult<Vec<Vec<usize>>> {
    if global_shape.len() != client_shape.len() || roles.len() != global_shape.len() {
        return Err(FlError::InvalidConfig(format!(
            "rank mismatch: global {global_shape:?}, client {client_shape:?}"
        )));
    }
    global_shape
        .iter()
        .zip(client_shape.iter())
        .zip(roles.iter())
        .map(|((&g, &c), role)| {
            if c == g {
                Ok((0..g).collect())
            } else if c < g && matches!(role, AxisRole::OutFeatures | AxisRole::InFeatures) {
                Ok(selection.indices(g, c))
            } else {
                Err(FlError::InvalidConfig(format!(
                    "axis with role {role:?} cannot map client extent {c} onto global extent {g}"
                )))
            }
        })
        .collect()
}

/// Extracts the client-sized sub-model from the global state dict.
///
/// `client_specs` lists the parameters (names, shapes, roles) of the client's
/// model; every one of them must exist in `global_specs`/`global` with a
/// compatible shape.
///
/// # Errors
/// Returns an error if a client parameter is missing from the global model or
/// the shapes cannot be mapped.
pub fn extract_submodel(
    global: &StateDict,
    global_specs: &[ParamSpec],
    client_specs: &[ParamSpec],
    selection: WidthSelection,
) -> FlResult<StateDict> {
    let spec_index: BTreeMap<&str, &ParamSpec> =
        global_specs.iter().map(|s| (s.name.as_str(), s)).collect();
    let mut out = StateDict::new();
    for spec in client_specs {
        let global_spec = spec_index
            .get(spec.name.as_str())
            .ok_or_else(|| FlError::InvalidConfig(format!("global model lacks {}", spec.name)))?;
        let tensor = global.require(&spec.name)?;
        let indices = axis_indices(
            &global_spec.shape,
            &spec.shape,
            &global_spec.roles,
            selection,
        )?;
        let mut sliced = tensor.clone();
        for (axis, idx) in indices.iter().enumerate() {
            if idx.len() != sliced.dims()[axis] || idx.iter().enumerate().any(|(i, &v)| i != v) {
                sliced = sliced.gather_axis(axis, idx)?;
            }
        }
        out.insert(spec.name.clone(), sliced);
    }
    Ok(out)
}

/// Accumulates heterogeneous client updates into the global coordinate space
/// and produces the HeteroFL-style partial average.
#[derive(Debug, Clone)]
pub struct ServerAggregator {
    sums: BTreeMap<String, Tensor>,
    counts: BTreeMap<String, Tensor>,
    global_specs: Vec<ParamSpec>,
}

impl ServerAggregator {
    /// Creates an aggregator for a global model described by `global_specs`.
    pub fn new(global_specs: Vec<ParamSpec>) -> Self {
        let sums = global_specs
            .iter()
            .map(|s| (s.name.clone(), Tensor::zeros(&s.shape)))
            .collect();
        let counts = global_specs
            .iter()
            .map(|s| (s.name.clone(), Tensor::zeros(&s.shape)))
            .collect();
        ServerAggregator {
            sums,
            counts,
            global_specs,
        }
    }

    /// Adds one client's updated sub-model, weighted by `weight`
    /// (typically the client's sample count or 1.0).
    ///
    /// # Errors
    /// Returns an error if a client tensor cannot be mapped onto the global
    /// coordinate space.
    pub fn add_update(
        &mut self,
        client_update: &StateDict,
        selection: WidthSelection,
        weight: f32,
    ) -> FlResult<()> {
        let spec_index: BTreeMap<&str, &ParamSpec> = self
            .global_specs
            .iter()
            .map(|s| (s.name.as_str(), s))
            .collect();
        for (name, client_tensor) in client_update.iter() {
            let Some(spec) = spec_index.get(name.as_str()) else {
                // Parameters the global model does not track (e.g. client-only
                // personalisation heads) are simply skipped.
                continue;
            };
            let indices = axis_indices(&spec.shape, client_tensor.dims(), &spec.roles, selection)?;
            let sums = self.sums.get_mut(name).expect("initialised with all specs");
            let counts = self
                .counts
                .get_mut(name)
                .expect("initialised with all specs");
            accumulate_mapped(sums, counts, client_tensor, &indices, weight)?;
        }
        Ok(())
    }

    /// Number of parameters that received at least one contribution.
    pub fn covered_params(&self) -> usize {
        self.counts
            .values()
            .filter(|c| c.as_slice().iter().any(|&v| v > 0.0))
            .count()
    }

    /// Produces the new global state dict: covered entries become the
    /// weighted average of contributions, uncovered entries keep the previous
    /// global value.
    pub fn finalize(&self, previous_global: &StateDict) -> FlResult<StateDict> {
        let mut out = StateDict::new();
        for spec in &self.global_specs {
            let prev = previous_global.require(&spec.name)?;
            let sums = &self.sums[&spec.name];
            let counts = &self.counts[&spec.name];
            let data: Vec<f32> = prev
                .as_slice()
                .iter()
                .zip(sums.as_slice())
                .zip(counts.as_slice())
                .map(|((&p, &s), &c)| if c > 0.0 { s / c } else { p })
                .collect();
            out.insert(spec.name.clone(), Tensor::from_vec(data, &spec.shape)?);
        }
        Ok(out)
    }
}

/// Adds `weight * client` into `sums` (and `weight` into `counts`) at the
/// global positions described by the per-axis index lists.
fn accumulate_mapped(
    sums: &mut Tensor,
    counts: &mut Tensor,
    client: &Tensor,
    indices: &[Vec<usize>],
    weight: f32,
) -> FlResult<()> {
    let client_dims = client.dims().to_vec();
    let global_dims = sums.dims().to_vec();
    let global_strides = {
        let mut s = vec![1usize; global_dims.len()];
        for i in (0..global_dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * global_dims[i + 1];
        }
        s
    };
    let total: usize = client_dims.iter().product();
    let mut coord = vec![0usize; client_dims.len()];
    let client_data = client.as_slice();
    let sums_data = sums.as_mut_slice();
    let counts_data = counts.as_mut_slice();
    for (flat, &value) in client_data.iter().enumerate().take(total) {
        // Decode the client coordinate.
        let mut rem = flat;
        for (axis, &dim) in client_dims.iter().enumerate().rev() {
            coord[axis] = rem % dim;
            rem /= dim;
        }
        // Map to the global flat offset.
        let mut offset = 0usize;
        for (axis, &c) in coord.iter().enumerate() {
            let mapped = *indices
                .get(axis)
                .and_then(|idx| idx.get(c))
                .ok_or_else(|| FlError::InvalidConfig("index mapping out of range".into()))?;
            offset += mapped * global_strides[axis];
        }
        sums_data[offset] += weight * value;
        counts_data[offset] += weight;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_models::{InputKind, ModelFamily, ProxyConfig, ProxyModel};

    fn cifar_cfg() -> ProxyConfig {
        ProxyConfig::for_family(
            ModelFamily::ResNet50,
            InputKind::Image {
                channels: 3,
                height: 8,
                width: 8,
            },
            10,
            0,
        )
    }

    #[test]
    fn prefix_and_rolling_indices() {
        assert_eq!(WidthSelection::Prefix.indices(8, 4), vec![0, 1, 2, 3]);
        assert_eq!(
            WidthSelection::Rolling { shift: 6 }.indices(8, 4),
            vec![6, 7, 0, 1]
        );
        assert_eq!(
            WidthSelection::Rolling { shift: 0 }.indices(8, 2),
            vec![0, 1]
        );
        // Client wider than global is clamped.
        assert_eq!(WidthSelection::Prefix.indices(2, 5), vec![0, 1]);
    }

    #[test]
    fn axis_indices_validate_roles() {
        let roles = vec![AxisRole::OutFeatures, AxisRole::Fixed];
        let ok = axis_indices(&[8, 10], &[4, 10], &roles, WidthSelection::Prefix).unwrap();
        assert_eq!(ok[0], vec![0, 1, 2, 3]);
        assert_eq!(ok[1].len(), 10);
        // Shrinking a Fixed axis is rejected.
        assert!(axis_indices(&[8, 10], &[8, 5], &roles, WidthSelection::Prefix).is_err());
        // Rank mismatch is rejected.
        assert!(axis_indices(&[8, 10], &[8], &roles, WidthSelection::Prefix).is_err());
    }

    #[test]
    fn extract_submodel_loads_into_smaller_proxy() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let mut client = ProxyModel::new(cifar_cfg().with_width(0.5)).unwrap();
        let sub = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &client.param_specs(),
            WidthSelection::Prefix,
        )
        .unwrap();
        client.load_state_dict(&sub).unwrap();
        // The client's head weight equals the first columns of the global head.
        let g_head = global.state_dict().get("head.weight").unwrap().clone();
        let c_head = client.state_dict().get("head.weight").unwrap().clone();
        assert_eq!(c_head.dims()[0], g_head.dims()[0]);
        assert!(c_head.dims()[1] < g_head.dims()[1]);
        for r in 0..c_head.dims()[0] {
            for c in 0..c_head.dims()[1] {
                assert_eq!(c_head.at(&[r, c]).unwrap(), g_head.at(&[r, c]).unwrap());
            }
        }
    }

    #[test]
    fn rolling_extraction_differs_from_prefix() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let client_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();
        let prefix = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &client_specs,
            WidthSelection::Prefix,
        )
        .unwrap();
        let rolled = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &client_specs,
            WidthSelection::Rolling { shift: 3 },
        )
        .unwrap();
        assert!(prefix.l2_distance_sq(&rolled) > 0.0);
    }

    #[test]
    fn depth_submodel_is_name_subset() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let shallow = ProxyModel::new(cifar_cfg().with_depth(0.5)).unwrap();
        let sub = extract_submodel(
            &global.state_dict(),
            &global.param_specs(),
            &shallow.param_specs(),
            WidthSelection::Prefix,
        )
        .unwrap();
        assert!(sub.len() < global.state_dict().len());
        assert_eq!(sub.len(), shallow.param_specs().len());
    }

    #[test]
    fn aggregation_round_trip_recovers_average() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let global_sd = global.state_dict();

        // Two full-width clients with constant updates 1.0 and 3.0.
        let mut agg = ServerAggregator::new(specs.clone());
        let mut u1 = global_sd.clone();
        for (_, t) in u1.iter_mut() {
            *t = Tensor::full(t.dims(), 1.0);
        }
        let mut u2 = global_sd.clone();
        for (_, t) in u2.iter_mut() {
            *t = Tensor::full(t.dims(), 3.0);
        }
        agg.add_update(&u1, WidthSelection::Prefix, 1.0).unwrap();
        agg.add_update(&u2, WidthSelection::Prefix, 1.0).unwrap();
        let merged = agg.finalize(&global_sd).unwrap();
        for (_, t) in merged.iter() {
            for &v in t.as_slice() {
                assert!((v - 2.0).abs() < 1e-6);
            }
        }
        assert_eq!(agg.covered_params(), specs.len());
    }

    #[test]
    fn uncovered_entries_keep_previous_values() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let global_sd = global.state_dict();
        let half_specs = ProxyModel::new(cifar_cfg().with_width(0.5))
            .unwrap()
            .param_specs();

        let mut half_update =
            extract_submodel(&global_sd, &specs, &half_specs, WidthSelection::Prefix).unwrap();
        for (_, t) in half_update.iter_mut() {
            *t = Tensor::full(t.dims(), 5.0);
        }
        let mut agg = ServerAggregator::new(specs);
        agg.add_update(&half_update, WidthSelection::Prefix, 1.0)
            .unwrap();
        let merged = agg.finalize(&global_sd).unwrap();

        // Covered prefix entries become 5.0; the uncovered tail keeps old values.
        let head_new = merged.get("head.weight").unwrap();
        let head_old = global_sd.get("head.weight").unwrap();
        let half_cols = half_update.get("head.weight").unwrap().dims()[1];
        assert_eq!(head_new.at(&[0, 0]).unwrap(), 5.0);
        assert_eq!(
            head_new.at(&[0, half_cols + 1]).unwrap(),
            head_old.at(&[0, half_cols + 1]).unwrap()
        );
    }

    #[test]
    fn weighted_aggregation_respects_weights() {
        let global = ProxyModel::new(cifar_cfg()).unwrap();
        let specs = global.param_specs();
        let global_sd = global.state_dict();
        let mut u1 = global_sd.clone();
        for (_, t) in u1.iter_mut() {
            *t = Tensor::full(t.dims(), 0.0);
        }
        let mut u2 = global_sd.clone();
        for (_, t) in u2.iter_mut() {
            *t = Tensor::full(t.dims(), 4.0);
        }
        let mut agg = ServerAggregator::new(specs);
        agg.add_update(&u1, WidthSelection::Prefix, 3.0).unwrap();
        agg.add_update(&u2, WidthSelection::Prefix, 1.0).unwrap();
        let merged = agg.finalize(&global_sd).unwrap();
        // Weighted mean = (3*0 + 1*4) / 4 = 1.0
        assert!((merged.get("head.bias").unwrap().as_slice()[0] - 1.0).abs() < 1e-6);
    }
}
