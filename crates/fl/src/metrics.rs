//! The four evaluation metrics of the benchmark, plus per-client telemetry.

use serde::{Deserialize, Serialize};

use crate::fnv::Fnv1a;

/// Telemetry for one client's contribution to one server round: when it was
/// dispatched and when its update arrived on the simulated clock, how stale
/// the update was by the time the server folded it in, and how many bytes it
/// uploaded.
///
/// Synchronous rounds dispatch every selected client at the round start and
/// always record zero staleness; the asynchronous buffered engine records
/// the actual event times and the number of server aggregations that
/// completed while the update was in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientRoundStat {
    /// The client that produced the update.
    pub client: usize,
    /// The server round (aggregation) the update was folded into.
    pub round: usize,
    /// Simulated time at which the client was dispatched.
    pub dispatch_secs: f64,
    /// Simulated time at which the update reached the server.
    pub arrival_secs: f64,
    /// Server aggregations completed between dispatch and arrival.
    pub staleness: usize,
    /// Bytes the client uploaded (its payload's wire size).
    pub payload_bytes: u64,
}

impl ClientRoundStat {
    /// How long the client was busy (training + communicating) for this
    /// update, in simulated seconds.
    pub fn busy_secs(&self) -> f64 {
        (self.arrival_secs - self.dispatch_secs).max(0.0)
    }
}

/// Measurements recorded at one evaluation point of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Federated round index (1-based; round 0 is the initial state).
    pub round: usize,
    /// Simulated wall-clock time elapsed since the start of training, in
    /// seconds (each synchronous round costs the maximum of the selected
    /// clients' compute + communication time).
    pub sim_time_secs: f64,
    /// Accuracy of the global model on the held-out global test set.
    pub global_accuracy: f32,
    /// Accuracy of each client's deployed model on the global test set.
    pub per_client_accuracy: Vec<f32>,
    /// Per-client telemetry of every update aggregated since the previous
    /// evaluation point (inclusive of this record's round).
    pub client_stats: Vec<ClientRoundStat>,
}

/// The full metric record of one experiment, from which the paper's four
/// metrics are derived.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Evaluation records in round order.
    pub records: Vec<RoundRecord>,
    /// Name of the algorithm that produced the report.
    pub algorithm: String,
    /// Updates discarded for exceeding the engine's `max_staleness` bound
    /// (kept private so the digest, which predates the counter, stays
    /// byte-compatible with committed golden fixtures; see
    /// [`dropped_updates`](MetricsReport::dropped_updates)).
    dropped: usize,
}

impl MetricsReport {
    /// Creates an empty report for an algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        MetricsReport {
            records: Vec::new(),
            algorithm: algorithm.into(),
            dropped: 0,
        }
    }

    /// Appends an evaluation record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// Counts one update discarded under the engine's per-update
    /// [`max_staleness`](crate::EngineConfig::max_staleness) bound.
    pub(crate) fn note_dropped_update(&mut self) {
        self.dropped += 1;
    }

    /// Overwrites the dropped-update counter (the decode half of the
    /// durable-checkpoint codec; the counter is not derivable from records).
    pub(crate) fn set_dropped_updates(&mut self, dropped: usize) {
        self.dropped = dropped;
    }

    /// Number of updates the asynchronous engine discarded for exceeding
    /// the configured per-update staleness bound
    /// ([`EngineConfig::max_staleness`](crate::EngineConfig::max_staleness)).
    /// Always zero for synchronous runs and for the default unbounded
    /// configuration.
    ///
    /// Diagnostic only: dropped updates never reach aggregation, so they
    /// appear neither in [`client_stats`](MetricsReport::client_stats) nor
    /// in [`digest`](MetricsReport::digest) (which keeps pre-existing golden
    /// fixtures valid).
    pub fn dropped_updates(&self) -> usize {
        self.dropped
    }

    /// Metric (i): final global accuracy (last evaluation point).
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.global_accuracy)
    }

    /// Best global accuracy seen at any evaluation point.
    pub fn best_accuracy(&self) -> f32 {
        self.records
            .iter()
            .map(|r| r.global_accuracy)
            .fold(0.0, f32::max)
    }

    /// Metric (ii): time-to-accuracy — the simulated wall-clock time at which
    /// the global model first reached `target` accuracy, or `None` if it
    /// never did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.global_accuracy >= target)
            .map(|r| r.sim_time_secs)
    }

    /// Metric (iii): stability — the variance of the final per-client
    /// accuracies (lower is more stable across heterogeneous devices).
    pub fn stability(&self) -> f32 {
        let Some(last) = self.records.last() else {
            return 0.0;
        };
        variance(&last.per_client_accuracy)
    }

    /// Metric (iv): effectiveness — the improvement of the final global
    /// accuracy over the resource-aware homogeneous baseline's accuracy.
    pub fn effectiveness(&self, baseline_accuracy: f32) -> f32 {
        self.final_accuracy() - baseline_accuracy
    }

    /// Total simulated training time of the run.
    pub fn total_sim_time_secs(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.sim_time_secs)
    }

    /// The global-accuracy learning curve as `(sim_time, accuracy)` points.
    pub fn accuracy_curve(&self) -> Vec<(f64, f32)> {
        self.records
            .iter()
            .map(|r| (r.sim_time_secs, r.global_accuracy))
            .collect()
    }

    /// Every per-client telemetry record of the run, in aggregation order.
    pub fn client_stats(&self) -> impl Iterator<Item = &ClientRoundStat> {
        self.records.iter().flat_map(|r| r.client_stats.iter())
    }

    /// Mean staleness (in server rounds) over every aggregated update; `0.0`
    /// for an empty report and for any fully synchronous run.
    pub fn mean_staleness(&self) -> f64 {
        let (sum, count) = self
            .client_stats()
            .fold((0usize, 0usize), |(s, n), stat| (s + stat.staleness, n + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Total bytes uploaded by clients over the run.
    pub fn total_payload_bytes(&self) -> u64 {
        self.client_stats().map(|s| s.payload_bytes).sum()
    }

    /// Per-client participation counts over the whole run: how many
    /// aggregated updates each client contributed, as `(client, count)`
    /// pairs in ascending client order. Clients that never participated do
    /// not appear (use [`participation_fairness`] to reason about them).
    ///
    /// Under uniform sampling every client's count concentrates around
    /// `rounds × sample_ratio`; cost-sensitive policies (bandwidth-aware,
    /// fastest-of-k) and the asynchronous engine skew the distribution
    /// toward cheap/fast clients — this accessor is the raw material for
    /// quantifying that selection bias.
    ///
    /// [`participation_fairness`]: MetricsReport::participation_fairness
    pub fn participation_counts(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for stat in self.client_stats() {
            *counts.entry(stat.client).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Jain's fairness index of the per-client participation counts over a
    /// population of `num_clients`: `(Σxᵢ)² / (n · Σxᵢ²)`, counting clients
    /// that never participated as zeros.
    ///
    /// `1.0` means perfectly even participation; `1/n` means a single
    /// client did all the work. Returns `0.0` for an empty report or a
    /// zero-client population.
    pub fn participation_fairness(&self, num_clients: usize) -> f64 {
        if num_clients == 0 {
            return 0.0;
        }
        let counts = self.participation_counts();
        let sum: f64 = counts.iter().map(|&(_, c)| c as f64).sum();
        let sum_sq: f64 = counts.iter().map(|&(_, c)| (c as f64) * (c as f64)).sum();
        if sum_sq == 0.0 {
            return 0.0;
        }
        (sum * sum) / (num_clients as f64 * sum_sq)
    }

    /// A canonical 64-bit digest of the full report: every field of every
    /// record — including per-client telemetry — is folded bit-exactly
    /// (`f32::to_bits`/`f64::to_bits`) into an FNV-1a hash.
    ///
    /// Two reports have equal digests iff they are byte-identical, which is
    /// what the golden-trace regression harness (`tests/golden.rs`) pins per
    /// seed: any kernel or scheduling change that alters even one ULP of one
    /// metric changes the digest.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.algorithm.as_bytes());
        h.write_u64(self.records.len() as u64);
        for record in &self.records {
            h.write_u64(record.round as u64);
            h.write_u64(record.sim_time_secs.to_bits());
            h.write_u32(record.global_accuracy.to_bits());
            h.write_u64(record.per_client_accuracy.len() as u64);
            for acc in &record.per_client_accuracy {
                h.write_u32(acc.to_bits());
            }
            h.write_u64(record.client_stats.len() as u64);
            for stat in &record.client_stats {
                h.write_u64(stat.client as u64);
                h.write_u64(stat.round as u64);
                h.write_u64(stat.dispatch_secs.to_bits());
                h.write_u64(stat.arrival_secs.to_bits());
                h.write_u64(stat.staleness as u64);
                h.write_u64(stat.payload_bytes);
            }
        }
        h.finish()
    }

    /// Client-slot utilisation: the fraction of available client-slot time
    /// spent training or communicating, `sum(busy) / (peak_concurrency ×
    /// span)`, where the span runs from the **first dispatch** to the last
    /// arrival — slots don't exist before anything is dispatched, so a run
    /// whose first round starts late (an availability trace waiting out an
    /// all-offline window, a resumed session) is not penalised for clock
    /// time during which no client could have been busy. A fully
    /// synchronous run is dragged below `1.0` by stragglers (fast clients
    /// idle until the slowest finishes); the asynchronous engine recovers
    /// that idle time by refilling slots as updates arrive. Returns `0.0`
    /// when the report carries no telemetry.
    pub fn utilisation(&self) -> f64 {
        let mut events: Vec<(f64, i32)> = Vec::new();
        let mut busy = 0.0f64;
        let mut first_dispatch = f64::INFINITY;
        let mut span_end = 0.0f64;
        for stat in self.client_stats() {
            busy += stat.busy_secs();
            first_dispatch = first_dispatch.min(stat.dispatch_secs);
            span_end = span_end.max(stat.arrival_secs);
            events.push((stat.dispatch_secs, 1));
            events.push((stat.arrival_secs, -1));
        }
        let span = span_end - first_dispatch;
        if events.is_empty() || span <= 0.0 {
            return 0.0;
        }
        // Departures sort before arrivals at the same instant so back-to-back
        // reuse of a slot does not inflate the peak.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut current = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            current += i64::from(delta);
            peak = peak.max(current);
        }
        busy / (peak.max(1) as f64 * span)
    }
}

fn variance(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    // Accumulate in f64: summing thousands of f32 accuracies (or any
    // large-magnitude inputs) in f32 cancels catastrophically — the mean
    // itself absorbs the error and the squared deviations come out wildly
    // wrong (see the regression test below).
    let len = values.len() as f64;
    let mean = values.iter().map(|&v| f64::from(v)).sum::<f64>() / len;
    let var = values
        .iter()
        .map(|&v| {
            let d = f64::from(v) - mean;
            d * d
        })
        .sum::<f64>()
        / len;
    var as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(
        client: usize,
        round: usize,
        dispatch: f64,
        arrival: f64,
        staleness: usize,
        bytes: u64,
    ) -> ClientRoundStat {
        ClientRoundStat {
            client,
            round,
            dispatch_secs: dispatch,
            arrival_secs: arrival,
            staleness,
            payload_bytes: bytes,
        }
    }

    fn report() -> MetricsReport {
        let mut r = MetricsReport::new("TestAlg");
        r.push(RoundRecord {
            round: 1,
            sim_time_secs: 10.0,
            global_accuracy: 0.2,
            per_client_accuracy: vec![0.2, 0.2],
            client_stats: vec![stat(0, 1, 0.0, 4.0, 0, 100), stat(1, 1, 0.0, 10.0, 0, 200)],
        });
        r.push(RoundRecord {
            round: 2,
            sim_time_secs: 20.0,
            global_accuracy: 0.5,
            per_client_accuracy: vec![0.4, 0.6],
            client_stats: vec![
                stat(0, 2, 10.0, 14.0, 1, 100),
                stat(1, 2, 10.0, 20.0, 1, 200),
            ],
        });
        r.push(RoundRecord {
            round: 3,
            sim_time_secs: 30.0,
            global_accuracy: 0.45,
            per_client_accuracy: vec![0.5, 0.4],
            client_stats: vec![
                stat(0, 3, 20.0, 24.0, 0, 100),
                stat(1, 3, 20.0, 30.0, 2, 200),
            ],
        });
        r
    }

    #[test]
    fn final_and_best_accuracy() {
        let r = report();
        assert_eq!(r.final_accuracy(), 0.45);
        assert_eq!(r.best_accuracy(), 0.5);
        assert_eq!(r.total_sim_time_secs(), 30.0);
        assert_eq!(r.accuracy_curve().len(), 3);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = report();
        assert_eq!(r.time_to_accuracy(0.4), Some(20.0));
        assert_eq!(r.time_to_accuracy(0.19), Some(10.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn stability_is_variance_of_last_round() {
        let r = report();
        let expected = {
            let vals = [0.5f32, 0.4];
            let mean = 0.45;
            ((vals[0] - mean).powi(2) + (vals[1] - mean).powi(2)) / 2.0
        };
        assert!((r.stability() - expected).abs() < 1e-7);
    }

    #[test]
    fn variance_survives_large_magnitude_inputs() {
        // Values of the form 100_000 + {0, 1, 2} have true variance 2/3
        // regardless of the offset. The old all-f32 accumulator cancels
        // catastrophically here: the running sum reaches ~1e11, where one
        // f32 ULP is thousands of times larger than the per-value signal,
        // so the mean (and with it every squared deviation) is garbage.
        let values: Vec<f32> = (0..1_000_000).map(|i| 100_000.0 + (i % 3) as f32).collect();
        let f32_mean = values.iter().sum::<f32>() / values.len() as f32;
        let f32_var = values
            .iter()
            .map(|v| (v - f32_mean) * (v - f32_mean))
            .sum::<f32>()
            / values.len() as f32;
        assert!(
            (f32_var - 2.0 / 3.0).abs() > 0.5,
            "old accumulator is expected to be wrong here (got {f32_var}); \
             if this starts passing, the regression guard below is vacuous"
        );
        let var = variance(&values);
        assert!(
            (var - 2.0 / 3.0).abs() < 1e-3,
            "f64 accumulation must recover the true variance, got {var}"
        );
    }

    #[test]
    fn effectiveness_compares_to_baseline() {
        let r = report();
        assert!((r.effectiveness(0.30) - 0.15).abs() < 1e-6);
        assert!(r.effectiveness(0.50) < 0.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = MetricsReport::new("Empty");
        assert_eq!(r.final_accuracy(), 0.0);
        assert_eq!(r.stability(), 0.0);
        assert_eq!(r.time_to_accuracy(0.1), None);
        assert_eq!(r.mean_staleness(), 0.0);
        assert_eq!(r.total_payload_bytes(), 0);
        assert_eq!(r.utilisation(), 0.0);
        assert_eq!(r.dropped_updates(), 0);
    }

    #[test]
    fn dropped_updates_count_but_do_not_move_the_digest() {
        let mut r = report();
        let digest = r.digest();
        r.note_dropped_update();
        r.note_dropped_update();
        assert_eq!(r.dropped_updates(), 2);
        // The counter is diagnostic: golden fixtures pre-date it and must
        // keep matching.
        assert_eq!(r.digest(), digest);
    }

    #[test]
    fn telemetry_aggregates_over_all_records() {
        let r = report();
        assert_eq!(r.client_stats().count(), 6);
        // Stalenesses: 0, 0, 1, 1, 0, 2.
        assert!((r.mean_staleness() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.total_payload_bytes(), 3 * 100 + 3 * 200);
    }

    #[test]
    fn participation_counts_and_fairness() {
        let r = report();
        // Clients 0 and 1 each contributed three updates.
        assert_eq!(r.participation_counts(), vec![(0, 3), (1, 3)]);
        // Perfectly even over a two-client population.
        assert!((r.participation_fairness(2) - 1.0).abs() < 1e-12);
        // Over a larger population the never-selected clients drag it down:
        // (6)^2 / (4 * 18) = 0.5.
        assert!((r.participation_fairness(4) - 0.5).abs() < 1e-12);
        // Degenerate inputs are safe.
        assert_eq!(r.participation_fairness(0), 0.0);
        let empty = MetricsReport::new("Empty");
        assert!(empty.participation_counts().is_empty());
        assert_eq!(empty.participation_fairness(10), 0.0);
        // A single client doing all the work scores 1/n.
        let mut skewed = MetricsReport::new("Skewed");
        skewed.push(RoundRecord {
            round: 1,
            sim_time_secs: 1.0,
            global_accuracy: 0.1,
            per_client_accuracy: vec![],
            client_stats: vec![stat(7, 1, 0.0, 1.0, 0, 10), stat(7, 1, 0.0, 1.0, 0, 10)],
        });
        assert_eq!(skewed.participation_counts(), vec![(7, 2)]);
        assert!((skewed.participation_fairness(5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn digest_is_stable_and_bit_sensitive() {
        let r = report();
        assert_eq!(r.digest(), r.digest(), "digest must be deterministic");
        assert_eq!(r.digest(), r.clone().digest());
        // One-ULP changes anywhere in the report change the digest.
        let mut nudged = report();
        let acc = nudged.records[1].global_accuracy;
        nudged.records[1].global_accuracy = f32::from_bits(acc.to_bits() + 1);
        assert_ne!(r.digest(), nudged.digest());
        let mut stat_nudged = report();
        stat_nudged.records[2].client_stats[1].payload_bytes += 1;
        assert_ne!(r.digest(), stat_nudged.digest());
        // Different algorithm names differ even with identical records.
        let mut renamed = report();
        renamed.algorithm = "OtherAlg".into();
        assert_ne!(r.digest(), renamed.digest());
        // Empty reports still digest (and differ by name).
        assert_ne!(
            MetricsReport::new("A").digest(),
            MetricsReport::new("B").digest()
        );
    }

    #[test]
    fn utilisation_reflects_straggler_idle_time() {
        let r = report();
        // Two slots over a 30 s span; busy time = (4+10) + (4+10) + (4+10).
        let expected = 42.0 / (2.0 * 30.0);
        assert!(
            (r.utilisation() - expected).abs() < 1e-12,
            "utilisation {} vs expected {expected}",
            r.utilisation()
        );
        // Fully packed slots hit exactly 1.0.
        let mut packed = MetricsReport::new("Packed");
        packed.push(RoundRecord {
            round: 1,
            sim_time_secs: 10.0,
            global_accuracy: 0.5,
            per_client_accuracy: vec![],
            client_stats: vec![stat(0, 1, 0.0, 10.0, 0, 1), stat(1, 1, 0.0, 10.0, 0, 1)],
        });
        assert!((packed.utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilisation_span_starts_at_first_dispatch_not_time_zero() {
        // A run whose first dispatch happens at t = 1000 (e.g. an
        // availability trace kept everyone offline until then) must score
        // exactly like the same workload dispatched at t = 0: the span is
        // measured from the first dispatch, not the start of the clock.
        let shifted = |offset: f64| {
            let mut r = MetricsReport::new("Offset");
            r.push(RoundRecord {
                round: 1,
                sim_time_secs: offset + 30.0,
                global_accuracy: 0.5,
                per_client_accuracy: vec![],
                client_stats: vec![
                    stat(0, 1, offset, offset + 10.0, 0, 1),
                    stat(1, 1, offset + 10.0, offset + 30.0, 0, 1),
                ],
            });
            r
        };
        let at_zero = shifted(0.0).utilisation();
        let at_thousand = shifted(1000.0).utilisation();
        assert!((at_zero - 1.0).abs() < 1e-12, "slots are packed: {at_zero}");
        assert!(
            (at_thousand - at_zero).abs() < 1e-9,
            "offset start changed utilisation: {at_thousand} vs {at_zero}"
        );
        // Degenerate single-instant telemetry (dispatch == arrival) has no
        // span and reports zero instead of dividing by it.
        let mut instant = MetricsReport::new("Instant");
        instant.push(RoundRecord {
            round: 1,
            sim_time_secs: 5.0,
            global_accuracy: 0.5,
            per_client_accuracy: vec![],
            client_stats: vec![stat(0, 1, 5.0, 5.0, 0, 1)],
        });
        assert_eq!(instant.utilisation(), 0.0);
    }
}
