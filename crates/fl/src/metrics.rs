//! The four evaluation metrics of the benchmark.

use serde::{Deserialize, Serialize};

/// Measurements recorded at one evaluation point of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Federated round index (1-based; round 0 is the initial state).
    pub round: usize,
    /// Simulated wall-clock time elapsed since the start of training, in
    /// seconds (each synchronous round costs the maximum of the selected
    /// clients' compute + communication time).
    pub sim_time_secs: f64,
    /// Accuracy of the global model on the held-out global test set.
    pub global_accuracy: f32,
    /// Accuracy of each client's deployed model on the global test set.
    pub per_client_accuracy: Vec<f32>,
}

/// The full metric record of one experiment, from which the paper's four
/// metrics are derived.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Evaluation records in round order.
    pub records: Vec<RoundRecord>,
    /// Name of the algorithm that produced the report.
    pub algorithm: String,
}

impl MetricsReport {
    /// Creates an empty report for an algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        MetricsReport {
            records: Vec::new(),
            algorithm: algorithm.into(),
        }
    }

    /// Appends an evaluation record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// Metric (i): final global accuracy (last evaluation point).
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.global_accuracy)
    }

    /// Best global accuracy seen at any evaluation point.
    pub fn best_accuracy(&self) -> f32 {
        self.records
            .iter()
            .map(|r| r.global_accuracy)
            .fold(0.0, f32::max)
    }

    /// Metric (ii): time-to-accuracy — the simulated wall-clock time at which
    /// the global model first reached `target` accuracy, or `None` if it
    /// never did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.global_accuracy >= target)
            .map(|r| r.sim_time_secs)
    }

    /// Metric (iii): stability — the variance of the final per-client
    /// accuracies (lower is more stable across heterogeneous devices).
    pub fn stability(&self) -> f32 {
        let Some(last) = self.records.last() else {
            return 0.0;
        };
        variance(&last.per_client_accuracy)
    }

    /// Metric (iv): effectiveness — the improvement of the final global
    /// accuracy over the resource-aware homogeneous baseline's accuracy.
    pub fn effectiveness(&self, baseline_accuracy: f32) -> f32 {
        self.final_accuracy() - baseline_accuracy
    }

    /// Total simulated training time of the run.
    pub fn total_sim_time_secs(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.sim_time_secs)
    }

    /// The global-accuracy learning curve as `(sim_time, accuracy)` points.
    pub fn accuracy_curve(&self) -> Vec<(f64, f32)> {
        self.records
            .iter()
            .map(|r| (r.sim_time_secs, r.global_accuracy))
            .collect()
    }
}

fn variance(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MetricsReport {
        let mut r = MetricsReport::new("TestAlg");
        r.push(RoundRecord {
            round: 1,
            sim_time_secs: 10.0,
            global_accuracy: 0.2,
            per_client_accuracy: vec![0.2, 0.2],
        });
        r.push(RoundRecord {
            round: 2,
            sim_time_secs: 20.0,
            global_accuracy: 0.5,
            per_client_accuracy: vec![0.4, 0.6],
        });
        r.push(RoundRecord {
            round: 3,
            sim_time_secs: 30.0,
            global_accuracy: 0.45,
            per_client_accuracy: vec![0.5, 0.4],
        });
        r
    }

    #[test]
    fn final_and_best_accuracy() {
        let r = report();
        assert_eq!(r.final_accuracy(), 0.45);
        assert_eq!(r.best_accuracy(), 0.5);
        assert_eq!(r.total_sim_time_secs(), 30.0);
        assert_eq!(r.accuracy_curve().len(), 3);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = report();
        assert_eq!(r.time_to_accuracy(0.4), Some(20.0));
        assert_eq!(r.time_to_accuracy(0.19), Some(10.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn stability_is_variance_of_last_round() {
        let r = report();
        let expected = {
            let vals = [0.5f32, 0.4];
            let mean = 0.45;
            ((vals[0] - mean).powi(2) + (vals[1] - mean).powi(2)) / 2.0
        };
        assert!((r.stability() - expected).abs() < 1e-7);
    }

    #[test]
    fn effectiveness_compares_to_baseline() {
        let r = report();
        assert!((r.effectiveness(0.30) - 0.15).abs() < 1e-6);
        assert!(r.effectiveness(0.50) < 0.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = MetricsReport::new("Empty");
        assert_eq!(r.final_accuracy(), 0.0);
        assert_eq!(r.stability(), 0.0);
        assert_eq!(r.time_to_accuracy(0.1), None);
    }
}
