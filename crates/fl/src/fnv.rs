//! Crate-private 64-bit FNV-1a hashing.
//!
//! In-tree because the offline container has no hashing crates; the
//! constants are the standard FNV-1a parameters, so digests are stable
//! across platforms and runs. Shared by the canonical
//! [`MetricsReport::digest`](crate::MetricsReport::digest) and the
//! [`PlanCache`](crate::submodel::PlanCache) key so the two cannot drift.

pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let hash = |s: &str| {
            let mut h = Fnv1a::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash("foobar"), 0x85944171f73967e8);
    }
}
