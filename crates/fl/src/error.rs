//! Error type for the federated engine.

use std::fmt;

use mhfl_nn::NnError;
use mhfl_tensor::TensorError;

use crate::persist::PersistError;

/// Errors produced while running a federated experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The experiment configuration is inconsistent (e.g. no clients).
    InvalidConfig(String),
    /// An algorithm was asked about a client it does not manage.
    UnknownClient(usize),
    /// A durable-checkpoint operation failed (I/O, corruption, or a
    /// format/fingerprint mismatch — see [`PersistError`]).
    Persist(PersistError),
    /// A distributed-execution failure surfaced by a remote client runner:
    /// every worker died mid-round, a protocol violation, or a transport
    /// error that rescheduling could not absorb.
    Remote(String),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "neural network error: {e}"),
            FlError::Tensor(e) => write!(f, "tensor error: {e}"),
            FlError::InvalidConfig(msg) => write!(f, "invalid federated configuration: {msg}"),
            FlError::UnknownClient(id) => write!(f, "unknown client id {id}"),
            FlError::Persist(e) => write!(f, "checkpoint persistence error: {e}"),
            FlError::Remote(msg) => write!(f, "remote execution error: {msg}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Tensor(e) => Some(e),
            FlError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<TensorError> for FlError {
    fn from(e: TensorError) -> Self {
        FlError::Tensor(e)
    }
}

impl From<PersistError> for FlError {
    fn from(e: PersistError) -> Self {
        FlError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlError::InvalidConfig("no clients".into());
        assert!(e.to_string().contains("no clients"));
        let e = FlError::UnknownClient(7);
        assert!(e.to_string().contains('7'));
        let nn: FlError = NnError::MissingParam("x".into()).into();
        assert!(nn.to_string().contains('x'));
    }
}
