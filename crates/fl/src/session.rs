//! The streaming session driver: one event loop for both execution modes,
//! with checkpoint/resume.
//!
//! [`FlEngine::run`] used to be a single blocking call; a multi-hour
//! paper-scale run could not be observed mid-flight, stopped early, or
//! resumed after an interruption. [`Session`] replaces that with an
//! iterator-like state machine: [`FlEngine::session`] returns a driver that
//! advances the simulation one event at a time and yields typed
//! [`RoundEvent`]s — `run()` survives as `session().drain()`.
//!
//! Both execution modes share **one** driver. The event-driven core keeps a
//! heap of in-flight [`Arrival`]s and a buffer of landed updates, and
//! aggregates when the buffer reaches a flush threshold:
//!
//! * [`Execution::AsyncBuffered`] is the native shape — `concurrency` slots
//!   refilled via the scheduler's incremental hooks, flush at `buffer_size`,
//!   the clock following arrival events;
//! * [`Execution::Synchronous`] is the special case where a whole round is
//!   dispatched at once ([`ClientScheduler::plan_round`]), the flush
//!   threshold is "everything dispatched this round", updates are aggregated
//!   in selection order, and the clock advances by the scheduler-reported
//!   round duration when the round closes.
//!
//! The collapse is *observable-equivalent by construction*: the golden-trace
//! harness (`tests/golden.rs`) pins that reports produced through the
//! session driver are bitwise identical to the pre-session engine in both
//! modes.
//!
//! [`Session::checkpoint`] snapshots the full run state — the algorithm's
//! [`AlgorithmState`], the in-flight arrival heap and aggregation buffer,
//! RNG stream, simulated clock, and the report so far — such that a run
//! restored with [`Session::restore`] produces a bitwise-identical
//! [`MetricsReport::digest`] to the uninterrupted run.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use mhfl_tensor::{RngState, SeededRng};
use serde::{Deserialize, Serialize};

use crate::adversary::Corruption;
use crate::observer::Observer;
use crate::parallel::{ClientRunner, InProcessRunner};
use crate::schedule::CandidatePool;
use crate::store::ClientSet;
use crate::{
    AlgorithmState, ClientRoundStat, ClientScheduler, ClientUpdate, EngineConfig, Execution,
    FederationContext, FlAlgorithm, FlEngine, FlError, FlResult, MetricsReport, RoundRecord,
};

/// Consecutive idle clock advances (no client dispatchable, nothing in
/// flight) after which an asynchronous run gives up instead of spinning
/// forever — only reachable when the availability trace keeps every client
/// offline for this many slots in a row.
const MAX_IDLE_ADVANCES: usize = 10_000;

/// Salt for the per-dispatch churn stream, disjoint from every honest
/// simulation stream and from the corruption salts.
const CHURN_SALT: u64 = 0xBAD5_EED5_0000_0003;

/// One typed occurrence on the simulated clock, yielded by
/// [`Session::next_event`] in emission order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RoundEvent {
    /// A server round began accumulating updates. Synchronous rounds start
    /// when the scheduler plans them; asynchronous "rounds" (aggregations)
    /// start at run begin and after each flush.
    RoundStarted {
        /// The 1-based round about to be aggregated.
        round: usize,
        /// Simulated time at the round start.
        sim_time_secs: f64,
    },
    /// A client was dispatched (its local training charged to the simulated
    /// clock from this instant).
    ClientDispatched {
        /// The round the client's update will be attributed to if it is
        /// aggregated without growing stale.
        round: usize,
        /// The dispatched client.
        client: usize,
        /// Simulated dispatch time.
        sim_time_secs: f64,
    },
    /// A client's update reached the server and entered the aggregation
    /// buffer.
    UpdateArrived {
        /// The round the update will be folded into.
        round: usize,
        /// The client that produced the update.
        client: usize,
        /// Simulated arrival time.
        sim_time_secs: f64,
        /// Server aggregations completed while the update was in flight.
        staleness: usize,
    },
    /// A client's update was discarded for exceeding the configured
    /// [`max_staleness`](EngineConfig::max_staleness) bound (asynchronous
    /// execution only).
    UpdateDropped {
        /// The round during which the update arrived.
        round: usize,
        /// The client whose update was dropped.
        client: usize,
        /// Simulated arrival time.
        sim_time_secs: f64,
        /// The update's staleness (strictly above the configured bound).
        staleness: usize,
    },
    /// A dispatched client dropped out mid-round (churn): its update never
    /// reaches the server. Distinct from [`UpdateDropped`](RoundEvent::UpdateDropped),
    /// which is the server discarding an update that *did* arrive too stale.
    /// Asynchronous executions refill the freed slot so the run does not
    /// stall; synchronous rounds shrink their flush threshold by one.
    ClientChurned {
        /// The round the client's update would have been attributed to.
        round: usize,
        /// The client that dropped out.
        client: usize,
        /// Simulated time at which the dropout was detected (the would-be
        /// arrival time — the server notices a straggler by its absence).
        sim_time_secs: f64,
    },
    /// The server folded a buffer of updates into the global state.
    Aggregated {
        /// The 1-based round that just completed aggregation.
        round: usize,
        /// Simulated time of the aggregation.
        sim_time_secs: f64,
        /// Number of updates aggregated (zero for a skipped synchronous
        /// round).
        num_updates: usize,
    },
    /// A round finished. Carries the [`RoundRecord`] when the round was an
    /// evaluation point ([`EngineConfig::eval_every`]), `None` otherwise.
    RoundCompleted {
        /// The 1-based round that completed.
        round: usize,
        /// Simulated time at round completion.
        sim_time_secs: f64,
        /// The evaluation record, on evaluation rounds.
        record: Option<RoundRecord>,
    },
    /// The run ended — all rounds completed, an observer requested an early
    /// stop, or the availability horizon was exhausted. Always the final
    /// event of a session.
    RunCompleted {
        /// The full metric report of the run.
        report: MetricsReport,
    },
}

impl RoundEvent {
    /// Short variant name (for logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            RoundEvent::RoundStarted { .. } => "round-started",
            RoundEvent::ClientDispatched { .. } => "client-dispatched",
            RoundEvent::UpdateArrived { .. } => "update-arrived",
            RoundEvent::UpdateDropped { .. } => "update-dropped",
            RoundEvent::ClientChurned { .. } => "client-churned",
            RoundEvent::Aggregated { .. } => "aggregated",
            RoundEvent::RoundCompleted { .. } => "round-completed",
            RoundEvent::RunCompleted { .. } => "run-completed",
        }
    }
}

/// One in-flight client update travelling towards the server.
#[derive(Debug, Clone)]
pub(crate) struct Arrival {
    /// Simulated time at which the update reaches the server.
    pub(crate) time: f64,
    /// Dispatch sequence number: selection order within a synchronous round
    /// and a deterministic FIFO tie-break for simultaneous arrivals.
    pub(crate) seq: u64,
    /// Simulated time the client was dispatched.
    pub(crate) dispatched_at: f64,
    /// Server version (completed aggregations) at dispatch.
    pub(crate) dispatched_version: usize,
    /// The computed update.
    pub(crate) update: ClientUpdate,
}

impl PartialEq for Arrival {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Arrival {}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we pop earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A landed update waiting in the aggregation buffer.
#[derive(Debug, Clone)]
pub(crate) struct Buffered {
    /// Dispatch sequence number (synchronous flushes restore selection
    /// order by this key).
    pub(crate) seq: u64,
    pub(crate) update: ClientUpdate,
    pub(crate) stat: ClientRoundStat,
}

/// Mode-specific driver parameters: how updates are dispatched, when the
/// buffer flushes, and how the clock advances at a flush.
#[derive(Debug, Clone, Copy)]
enum DriveMode {
    /// Whole rounds at a time; flush when every dispatched client of the
    /// open round has landed; clock jumps to the scheduler-reported round
    /// end.
    Sync {
        /// Absolute simulated time at which the open round closes.
        round_end: f64,
        /// Updates dispatched in the open round (the flush threshold).
        expected: usize,
        /// Whether a round is currently accumulating arrivals.
        open: bool,
    },
    /// Slot-refilled dispatch; flush at `buffer_size`; the clock follows
    /// arrival events.
    Async {
        /// Updates per aggregation.
        buffer_size: usize,
        /// Clients kept in flight.
        slots: usize,
    },
}

/// The asynchronous engine's dispatch candidates: every client not currently
/// in flight, viewed through [`CandidatePool`] without ever materialising
/// the free list. [`nth`](CandidatePool::nth) walks the sorted busy set —
/// O(in-flight), which is bounded by the concurrency slots, never by the
/// population — so refilling a slot in a million-client federation costs the
/// same as in a ten-client one.
struct FreePool<'a> {
    num_clients: usize,
    busy: &'a ClientSet,
}

impl CandidatePool for FreePool<'_> {
    fn len(&self) -> usize {
        self.num_clients - self.busy.len()
    }

    fn nth(&self, k: usize) -> usize {
        // The k-th free id: every busy id at or below the running answer
        // shifts it up by one. Busy ids are sorted ascending, so one pass.
        let mut id = k;
        for b in self.busy.iter() {
            if b <= id {
                id += 1;
            } else {
                break;
            }
        }
        id
    }

    fn contains(&self, client: usize) -> bool {
        client < self.num_clients && !self.busy.contains(client)
    }

    fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        Box::new((0..self.num_clients).filter(|&c| !self.busy.contains(c)))
    }
}

impl DriveMode {
    /// The driver parameters a configuration implies — the single place
    /// slot sizing and flush thresholds are derived, so fresh and restored
    /// sessions can never disagree about them.
    fn for_config(config: &EngineConfig, per_round: usize, num_clients: usize) -> Self {
        match config.execution {
            Execution::Synchronous => DriveMode::Sync {
                round_end: 0.0,
                expected: 0,
                open: false,
            },
            Execution::AsyncBuffered {
                buffer_size,
                concurrency,
            } => DriveMode::Async {
                buffer_size: buffer_size.max(1),
                slots: if concurrency == 0 {
                    per_round
                } else {
                    concurrency.clamp(1, num_clients)
                },
            },
        }
    }
}

/// Restores the previous process-global kernel worker count when dropped,
/// so a session's worker budget does not outlive it. The setting is still
/// process-global while the session is alive — concurrent engines in one
/// process share it — which only ever affects wall-clock, never results
/// (kernels are worker-count invariant).
struct KernelWorkersGuard {
    previous: usize,
}

impl KernelWorkersGuard {
    fn set(workers: usize) -> Self {
        let previous = mhfl_tensor::kernel_workers();
        mhfl_tensor::set_kernel_workers(workers);
        KernelWorkersGuard { previous }
    }
}

impl Drop for KernelWorkersGuard {
    fn drop(&mut self) {
        mhfl_tensor::set_kernel_workers(self.previous);
    }
}

/// A full snapshot of a [`Session`] mid-run.
///
/// Everything the driver needs to continue bit-exactly is captured: the
/// algorithm's [`AlgorithmState`], the RNG stream, the simulated clock, the
/// in-flight arrival heap (with each arrival's already-computed
/// [`ClientUpdate`]), the aggregation buffer, accumulated telemetry and the
/// report so far. [`Session::restore`] rebuilds a live session from it; a
/// run checkpointed at round *k* and restored produces a
/// [`MetricsReport::digest`] bitwise identical to the uninterrupted run.
///
/// The engine configuration rides along, so restoring needs only the
/// algorithm (any fresh instance of the same method) and the
/// [`FederationContext`] — both of which are reconstructable from an
/// [`ExperimentSpec`]-style description. Schedulers are rebuilt from the
/// configuration; custom stateful [`ClientScheduler`] implementations are
/// not captured.
///
/// [`ExperimentSpec`]: https://docs.rs/pracmhbench-core
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub(crate) config: EngineConfig,
    pub(crate) algorithm_name: String,
    pub(crate) algorithm: AlgorithmState,
    pub(crate) rng: RngState,
    pub(crate) report: MetricsReport,
    pub(crate) sim_time: f64,
    pub(crate) version: usize,
    pub(crate) seq: u64,
    pub(crate) started: bool,
    pub(crate) finished: bool,
    /// Population size the run was taken from (the in-flight set is sparse,
    /// so it no longer implies the client count).
    pub(crate) num_clients: usize,
    /// Clients in flight at capture, as a sorted id list — O(active), not
    /// O(population), so million-client checkpoints stay small.
    pub(crate) in_flight: Vec<usize>,
    pub(crate) arrivals: Vec<Arrival>,
    pub(crate) buffer: Vec<Buffered>,
    pub(crate) pending_stats: Vec<ClientRoundStat>,
    pub(crate) idle_advances: usize,
    pub(crate) sync_round_end: f64,
    pub(crate) sync_expected: usize,
    pub(crate) sync_open: bool,
    pub(crate) queue: Vec<RoundEvent>,
}

impl Checkpoint {
    /// The engine configuration of the checkpointed run.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Name of the algorithm that was running.
    pub fn algorithm_name(&self) -> &str {
        &self.algorithm_name
    }

    /// Completed rounds (server aggregations) at capture time.
    pub fn completed_rounds(&self) -> usize {
        self.version
    }

    /// Simulated time at capture.
    pub fn sim_time_secs(&self) -> f64 {
        self.sim_time
    }

    /// Number of client updates in flight at capture.
    pub fn in_flight_updates(&self) -> usize {
        self.arrivals.len()
    }

    /// Encodes this checkpoint into the durable on-disk byte format (see
    /// [`persist`](crate::persist)).
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::persist::encode_checkpoint(self)
    }

    /// Decodes a checkpoint from bytes previously produced by
    /// [`to_bytes`](Checkpoint::to_bytes) (or read from a checkpoint file).
    ///
    /// # Errors
    /// Returns a typed [`PersistError`](crate::PersistError) on any
    /// corruption: bad magic, unsupported version, checksum or fingerprint
    /// mismatch, truncation, or malformed structure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::PersistError> {
        crate::persist::decode_checkpoint(bytes)
    }

    /// The configuration fingerprint this checkpoint carries in its on-disk
    /// header (FNV-1a over engine config, algorithm name and client count).
    pub fn config_fingerprint(&self) -> u64 {
        crate::persist::config_fingerprint(self)
    }
}

/// An in-progress federated run, driven one [`RoundEvent`] at a time.
///
/// Created by [`FlEngine::session`] (which runs [`FlAlgorithm::setup`]) or
/// [`Session::restore`]. Drive it with [`next_event`](Session::next_event),
/// the [`Iterator`] impl, or [`drain`](Session::drain); attach
/// [`Observer`]s with [`observe`](Session::observe); snapshot it with
/// [`checkpoint`](Session::checkpoint).
pub struct Session<'a> {
    engine: FlEngine,
    algorithm: &'a mut dyn FlAlgorithm,
    ctx: &'a FederationContext,
    scheduler: Box<dyn ClientScheduler>,
    observers: Vec<Box<dyn Observer + 'a>>,
    rng: SeededRng,
    report: MetricsReport,
    stability_sample: Vec<usize>,
    per_round: usize,
    mode: DriveMode,
    sim_time: f64,
    version: usize,
    seq: u64,
    started: bool,
    finished: bool,
    in_flight: ClientSet,
    arrivals: BinaryHeap<Arrival>,
    buffer: Vec<Buffered>,
    pending_stats: Vec<ClientRoundStat>,
    idle_advances: usize,
    queue: VecDeque<RoundEvent>,
    runner: Box<dyn ClientRunner + 'a>,
    corruption: Corruption,
    churn_fraction: f64,
    _workers: KernelWorkersGuard,
}

impl<'a> Session<'a> {
    pub(crate) fn new(
        engine: FlEngine,
        algorithm: &'a mut dyn FlAlgorithm,
        ctx: &'a FederationContext,
    ) -> FlResult<Self> {
        // Same ordering as the old `run()`: grant the kernels their worker
        // budget before any tensor work, then let the algorithm initialise.
        let workers = KernelWorkersGuard::set(engine.config().parallelism.kernel_workers());
        algorithm.setup(ctx)?;
        let scheduler = engine.config().schedule.build();
        let rng = SeededRng::new(ctx.seed() ^ 0xF00D);
        let report = MetricsReport::new(algorithm.name());
        let stability_sample = engine.stability_sample(ctx);
        let per_round = engine.per_round(ctx);
        let num_clients = ctx.num_clients();
        let mode = DriveMode::for_config(engine.config(), per_round, num_clients);
        Ok(Session {
            engine,
            algorithm,
            ctx,
            scheduler,
            observers: Vec::new(),
            rng,
            report,
            stability_sample,
            per_round,
            mode,
            sim_time: 0.0,
            version: 0,
            seq: 0,
            started: false,
            finished: false,
            in_flight: ClientSet::new(),
            arrivals: BinaryHeap::new(),
            buffer: Vec::new(),
            pending_stats: Vec::new(),
            idle_advances: 0,
            queue: VecDeque::new(),
            runner: Box::new(InProcessRunner),
            corruption: Corruption::None,
            churn_fraction: 0.0,
            _workers: workers,
        })
    }

    /// The engine configuration driving this session.
    pub fn config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// The metrics accumulated so far (evaluation records up to the latest
    /// completed evaluation point).
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }

    /// Completed server rounds (aggregations).
    pub fn completed_rounds(&self) -> usize {
        self.version
    }

    /// Current simulated time.
    pub fn sim_time_secs(&self) -> f64 {
        self.sim_time
    }

    /// Whether the run has ended (after which
    /// [`next_event`](Session::next_event) only drains already-emitted
    /// events).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Attaches an observer. Observers see every event emitted after
    /// attachment, in attachment order, before the event is yielded to the
    /// caller.
    pub fn observe(&mut self, observer: Box<dyn Observer + 'a>) {
        self.observers.push(observer);
    }

    /// Builder-style [`observe`](Session::observe).
    #[must_use]
    pub fn with_observer(mut self, observer: Box<dyn Observer + 'a>) -> Self {
        self.observe(observer);
        self
    }

    /// Replaces the executor for the client phase (default:
    /// [`InProcessRunner`]). A runner that honours the selection-order
    /// contract of [`ClientRunner`] leaves every digest unchanged — only
    /// *where* the client updates are computed moves.
    pub fn set_client_runner(&mut self, runner: Box<dyn ClientRunner + 'a>) {
        self.runner = runner;
    }

    /// Builder-style [`set_client_runner`](Session::set_client_runner).
    #[must_use]
    pub fn with_client_runner(mut self, runner: Box<dyn ClientRunner + 'a>) -> Self {
        self.set_client_runner(runner);
        self
    }

    /// Replaces the client scheduler (default: the one built from
    /// [`Schedule`](crate::Schedule) in the engine configuration). This is
    /// how schedulers that cannot be described by the `Copy` configuration
    /// enum — e.g. [`TraceReplay`](crate::TraceReplay) over a recorded
    /// availability CSV — are injected. Sessions start lazily, so swapping
    /// before the first [`next_event`](Session::next_event) call affects the
    /// whole run; like a custom runner, the scheduler is **not** captured by
    /// checkpoints and must be re-injected after a restore.
    pub fn set_scheduler(&mut self, scheduler: Box<dyn ClientScheduler>) {
        self.scheduler = scheduler;
    }

    /// Builder-style [`set_scheduler`](Session::set_scheduler).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Box<dyn ClientScheduler>) -> Self {
        self.set_scheduler(scheduler);
        self
    }

    /// Sets the byzantine-corruption policy applied to arriving updates
    /// (default: [`Corruption::None`], observably inert). Corruption happens
    /// at the arrival boundary — after staleness accounting decides the
    /// update's fate, before it enters the aggregation buffer — so it is
    /// identical under every [`ClientRunner`] and across checkpoint/restore
    /// (re-inject after a restore, like a custom runner).
    pub fn set_corruption(&mut self, corruption: Corruption) {
        self.corruption = corruption;
    }

    /// Builder-style [`set_corruption`](Session::set_corruption).
    #[must_use]
    pub fn with_corruption(mut self, corruption: Corruption) -> Self {
        self.set_corruption(corruption);
        self
    }

    /// Sets the mid-round dropout probability (default `0.0`, observably
    /// inert). Each dispatched update is independently lost with this
    /// probability — the client trains, but its upload never reaches the
    /// server: a [`RoundEvent::ClientChurned`] is emitted at the would-be
    /// arrival time, the freed slot is refilled in asynchronous mode, and a
    /// synchronous round's flush threshold shrinks by one so the round still
    /// closes. The draw is a pure function of `(seed, dispatch sequence)`,
    /// so runs are deterministic and checkpoint/restore-stable (re-inject
    /// after a restore).
    pub fn set_churn(&mut self, fraction: f64) {
        self.churn_fraction = fraction.clamp(0.0, 1.0);
    }

    /// Builder-style [`set_churn`](Session::set_churn).
    #[must_use]
    pub fn with_churn(mut self, fraction: f64) -> Self {
        self.set_churn(fraction);
        self
    }

    /// Advances the simulation until the next event is available and returns
    /// it; `Ok(None)` once the run has completed and every event has been
    /// consumed ([`RoundEvent::RunCompleted`] is always the last `Some`).
    ///
    /// # Errors
    /// Propagates algorithm failures; the session is finished afterwards.
    /// A [`FlError::Persist`] from a failed observer-requested auto-save is
    /// the exception: it leaves the session **live** (the failed request is
    /// consumed, in-memory state untouched), so a caller protecting a long
    /// run may log it and keep calling `next_event` instead of losing the
    /// run to a transient disk error.
    pub fn next_event(&mut self) -> FlResult<Option<RoundEvent>> {
        loop {
            self.process_save_requests()?;
            if let Some(event) = self.queue.pop_front() {
                return Ok(Some(event));
            }
            if self.finished {
                return Ok(None);
            }
            if self.stop_requested() {
                self.finalize();
                continue;
            }
            if let Err(error) = self.advance() {
                self.finished = true;
                return Err(error);
            }
        }
    }

    /// Grants any pending [`Observer::save_request`]s by writing a durable
    /// checkpoint of the current state. Runs at event boundaries only, so
    /// the saved state is exactly what [`checkpoint`](Session::checkpoint)
    /// would capture there (still-queued events included — a resumed run
    /// replays them first).
    ///
    /// A failed save propagates its error but does **not** finish the
    /// session: the request was consumed, no simulation state changed, and
    /// the next `next_event` call continues the run.
    fn process_save_requests(&mut self) -> FlResult<()> {
        let mut paths = Vec::new();
        for observer in &mut self.observers {
            if let Some(path) = observer.save_request() {
                paths.push(path);
            }
        }
        if paths.is_empty() {
            return Ok(());
        }
        let checkpoint = self.checkpoint()?;
        for path in paths {
            crate::persist::write_checkpoint(&path, &checkpoint)?;
        }
        Ok(())
    }

    /// Ends the run at the current point: emits
    /// [`RoundEvent::RunCompleted`] with the report collected so far.
    /// In-flight updates are discarded, exactly as when the configured round
    /// budget runs out mid-flight.
    pub fn stop(&mut self) {
        self.finalize();
    }

    /// Runs the session to completion and returns the final report —
    /// [`FlEngine::run`] is exactly `session(..)?.drain()`.
    ///
    /// # Errors
    /// Propagates algorithm failures.
    pub fn drain(mut self) -> FlResult<MetricsReport> {
        while self.next_event()?.is_some() {}
        Ok(self.report)
    }

    /// Snapshots the full run state. See [`Checkpoint`].
    ///
    /// # Errors
    /// Propagates [`FlAlgorithm::snapshot`] failures.
    pub fn checkpoint(&self) -> FlResult<Checkpoint> {
        let (sync_round_end, sync_expected, sync_open) = match self.mode {
            DriveMode::Sync {
                round_end,
                expected,
                open,
            } => (round_end, expected, open),
            DriveMode::Async { .. } => (0.0, 0, false),
        };
        // The heap iterates in arbitrary order; store arrivals canonically
        // (pop order) so equal sessions produce equal checkpoints.
        let mut arrivals: Vec<Arrival> = self.arrivals.iter().cloned().collect();
        arrivals.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
        Ok(Checkpoint {
            config: *self.engine.config(),
            algorithm_name: self.algorithm.name(),
            algorithm: self.algorithm.snapshot()?,
            rng: self.rng.snapshot(),
            report: self.report.clone(),
            sim_time: self.sim_time,
            version: self.version,
            seq: self.seq,
            started: self.started,
            finished: self.finished,
            num_clients: self.ctx.num_clients(),
            in_flight: self.in_flight.as_slice().to_vec(),
            arrivals,
            buffer: self.buffer.clone(),
            pending_stats: self.pending_stats.clone(),
            idle_advances: self.idle_advances,
            sync_round_end,
            sync_expected,
            sync_open,
            queue: self.queue.iter().cloned().collect(),
        })
    }

    /// Rebuilds a live session from a [`Checkpoint`].
    ///
    /// `algorithm` must be a fresh (or at least same-method) instance of the
    /// checkpointed algorithm — its state is overwritten via
    /// [`FlAlgorithm::restore`] — and `ctx` must be the same federation the
    /// checkpoint was taken from (same seed, data and assignments; the
    /// client count is validated, the rest is the caller's contract).
    /// Observers are not part of a checkpoint; re-attach them with
    /// [`observe`](Session::observe).
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] on an algorithm-name or
    /// client-count mismatch; propagates [`FlAlgorithm::restore`] failures.
    pub fn restore(
        algorithm: &'a mut dyn FlAlgorithm,
        ctx: &'a FederationContext,
        checkpoint: &Checkpoint,
    ) -> FlResult<Self> {
        if algorithm.name() != checkpoint.algorithm_name {
            return Err(FlError::InvalidConfig(format!(
                "checkpoint was taken from algorithm {:?}, not {:?}",
                checkpoint.algorithm_name,
                algorithm.name()
            )));
        }
        if ctx.num_clients() != checkpoint.num_clients {
            return Err(FlError::InvalidConfig(format!(
                "checkpoint covers {} clients but the context has {}",
                checkpoint.num_clients,
                ctx.num_clients()
            )));
        }
        let engine = FlEngine::new(checkpoint.config);
        let workers = KernelWorkersGuard::set(engine.config().parallelism.kernel_workers());
        algorithm.restore(checkpoint.algorithm.clone(), ctx)?;
        let mut mode =
            DriveMode::for_config(engine.config(), engine.per_round(ctx), ctx.num_clients());
        if let DriveMode::Sync {
            round_end,
            expected,
            open,
        } = &mut mode
        {
            *round_end = checkpoint.sync_round_end;
            *expected = checkpoint.sync_expected;
            *open = checkpoint.sync_open;
        }
        Ok(Session {
            engine,
            scheduler: engine.config().schedule.build(),
            observers: Vec::new(),
            rng: SeededRng::from_snapshot(checkpoint.rng),
            report: checkpoint.report.clone(),
            stability_sample: engine.stability_sample(ctx),
            per_round: engine.per_round(ctx),
            mode,
            sim_time: checkpoint.sim_time,
            version: checkpoint.version,
            seq: checkpoint.seq,
            started: checkpoint.started,
            finished: checkpoint.finished,
            in_flight: ClientSet::from_ids(checkpoint.in_flight.clone()),
            arrivals: checkpoint.arrivals.iter().cloned().collect(),
            buffer: checkpoint.buffer.clone(),
            pending_stats: checkpoint.pending_stats.clone(),
            idle_advances: checkpoint.idle_advances,
            queue: checkpoint.queue.iter().cloned().collect(),
            runner: Box::new(InProcessRunner),
            // Scenario knobs are not part of the checkpoint codec (the
            // committed format fixtures must keep decoding); re-inject them
            // after a restore, like a custom runner or scheduler.
            corruption: Corruption::None,
            churn_fraction: 0.0,
            algorithm,
            ctx,
            _workers: workers,
        })
    }

    /// Saves a durable checkpoint of the current state to `path`:
    /// [`checkpoint`](Session::checkpoint) encoded with the versioned,
    /// checksummed [`persist`](crate::persist) codec and written atomically
    /// (tmp file, then rename). A session restored from the file with
    /// [`restore_from`](Session::restore_from) continues bit-exactly.
    ///
    /// # Errors
    /// Propagates [`FlAlgorithm::snapshot`] failures and persist-layer I/O
    /// errors ([`FlError::Persist`](crate::FlError)).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> FlResult<()> {
        let checkpoint = self.checkpoint()?;
        crate::persist::write_checkpoint(path, &checkpoint)?;
        Ok(())
    }

    /// Rebuilds a live session from a checkpoint file written by
    /// [`save`](Session::save) (or a [`CheckpointObserver`](crate::CheckpointObserver)).
    /// The same contract as [`restore`](Session::restore): `algorithm` must
    /// be a fresh instance of the checkpointed method and `ctx` the same
    /// federation the checkpoint was taken from.
    ///
    /// # Errors
    /// Returns [`FlError::Persist`](crate::FlError) if the file is missing
    /// or fails any integrity check (magic, version, checksums, config
    /// fingerprint), and [`FlError::InvalidConfig`](crate::FlError) on an
    /// algorithm or context mismatch.
    pub fn restore_from(
        algorithm: &'a mut dyn FlAlgorithm,
        ctx: &'a FederationContext,
        path: impl AsRef<std::path::Path>,
    ) -> FlResult<Self> {
        let checkpoint = crate::persist::read_checkpoint(path)?;
        Session::restore(algorithm, ctx, &checkpoint)
    }

    /// Notifies observers and queues the event for the caller.
    fn emit(&mut self, event: RoundEvent) {
        for observer in &mut self.observers {
            observer.on_event(&event);
        }
        self.queue.push_back(event);
    }

    fn finalize(&mut self) {
        if !self.finished {
            self.finished = true;
            let report = self.report.clone();
            self.emit(RoundEvent::RunCompleted { report });
        }
    }

    /// Advances the simulation by one quantum, emitting at least one event
    /// unless the run just finished.
    fn advance(&mut self) -> FlResult<()> {
        if self.version >= self.engine.config().rounds {
            self.finalize();
            return Ok(());
        }
        if !self.started {
            self.started = true;
            if let DriveMode::Async { .. } = self.mode {
                // The asynchronous run begins by filling every slot.
                self.emit(RoundEvent::RoundStarted {
                    round: 1,
                    sim_time_secs: self.sim_time,
                });
                self.dispatch_async_slots()?;
                return Ok(());
            }
        }
        if let DriveMode::Sync { open: false, .. } = self.mode {
            return self.open_sync_round();
        }
        match self.arrivals.pop() {
            Some(arrival) => {
                self.idle_advances = 0;
                self.process_arrival(arrival)
            }
            None => self.handle_idle(),
        }
    }

    /// Synchronous round start: plan, fan out the client phase, and put
    /// every update in flight.
    fn open_sync_round(&mut self) -> FlResult<()> {
        let round = self.version + 1;
        let plan = self.scheduler.plan_round(
            round,
            self.per_round,
            self.sim_time,
            self.ctx,
            &mut self.rng,
        );
        self.emit(RoundEvent::RoundStarted {
            round,
            sim_time_secs: self.sim_time,
        });
        let updates = self.runner.run_clients(
            &*self.algorithm,
            round,
            &plan.clients,
            self.ctx,
            self.engine.config().parallelism,
        )?;
        let expected = updates.len();
        self.mode = DriveMode::Sync {
            round_end: self.sim_time + plan.round_secs,
            expected,
            open: true,
        };
        for update in updates {
            let cost = self.ctx.assignment(update.client).cost;
            self.emit(RoundEvent::ClientDispatched {
                round,
                client: update.client,
                sim_time_secs: self.sim_time,
            });
            self.in_flight.insert(update.client);
            self.arrivals.push(Arrival {
                time: self.sim_time + cost.total_secs(),
                seq: self.seq,
                dispatched_at: self.sim_time,
                dispatched_version: self.version,
                update,
            });
            self.seq += 1;
        }
        if expected == 0 {
            // The scheduler skipped every candidate (e.g. a missed
            // deadline): the round aggregates empty and the clock still
            // advances.
            return self.flush_round();
        }
        Ok(())
    }

    /// Asynchronous slot refill, mirroring the scheduler's incremental
    /// pick/availability hooks. Returns the number of clients launched.
    fn dispatch_async_slots(&mut self) -> FlResult<usize> {
        let DriveMode::Async { slots, .. } = self.mode else {
            return Ok(0);
        };
        let num_clients = self.ctx.num_clients();
        let mut picked = Vec::new();
        while self.in_flight.len() < slots {
            // The free set is exposed as a view over the (small) busy set —
            // no per-refill scan or allocation proportional to the
            // population. Availability gating happens inside the
            // scheduler's pick.
            let pool = FreePool {
                num_clients,
                busy: &self.in_flight,
            };
            let Some(client) =
                self.scheduler
                    .pick_next(self.sim_time, &pool, self.ctx, &mut self.rng)
            else {
                break;
            };
            self.in_flight.insert(client);
            picked.push(client);
        }
        if picked.is_empty() {
            return Ok(0);
        }
        // Clients dispatched at version `v` train on the state produced by
        // the v-th aggregation, i.e. they run "round" v + 1.
        let updates = self.runner.run_clients(
            &*self.algorithm,
            self.version + 1,
            &picked,
            self.ctx,
            self.engine.config().parallelism,
        )?;
        let launched = updates.len();
        for update in updates {
            let cost = self.ctx.assignment(update.client).cost;
            self.emit(RoundEvent::ClientDispatched {
                round: self.version + 1,
                client: update.client,
                sim_time_secs: self.sim_time,
            });
            self.arrivals.push(Arrival {
                time: self.sim_time + cost.total_secs(),
                seq: self.seq,
                dispatched_at: self.sim_time,
                dispatched_version: self.version,
                update,
            });
            self.seq += 1;
        }
        Ok(launched)
    }

    /// One update reached the server: free its slot, apply the staleness
    /// policy, buffer it, and flush/refill as the mode dictates.
    fn process_arrival(&mut self, arrival: Arrival) -> FlResult<()> {
        let client = arrival.update.client;
        self.in_flight.remove(client);
        let staleness = self.version - arrival.dispatched_version;
        let is_async = matches!(self.mode, DriveMode::Async { .. });
        if is_async {
            // The asynchronous clock is event-driven; the synchronous clock
            // only advances when the round closes.
            self.sim_time = arrival.time;
        }
        let round = self.version + 1;

        // Mid-round churn: the client trained, but its upload is lost. The
        // server notices at the would-be arrival time. The draw keys on the
        // dispatch sequence number, so it is independent of every honest
        // stream and identical across runners and restores.
        if self.churn_fraction > 0.0
            && SeededRng::new(self.ctx.seed() ^ CHURN_SALT)
                .derive(arrival.seq)
                .bernoulli(self.churn_fraction)
        {
            self.emit(RoundEvent::ClientChurned {
                round,
                client,
                sim_time_secs: arrival.time,
            });
            if let DriveMode::Sync { expected, .. } = &mut self.mode {
                // One fewer update will ever land; shrink the flush
                // threshold so the round still closes (possibly empty, like
                // a round whose every candidate was skipped).
                *expected = expected.saturating_sub(1);
                let expected = *expected;
                if self.buffer.len() >= expected {
                    self.flush_round()?;
                }
            }
            return self.refill_after_arrival();
        }

        // Per-update staleness bound (asynchronous executions only:
        // synchronous updates always have staleness zero).
        let dropped = self
            .engine
            .config()
            .max_staleness
            .is_some_and(|bound| staleness > bound);
        if dropped {
            self.report.note_dropped_update();
            self.emit(RoundEvent::UpdateDropped {
                round,
                client,
                sim_time_secs: arrival.time,
                staleness,
            });
            return self.refill_after_arrival();
        }

        let mut update = arrival.update;
        if is_async {
            update.staleness_weight = self.engine.config().staleness.weight(staleness);
        }
        if !self.corruption.is_none() {
            // Byzantine corruption strikes in transit: the round key is the
            // round the update was trained for, so replayed and restored
            // runs corrupt bit-identically.
            self.corruption
                .apply(&mut update, self.ctx.seed(), arrival.dispatched_version + 1);
        }
        let stat = ClientRoundStat {
            client,
            // Patched to the actual aggregation round when the buffer
            // flushes.
            round,
            dispatch_secs: arrival.dispatched_at,
            arrival_secs: arrival.time,
            staleness,
            payload_bytes: update.payload.payload_bytes(),
        };
        self.emit(RoundEvent::UpdateArrived {
            round,
            client,
            sim_time_secs: arrival.time,
            staleness,
        });
        self.buffer.push(Buffered {
            seq: arrival.seq,
            update,
            stat,
        });

        let threshold = match self.mode {
            DriveMode::Sync { expected, .. } => expected,
            DriveMode::Async { buffer_size, .. } => buffer_size,
        };
        if self.buffer.len() >= threshold {
            self.flush_round()?;
        }
        self.refill_after_arrival()
    }

    /// Whether any observer has asked for the run to end.
    fn stop_requested(&self) -> bool {
        self.observers.iter().any(|o| o.should_stop())
    }

    /// Asynchronous executions refill freed slots after every arrival (as
    /// long as rounds remain); synchronous rounds only dispatch at round
    /// start. An observer-requested stop suppresses the refill: the run is
    /// over either way, so don't pay for training replacement clients whose
    /// updates would be discarded.
    fn refill_after_arrival(&mut self) -> FlResult<()> {
        if matches!(self.mode, DriveMode::Async { .. })
            && self.version < self.engine.config().rounds
            && !self.stop_requested()
        {
            self.dispatch_async_slots()?;
        }
        Ok(())
    }

    /// Aggregates the buffered updates as round `version + 1`, evaluates on
    /// the configured cadence, and closes the round.
    fn flush_round(&mut self) -> FlResult<()> {
        self.version += 1;
        let round = self.version;
        if matches!(self.mode, DriveMode::Sync { .. }) {
            // Synchronous aggregation order is selection order, not arrival
            // order; the dispatch sequence number preserves it.
            self.buffer.sort_by_key(|b| b.seq);
        }
        let mut updates = Vec::with_capacity(self.buffer.len());
        for mut item in std::mem::take(&mut self.buffer) {
            item.stat.round = round;
            self.pending_stats.push(item.stat);
            updates.push(item.update);
        }
        let num_updates = updates.len();
        self.algorithm.aggregate(round, updates, self.ctx)?;
        if let DriveMode::Sync { round_end, .. } = self.mode {
            self.sim_time = round_end;
            self.mode = DriveMode::Sync {
                round_end,
                expected: 0,
                open: false,
            };
        }
        self.emit(RoundEvent::Aggregated {
            round,
            sim_time_secs: self.sim_time,
            num_updates,
        });
        let record = if self.engine.is_eval_round(round) {
            Some(self.evaluate(round)?)
        } else {
            None
        };
        self.emit(RoundEvent::RoundCompleted {
            round,
            sim_time_secs: self.sim_time,
            record,
        });
        if self.version >= self.engine.config().rounds {
            self.finalize();
        } else if matches!(self.mode, DriveMode::Async { .. }) && !self.stop_requested() {
            self.emit(RoundEvent::RoundStarted {
                round: round + 1,
                sim_time_secs: self.sim_time,
            });
        }
        Ok(())
    }

    /// Evaluates the global model and the stability sample, appending a
    /// [`RoundRecord`] carrying the telemetry accumulated since the previous
    /// evaluation point.
    fn evaluate(&mut self, round: usize) -> FlResult<RoundRecord> {
        let global_accuracy = self.algorithm.evaluate_global(self.ctx.test_set())?;
        let mut per_client_accuracy = Vec::with_capacity(self.stability_sample.len());
        for &client in &self.stability_sample {
            per_client_accuracy.push(
                self.algorithm
                    .evaluate_client(client, self.ctx.test_set())?,
            );
        }
        let record = RoundRecord {
            round,
            sim_time_secs: self.sim_time,
            global_accuracy,
            per_client_accuracy,
            client_stats: std::mem::take(&mut self.pending_stats),
        };
        self.report.push(record.clone());
        Ok(record)
    }

    /// Nothing in flight and nothing arriving (asynchronous executions with
    /// an availability-gated scheduler): advance the clock to the next point
    /// where availability can change and retry.
    fn handle_idle(&mut self) -> FlResult<()> {
        self.sim_time = next_sim_time(self.sim_time, self.scheduler.idle_wait_secs());
        self.idle_advances += 1;
        let launched = self.dispatch_async_slots()?;
        if launched > 0 {
            self.idle_advances = 0;
        } else if self.idle_advances >= MAX_IDLE_ADVANCES {
            // Every client has been offline for the entire horizon; return
            // what we have instead of spinning forever.
            self.finalize();
        }
        Ok(())
    }
}

/// Advances `now` by `step`, guaranteeing strict progress: when `step` is so
/// small that `now + step` rounds back to `now` (e.g. a zero idle wait once
/// `now >= 2.0`, where an absolute `f64::EPSILON` nudge is below the ULP),
/// steps to the next representable float instead of freezing the clock.
fn next_sim_time(now: f64, step: f64) -> f64 {
    let advanced = now + step;
    if advanced > now {
        advanced
    } else {
        f64::from_bits(now.to_bits() + 1)
    }
}

impl Iterator for Session<'_> {
    type Item = FlResult<RoundEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("algorithm", &self.report.algorithm)
            .field("completed_rounds", &self.version)
            .field("sim_time_secs", &self.sim_time)
            .field("in_flight", &self.in_flight.len())
            .field("finished", &self.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClientPayload;

    #[test]
    fn arrivals_pop_earliest_first_with_seq_tie_break() {
        let mk = |time: f64, seq: u64| Arrival {
            time,
            seq,
            dispatched_at: 0.0,
            dispatched_version: 0,
            update: ClientUpdate::new(0, 1, ClientPayload::Empty),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(5.0, 2));
        heap.push(mk(1.0, 1));
        heap.push(mk(1.0, 0));
        heap.push(mk(3.0, 3));
        let order: Vec<(f64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|a| (a.time, a.seq))
            .collect();
        assert_eq!(order, vec![(1.0, 0), (1.0, 1), (3.0, 3), (5.0, 2)]);
    }

    #[test]
    fn free_pool_indexes_kth_free_in_busy_time() {
        let busy: ClientSet = [1usize, 2, 5].into_iter().collect();
        let pool = FreePool {
            num_clients: 8,
            busy: &busy,
        };
        // Free ids: 0, 3, 4, 6, 7.
        assert_eq!(pool.len(), 5);
        assert!(!pool.is_empty());
        let by_nth: Vec<usize> = (0..pool.len()).map(|k| pool.nth(k)).collect();
        assert_eq!(by_nth, vec![0, 3, 4, 6, 7]);
        assert_eq!(pool.iter().collect::<Vec<_>>(), by_nth);
        assert!(pool.contains(0) && pool.contains(7));
        assert!(!pool.contains(5), "busy client is not a candidate");
        assert!(!pool.contains(8), "out of population");
        // A sparse busy set over a huge population: nth never scans the
        // population, only the busy ids.
        let busy: ClientSet = (0..64).map(|i| i * 1000).collect();
        let pool = FreePool {
            num_clients: 1_000_000_000,
            busy: &busy,
        };
        assert_eq!(pool.len(), 1_000_000_000 - 64);
        assert_eq!(pool.nth(0), 1);
        assert_eq!(pool.nth(998), 999);
        assert_eq!(pool.nth(999), 1001);
        assert_eq!(pool.nth(pool.len() - 1), 999_999_999);
    }

    #[test]
    fn next_sim_time_always_makes_progress() {
        // Normal case: an ordinary step just adds.
        assert_eq!(next_sim_time(10.0, 1.5), 11.5);
        // Regression: a zero idle wait at a large sim_time used to add an
        // *absolute* f64::EPSILON, which rounds away once now >= 2.0 and
        // froze the clock for MAX_IDLE_ADVANCES iterations.
        let large = 2f64.powi(40);
        assert_eq!(
            large + f64::EPSILON,
            large,
            "precondition: old nudge is lost"
        );
        let nudged = next_sim_time(large, 0.0);
        assert!(nudged > large, "clock must advance even with a zero step");
        assert_eq!(nudged, f64::from_bits(large.to_bits() + 1));
        // A step below the ULP of `now` is equivalent to zero.
        let tiny = next_sim_time(large, 1e-12);
        assert!(tiny > large);
        // Monotone: repeated idle advances strictly increase time.
        let mut t = 2.0;
        for _ in 0..1000 {
            let next = next_sim_time(t, 0.0);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn event_kinds_are_distinct_labels() {
        let kinds = [
            RoundEvent::RoundStarted {
                round: 1,
                sim_time_secs: 0.0,
            }
            .kind(),
            RoundEvent::ClientDispatched {
                round: 1,
                client: 0,
                sim_time_secs: 0.0,
            }
            .kind(),
            RoundEvent::UpdateArrived {
                round: 1,
                client: 0,
                sim_time_secs: 0.0,
                staleness: 0,
            }
            .kind(),
            RoundEvent::UpdateDropped {
                round: 1,
                client: 0,
                sim_time_secs: 0.0,
                staleness: 3,
            }
            .kind(),
            RoundEvent::ClientChurned {
                round: 1,
                client: 0,
                sim_time_secs: 0.0,
            }
            .kind(),
            RoundEvent::Aggregated {
                round: 1,
                sim_time_secs: 0.0,
                num_updates: 2,
            }
            .kind(),
            RoundEvent::RoundCompleted {
                round: 1,
                sim_time_secs: 0.0,
                record: None,
            }
            .kind(),
            RoundEvent::RunCompleted {
                report: MetricsReport::new("X"),
            }
            .kind(),
        ];
        let mut unique: Vec<&str> = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
