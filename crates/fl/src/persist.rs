//! Durable on-disk checkpoints: a self-describing, versioned, checksummed
//! binary codec for [`Checkpoint`] that needs no external serde.
//!
//! The in-memory [`Session::checkpoint`](crate::Session::checkpoint) made
//! mid-run snapshots bit-exact, but a snapshot that dies with its process
//! cannot save a 1000-round paper run from interruption. This module turns
//! the snapshot into a durable artifact with the same discipline short-block
//! codeword analysis applies to channel codes: explicit framing, a format
//! version, a configuration fingerprint, and a checksum over every section,
//! so any corruption — truncation, a flipped bit, a spliced header — is
//! detected and reported as a typed [`PersistError`] instead of silently
//! restoring a wrong run.
//!
//! The byte-level machinery — the [`Encoder`]/[`Decoder`] primitives, the
//! [`PersistError`] taxonomy and the per-type codecs — lives in the shared
//! [`wire`](crate::wire) module, where the distributed execution layer
//! (`mhfl-net`) speaks the same language; this module owns the checkpoint
//! *file* format built on top of it.
//!
//! # File layout (format version 2)
//!
//! ```text
//! magic            8 bytes   b"MHFLCKP1"
//! format version   u32 LE
//! config fingerprint u64 LE  FNV-1a over the CONFIG section payload
//! section count    u32 LE
//! per section:
//!   id             u8        see the section table below
//!   payload length u64 LE
//!   payload        length bytes
//!   checksum       u64 LE    FNV-1a over the payload
//! ```
//!
//! | id | section    | contents |
//! |----|------------|----------|
//! | 1  | `config`   | [`EngineConfig`](crate::EngineConfig), algorithm name, client count |
//! | 2  | `algorithm`| [`AlgorithmState`](crate::AlgorithmState) — every state dict / tensor / scalar slot |
//! | 3  | `rng`      | [`RngState`] — the xoshiro256++ words, seed, zero-init flag |
//! | 4  | `report`   | [`MetricsReport`] accumulated so far |
//! | 5  | `driver`   | clock, round version, dispatch seq, sparse in-flight id list, sync-round state |
//! | 6  | `arrivals` | the in-flight arrival heap (computed `ClientUpdate`s included) |
//! | 7  | `buffer`   | the aggregation buffer |
//! | 8  | `pending`  | telemetry accumulated since the last evaluation point |
//! | 9  | `queue`    | emitted-but-unconsumed [`RoundEvent`]s |
//!
//! All integers are little-endian; every `f32`/`f64` is stored as its exact
//! IEEE-754 bit pattern (`to_bits`), so a decoded checkpoint resumes
//! bit-identically to the uninterrupted run. Encoding is canonical: equal
//! checkpoints produce equal bytes, and `encode(decode(bytes)) == bytes` for
//! any version-2 file this module wrote — the property the committed
//! format-stability fixture pins.
//!
//! Version 2 changed only the `driver` section: the in-flight set is stored
//! as a sorted sparse id list (O(active clients)) where version 1 wrote one
//! flag per client plus a popcount (O(population) — a non-starter for
//! million-client federations). Version-1 files are still read; they
//! re-encode as version 2.
//!
//! # Entry points
//!
//! * [`Session::save`](crate::Session::save) /
//!   [`Session::restore_from`](crate::Session::restore_from) — one-call
//!   save/load on a live session;
//! * [`write_checkpoint`] / [`read_checkpoint`] — file I/O with
//!   atomic tmp-file-then-rename writes;
//! * [`encode_checkpoint`] / [`decode_checkpoint`] — the raw byte codec;
//! * [`CheckpointObserver`] — auto-saves every N rounds from inside the
//!   session event loop.

use std::path::{Path, PathBuf};

use mhfl_tensor::RngState;

use crate::session::{Arrival, Buffered};
use crate::wire::{
    fnv64, put_algorithm_state, put_config, put_f32_vec, put_stat, put_update,
    take_algorithm_state, take_config, take_f32_vec, take_stat, take_update,
};
use crate::{Checkpoint, MetricsReport, Observer, RoundEvent, RoundRecord};

pub use crate::wire::{Decoder, Encoder, PersistError, PersistResult};

/// The 8-byte file magic ("MHFL checkpoint, line 1 of the format family").
pub const MAGIC: [u8; 8] = *b"MHFLCKP1";

/// The newest on-disk format version this build reads and writes. Version 1
/// (dense in-flight map) is still decoded for back-compatibility.
pub const FORMAT_VERSION: u32 = 2;

/// Every section of a checkpoint, in canonical file order (identical in
/// format versions 1 and 2).
const SECTIONS: [(u8, &str); 9] = [
    (1, "config"),
    (2, "algorithm"),
    (3, "rng"),
    (4, "report"),
    (5, "driver"),
    (6, "arrivals"),
    (7, "buffer"),
    (8, "pending"),
    (9, "queue"),
];

fn section_name(id: u8) -> Option<&'static str> {
    SECTIONS.iter().find(|(i, _)| *i == id).map(|(_, n)| *n)
}

// ---------------------------------------------------------------------------
// Checkpoint-specific type codecs
// ---------------------------------------------------------------------------

fn put_record(e: &mut Encoder, record: &RoundRecord) {
    e.put_usize(record.round);
    e.put_f64(record.sim_time_secs);
    e.put_f32(record.global_accuracy);
    put_f32_vec(e, &record.per_client_accuracy);
    e.put_usize(record.client_stats.len());
    for stat in &record.client_stats {
        put_stat(e, stat);
    }
}

fn take_record(d: &mut Decoder<'_>) -> PersistResult<RoundRecord> {
    let round = d.take_usize()?;
    let sim_time_secs = d.take_f64()?;
    let global_accuracy = d.take_f32()?;
    let per_client_accuracy = take_f32_vec(d)?;
    let stats_len = d.take_len(48)?;
    let mut client_stats = Vec::with_capacity(stats_len);
    for _ in 0..stats_len {
        client_stats.push(take_stat(d)?);
    }
    Ok(RoundRecord {
        round,
        sim_time_secs,
        global_accuracy,
        per_client_accuracy,
        client_stats,
    })
}

fn put_report(e: &mut Encoder, report: &MetricsReport) {
    e.put_str(&report.algorithm);
    e.put_usize(report.dropped_updates());
    e.put_usize(report.records.len());
    for record in &report.records {
        put_record(e, record);
    }
}

fn take_report(d: &mut Decoder<'_>) -> PersistResult<MetricsReport> {
    let algorithm = d.take_str()?;
    let dropped = d.take_usize()?;
    let count = d.take_len(24)?;
    let mut report = MetricsReport::new(algorithm);
    report.set_dropped_updates(dropped);
    for _ in 0..count {
        report.push(take_record(d)?);
    }
    Ok(report)
}

fn put_event(e: &mut Encoder, event: &RoundEvent) {
    match event {
        RoundEvent::RoundStarted {
            round,
            sim_time_secs,
        } => {
            e.put_u8(0);
            e.put_usize(*round);
            e.put_f64(*sim_time_secs);
        }
        RoundEvent::ClientDispatched {
            round,
            client,
            sim_time_secs,
        } => {
            e.put_u8(1);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
        }
        RoundEvent::UpdateArrived {
            round,
            client,
            sim_time_secs,
            staleness,
        } => {
            e.put_u8(2);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
            e.put_usize(*staleness);
        }
        RoundEvent::UpdateDropped {
            round,
            client,
            sim_time_secs,
            staleness,
        } => {
            e.put_u8(3);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
            e.put_usize(*staleness);
        }
        RoundEvent::Aggregated {
            round,
            sim_time_secs,
            num_updates,
        } => {
            e.put_u8(4);
            e.put_usize(*round);
            e.put_f64(*sim_time_secs);
            e.put_usize(*num_updates);
        }
        RoundEvent::RoundCompleted {
            round,
            sim_time_secs,
            record,
        } => {
            e.put_u8(5);
            e.put_usize(*round);
            e.put_f64(*sim_time_secs);
            match record {
                Some(record) => {
                    e.put_bool(true);
                    put_record(e, record);
                }
                None => e.put_bool(false),
            }
        }
        RoundEvent::RunCompleted { report } => {
            e.put_u8(6);
            put_report(e, report);
        }
        // Tag 7 is additive: fixtures written before churn existed contain
        // no such events, so format v1/v2 files keep decoding unchanged.
        RoundEvent::ClientChurned {
            round,
            client,
            sim_time_secs,
        } => {
            e.put_u8(7);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
        }
    }
}

fn take_event(d: &mut Decoder<'_>) -> PersistResult<RoundEvent> {
    match d.take_u8()? {
        0 => Ok(RoundEvent::RoundStarted {
            round: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
        }),
        1 => Ok(RoundEvent::ClientDispatched {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
        }),
        2 => Ok(RoundEvent::UpdateArrived {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            staleness: d.take_usize()?,
        }),
        3 => Ok(RoundEvent::UpdateDropped {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            staleness: d.take_usize()?,
        }),
        4 => Ok(RoundEvent::Aggregated {
            round: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            num_updates: d.take_usize()?,
        }),
        5 => Ok(RoundEvent::RoundCompleted {
            round: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            record: if d.take_bool()? {
                Some(take_record(d)?)
            } else {
                None
            },
        }),
        6 => Ok(RoundEvent::RunCompleted {
            report: take_report(d)?,
        }),
        7 => Ok(RoundEvent::ClientChurned {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
        }),
        tag => Err(PersistError::Malformed {
            section: d.section(),
            detail: format!("unknown round-event tag {tag}"),
        }),
    }
}

fn put_arrival(e: &mut Encoder, arrival: &Arrival) {
    e.put_f64(arrival.time);
    e.put_u64(arrival.seq);
    e.put_f64(arrival.dispatched_at);
    e.put_usize(arrival.dispatched_version);
    put_update(e, &arrival.update);
}

fn take_arrival(d: &mut Decoder<'_>) -> PersistResult<Arrival> {
    Ok(Arrival {
        time: d.take_f64()?,
        seq: d.take_u64()?,
        dispatched_at: d.take_f64()?,
        dispatched_version: d.take_usize()?,
        update: take_update(d)?,
    })
}

fn put_buffered(e: &mut Encoder, buffered: &Buffered) {
    e.put_u64(buffered.seq);
    put_update(e, &buffered.update);
    put_stat(e, &buffered.stat);
}

fn take_buffered(d: &mut Decoder<'_>) -> PersistResult<Buffered> {
    Ok(Buffered {
        seq: d.take_u64()?,
        update: take_update(d)?,
        stat: take_stat(d)?,
    })
}

// ---------------------------------------------------------------------------
// Whole-checkpoint codec
// ---------------------------------------------------------------------------

fn encode_config_section(checkpoint: &Checkpoint) -> Vec<u8> {
    let mut e = Encoder::new();
    put_config(&mut e, &checkpoint.config);
    e.put_str(&checkpoint.algorithm_name);
    e.put_usize(checkpoint.num_clients);
    e.into_bytes()
}

/// The configuration fingerprint a checkpoint would carry in its file
/// header: an FNV-1a hash of the encoded engine configuration, algorithm
/// name and client count. Two checkpoints from the same experiment setup
/// share a fingerprint; resuming against the wrong setup is rejected before
/// any state is deserialised.
pub fn config_fingerprint(checkpoint: &Checkpoint) -> u64 {
    fnv64(&encode_config_section(checkpoint))
}

/// Encodes a [`Checkpoint`] into the version-2 binary format.
///
/// Encoding is canonical: equal checkpoints yield equal bytes (the arrival
/// heap is already stored in canonical pop order by
/// [`Session::checkpoint`](crate::Session::checkpoint)).
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> Vec<u8> {
    let config = encode_config_section(checkpoint);
    let fingerprint = fnv64(&config);

    let algorithm = {
        let mut e = Encoder::new();
        put_algorithm_state(&mut e, &checkpoint.algorithm);
        e.into_bytes()
    };
    let rng = {
        let mut e = Encoder::new();
        for word in checkpoint.rng.words {
            e.put_u64(word);
        }
        e.put_u64(checkpoint.rng.seed);
        e.put_bool(checkpoint.rng.zero_init);
        e.into_bytes()
    };
    let report = {
        let mut e = Encoder::new();
        put_report(&mut e, &checkpoint.report);
        e.into_bytes()
    };
    let driver = {
        let mut e = Encoder::new();
        e.put_f64(checkpoint.sim_time);
        e.put_usize(checkpoint.version);
        e.put_u64(checkpoint.seq);
        e.put_bool(checkpoint.started);
        e.put_bool(checkpoint.finished);
        // Sparse in-flight set: a sorted id list, O(active clients) bytes
        // regardless of population size.
        e.put_usize(checkpoint.in_flight.len());
        for &id in &checkpoint.in_flight {
            e.put_usize(id);
        }
        e.put_usize(checkpoint.idle_advances);
        e.put_f64(checkpoint.sync_round_end);
        e.put_usize(checkpoint.sync_expected);
        e.put_bool(checkpoint.sync_open);
        e.into_bytes()
    };
    let arrivals = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.arrivals.len());
        for arrival in &checkpoint.arrivals {
            put_arrival(&mut e, arrival);
        }
        e.into_bytes()
    };
    let buffer = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.buffer.len());
        for buffered in &checkpoint.buffer {
            put_buffered(&mut e, buffered);
        }
        e.into_bytes()
    };
    let pending = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.pending_stats.len());
        for stat in &checkpoint.pending_stats {
            put_stat(&mut e, stat);
        }
        e.into_bytes()
    };
    let queue = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.queue.len());
        for event in &checkpoint.queue {
            put_event(&mut e, event);
        }
        e.into_bytes()
    };

    let sections: [(u8, &[u8]); 9] = [
        (1, &config),
        (2, &algorithm),
        (3, &rng),
        (4, &report),
        (5, &driver),
        (6, &arrivals),
        (7, &buffer),
        (8, &pending),
        (9, &queue),
    ];

    let mut out = Encoder::new();
    out.put_bytes(&MAGIC);
    out.put_u32(FORMAT_VERSION);
    out.put_u64(fingerprint);
    out.put_u32(sections.len() as u32);
    for (id, payload) in sections {
        out.put_u8(id);
        out.put_usize(payload.len());
        out.put_bytes(payload);
        out.put_u64(fnv64(payload));
    }
    out.into_bytes()
}

/// Decodes a checkpoint from bytes (format version 1 or 2), verifying the
/// magic, format version, every section checksum and the configuration
/// fingerprint before reconstructing any state.
///
/// # Errors
/// Every corruption mode maps to a typed [`PersistError`]; this function
/// never panics on untrusted input and never returns a checkpoint that
/// differs from the one encoded.
pub fn decode_checkpoint(bytes: &[u8]) -> PersistResult<Checkpoint> {
    let mut frame = Decoder::new(bytes, "header");
    let magic = frame.take_bytes(8).map_err(|_| PersistError::Truncated {
        section: "header",
        needed: 8,
        remaining: bytes.len(),
    })?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(PersistError::BadMagic { found });
    }
    let format_version = frame.take_u32()?;
    if format_version == 0 || format_version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: format_version,
            supported: FORMAT_VERSION,
        });
    }
    let fingerprint = frame.take_u64()?;
    let section_count = frame.take_u32()? as usize;
    if section_count != SECTIONS.len() {
        return Err(PersistError::Malformed {
            section: "header",
            detail: format!(
                "checkpoints have {} sections, file declares {section_count}",
                SECTIONS.len()
            ),
        });
    }

    // Read the section table, verifying each checksum as it streams past.
    let mut payloads: Vec<Option<&[u8]>> = vec![None; SECTIONS.len()];
    frame.set_section("frame");
    for _ in 0..section_count {
        let id = frame.take_u8()?;
        let Some(name) = section_name(id) else {
            return Err(PersistError::Malformed {
                section: "frame",
                detail: format!("unknown section id {id}"),
            });
        };
        frame.set_section(name);
        let len = frame.take_len(1)?;
        let payload = frame.take_bytes(len)?;
        let stored = frame.take_u64()?;
        let computed = fnv64(payload);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch {
                section: name,
                stored,
                computed,
            });
        }
        let slot = SECTIONS
            .iter()
            .position(|(i, _)| *i == id)
            .expect("known id");
        if payloads[slot].is_some() {
            return Err(PersistError::Malformed {
                section: name,
                detail: "duplicate section".into(),
            });
        }
        payloads[slot] = Some(payload);
        frame.set_section("frame");
    }
    if frame.remaining() != 0 {
        return Err(PersistError::TrailingData {
            bytes: frame.remaining(),
        });
    }
    let section = |slot: usize| -> PersistResult<&[u8]> {
        payloads[slot].ok_or(PersistError::Malformed {
            section: SECTIONS[slot].1,
            detail: "section missing".into(),
        })
    };

    // Config first: its hash must match the header fingerprint before any
    // other state is trusted.
    let config_bytes = section(0)?;
    let computed = fnv64(config_bytes);
    if computed != fingerprint {
        return Err(PersistError::FingerprintMismatch {
            stored: fingerprint,
            computed,
        });
    }
    let mut d = Decoder::new(config_bytes, "config");
    let config = take_config(&mut d)?;
    let algorithm_name = d.take_str()?;
    let num_clients = d.take_usize()?;
    d.finish()?;

    let mut d = Decoder::new(section(1)?, "algorithm");
    let algorithm = take_algorithm_state(&mut d)?;
    d.finish()?;

    let mut d = Decoder::new(section(2)?, "rng");
    let rng = RngState {
        words: [d.take_u64()?, d.take_u64()?, d.take_u64()?, d.take_u64()?],
        seed: d.take_u64()?,
        zero_init: d.take_bool()?,
    };
    d.finish()?;

    let mut d = Decoder::new(section(3)?, "report");
    let report = take_report(&mut d)?;
    d.finish()?;

    let mut d = Decoder::new(section(4)?, "driver");
    let sim_time = d.take_f64()?;
    let version = d.take_usize()?;
    let seq = d.take_u64()?;
    let started = d.take_bool()?;
    let finished = d.take_bool()?;
    let in_flight = if format_version == 1 {
        // Version 1: one flag per client plus a redundant popcount.
        let in_flight_len = d.take_len(1)?;
        if in_flight_len != num_clients {
            return Err(PersistError::Malformed {
                section: "driver",
                detail: format!(
                    "in-flight map covers {in_flight_len} clients, config section says {num_clients}"
                ),
            });
        }
        let mut flags = Vec::with_capacity(in_flight_len);
        for _ in 0..in_flight_len {
            flags.push(d.take_bool()?);
        }
        let in_flight_count = d.take_usize()?;
        let ids: Vec<usize> = flags
            .iter()
            .enumerate()
            .filter_map(|(id, &set)| set.then_some(id))
            .collect();
        if ids.len() != in_flight_count {
            return Err(PersistError::Malformed {
                section: "driver",
                detail: format!(
                    "in-flight count {in_flight_count} does not match {} set flags",
                    ids.len()
                ),
            });
        }
        ids
    } else {
        // Version 2: a sorted sparse id list.
        let count = d.take_len(8)?;
        if count > num_clients {
            return Err(PersistError::Malformed {
                section: "driver",
                detail: format!("{count} clients in flight out of {num_clients}"),
            });
        }
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(d.take_usize()?);
        }
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(PersistError::Malformed {
                section: "driver",
                detail: "in-flight ids are not strictly ascending".into(),
            });
        }
        if ids.last().is_some_and(|&last| last >= num_clients) {
            return Err(PersistError::Malformed {
                section: "driver",
                detail: format!("in-flight id out of range for {num_clients} clients"),
            });
        }
        ids
    };
    let idle_advances = d.take_usize()?;
    let sync_round_end = d.take_f64()?;
    let sync_expected = d.take_usize()?;
    let sync_open = d.take_bool()?;
    d.finish()?;

    let mut d = Decoder::new(section(5)?, "arrivals");
    let arrivals_len = d.take_len(32)?;
    let mut arrivals = Vec::with_capacity(arrivals_len);
    for _ in 0..arrivals_len {
        arrivals.push(take_arrival(&mut d)?);
    }
    d.finish()?;

    let mut d = Decoder::new(section(6)?, "buffer");
    let buffer_len = d.take_len(16)?;
    let mut buffer = Vec::with_capacity(buffer_len);
    for _ in 0..buffer_len {
        buffer.push(take_buffered(&mut d)?);
    }
    d.finish()?;

    let mut d = Decoder::new(section(7)?, "pending");
    let pending_len = d.take_len(48)?;
    let mut pending_stats = Vec::with_capacity(pending_len);
    for _ in 0..pending_len {
        pending_stats.push(take_stat(&mut d)?);
    }
    d.finish()?;

    let mut d = Decoder::new(section(8)?, "queue");
    let queue_len = d.take_len(1)?;
    let mut queue = Vec::with_capacity(queue_len);
    for _ in 0..queue_len {
        queue.push(take_event(&mut d)?);
    }
    d.finish()?;

    Ok(Checkpoint {
        config,
        algorithm_name,
        algorithm,
        rng,
        report,
        sim_time,
        version,
        seq,
        started,
        finished,
        num_clients,
        in_flight,
        arrivals,
        buffer,
        pending_stats,
        idle_advances,
        sync_round_end,
        sync_expected,
        sync_open,
        queue,
    })
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

fn io_error(op: &'static str, path: &Path, e: std::io::Error) -> PersistError {
    PersistError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Writes a checkpoint to `path` atomically: the bytes are written to a
/// sibling `<name>.tmp` file, fsynced, and renamed into place, so a crash
/// mid-write — including a power loss after the rename is journaled but
/// before data blocks would otherwise have hit disk — can never leave a
/// truncated checkpoint under the final name.
///
/// # Errors
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn write_checkpoint(path: impl AsRef<Path>, checkpoint: &Checkpoint) -> PersistResult<()> {
    use std::io::Write as _;

    let path = path.as_ref();
    let bytes = encode_checkpoint(checkpoint);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_error("write", &tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| io_error("write", &tmp, e))?;
        // The durability half of the atomicity claim: the tmp file's data
        // must be on disk before the rename makes it the checkpoint.
        file.sync_all().map_err(|e| io_error("sync", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_error("rename", path, e))?;
    // Best-effort fsync of the parent directory so the rename itself is
    // durable; not every platform allows opening a directory, so failures
    // here are ignored (the file contents are already safe either way).
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads and decodes a checkpoint from `path`.
///
/// # Errors
/// Returns [`PersistError::Io`] on filesystem failure and the full
/// [`decode_checkpoint`] error spectrum on corruption.
pub fn read_checkpoint(path: impl AsRef<Path>) -> PersistResult<Checkpoint> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_error("read", path, e))?;
    decode_checkpoint(&bytes)
}

// ---------------------------------------------------------------------------
// Auto-save observer
// ---------------------------------------------------------------------------

/// An [`Observer`] that asks the session to save a durable checkpoint every
/// `every` completed rounds (and, by default, once more when the run
/// completes), so a long run leaves a fresh resume point behind without the
/// driving code checkpointing by hand.
///
/// The save itself is performed by the [`Session`](crate::Session) at the
/// next event boundary via [`Session::save`](crate::Session::save) — atomic
/// tmp-file-then-rename, the checkpoint state exactly what
/// [`Session::checkpoint`](crate::Session::checkpoint) would capture there —
/// so a run resumed from the file replays bit-identically.
///
/// ```ignore
/// session.observe(Box::new(CheckpointObserver::every("run.ckpt", 25)));
/// let report = session.drain()?; // saves at rounds 25, 50, ... and at the end
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointObserver {
    path: PathBuf,
    every: usize,
    save_on_completion: bool,
    pending: bool,
    requested: usize,
}

impl CheckpointObserver {
    /// Saves to `path` every `every` completed rounds (clamped to at least
    /// one) and once more when the run completes.
    pub fn every(path: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointObserver {
            path: path.into(),
            every: every.max(1),
            save_on_completion: true,
            pending: false,
            requested: 0,
        }
    }

    /// Disables (or re-enables) the extra save on run completion.
    #[must_use]
    pub fn save_on_completion(mut self, yes: bool) -> Self {
        self.save_on_completion = yes;
        self
    }

    /// The path this observer saves to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of saves requested so far.
    pub fn saves_requested(&self) -> usize {
        self.requested
    }
}

impl Observer for CheckpointObserver {
    fn on_event(&mut self, event: &RoundEvent) {
        match event {
            RoundEvent::RoundCompleted { round, .. } if round.is_multiple_of(self.every) => {
                self.pending = true;
            }
            RoundEvent::RunCompleted { .. } if self.save_on_completion => {
                self.pending = true;
            }
            _ => {}
        }
    }

    fn save_request(&mut self) -> Option<PathBuf> {
        if self.pending {
            self.pending = false;
            self.requested += 1;
            Some(self.path.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_observer_requests_on_cadence_and_completion() {
        let mut obs = CheckpointObserver::every("/tmp/x.ckpt", 2);
        assert!(obs.save_request().is_none());
        let completed = |round| RoundEvent::RoundCompleted {
            round,
            sim_time_secs: 0.0,
            record: None,
        };
        obs.on_event(&completed(1));
        assert!(obs.save_request().is_none());
        obs.on_event(&completed(2));
        assert_eq!(
            obs.save_request().as_deref(),
            Some(Path::new("/tmp/x.ckpt"))
        );
        assert!(obs.save_request().is_none(), "request is one-shot");
        obs.on_event(&RoundEvent::RunCompleted {
            report: MetricsReport::new("X"),
        });
        assert!(obs.save_request().is_some());
        assert_eq!(obs.saves_requested(), 2);

        let mut no_final = CheckpointObserver::every("/tmp/y.ckpt", 1).save_on_completion(false);
        no_final.on_event(&RoundEvent::RunCompleted {
            report: MetricsReport::new("X"),
        });
        assert!(no_final.save_request().is_none());
    }

    #[test]
    fn client_churned_event_round_trips_as_tag_7() {
        let event = RoundEvent::ClientChurned {
            round: 3,
            client: 9,
            sim_time_secs: 12.5,
        };
        let mut e = Encoder::new();
        put_event(&mut e, &event);
        let bytes = e.into_bytes();
        // Tag 7 is additive after the seed tag set 0-6: fixtures written
        // before churn existed never contain it, so they keep decoding.
        assert_eq!(bytes[0], 7);
        let mut d = Decoder::new(&bytes, "queue");
        let decoded = take_event(&mut d).unwrap();
        assert!(matches!(
            decoded,
            RoundEvent::ClientChurned {
                round: 3,
                client: 9,
                sim_time_secs,
            } if sim_time_secs == 12.5
        ));
    }
}
