//! Durable on-disk checkpoints: a self-describing, versioned, checksummed
//! binary codec for [`Checkpoint`] that needs no external serde.
//!
//! The in-memory [`Session::checkpoint`](crate::Session::checkpoint) made
//! mid-run snapshots bit-exact, but a snapshot that dies with its process
//! cannot save a 1000-round paper run from interruption. This module turns
//! the snapshot into a durable artifact with the same discipline short-block
//! codeword analysis applies to channel codes: explicit framing, a format
//! version, a configuration fingerprint, and a checksum over every section,
//! so any corruption — truncation, a flipped bit, a spliced header — is
//! detected and reported as a typed [`PersistError`] instead of silently
//! restoring a wrong run.
//!
//! # File layout (format version 1)
//!
//! ```text
//! magic            8 bytes   b"MHFLCKP1"
//! format version   u32 LE
//! config fingerprint u64 LE  FNV-1a over the CONFIG section payload
//! section count    u32 LE
//! per section:
//!   id             u8        see the section table below
//!   payload length u64 LE
//!   payload        length bytes
//!   checksum       u64 LE    FNV-1a over the payload
//! ```
//!
//! | id | section    | contents |
//! |----|------------|----------|
//! | 1  | `config`   | [`EngineConfig`], algorithm name, client count |
//! | 2  | `algorithm`| [`AlgorithmState`] — every state dict / tensor / scalar slot |
//! | 3  | `rng`      | [`RngState`] — the xoshiro256++ words, seed, zero-init flag |
//! | 4  | `report`   | [`MetricsReport`] accumulated so far |
//! | 5  | `driver`   | clock, round version, dispatch seq, in-flight map, sync-round state |
//! | 6  | `arrivals` | the in-flight arrival heap (computed [`ClientUpdate`]s included) |
//! | 7  | `buffer`   | the aggregation buffer |
//! | 8  | `pending`  | telemetry accumulated since the last evaluation point |
//! | 9  | `queue`    | emitted-but-unconsumed [`RoundEvent`]s |
//!
//! All integers are little-endian; every `f32`/`f64` is stored as its exact
//! IEEE-754 bit pattern (`to_bits`), so a decoded checkpoint resumes
//! bit-identically to the uninterrupted run. Encoding is canonical: equal
//! checkpoints produce equal bytes, and `encode(decode(bytes)) == bytes` for
//! any file this module wrote — the property the committed format-stability
//! fixture pins.
//!
//! # Entry points
//!
//! * [`Session::save`](crate::Session::save) /
//!   [`Session::restore_from`](crate::Session::restore_from) — one-call
//!   save/load on a live session;
//! * [`write_checkpoint`] / [`read_checkpoint`] — file I/O with
//!   atomic tmp-file-then-rename writes;
//! * [`encode_checkpoint`] / [`decode_checkpoint`] — the raw byte codec;
//! * [`CheckpointObserver`] — auto-saves every N rounds from inside the
//!   session event loop.

use std::fmt;
use std::path::{Path, PathBuf};

use mhfl_nn::StateDict;
use mhfl_tensor::{RngState, Tensor};

use crate::fnv::Fnv1a;
use crate::session::{Arrival, Buffered};
use crate::submodel::WidthSelection;
use crate::{
    AlgorithmState, Checkpoint, ClientPayload, ClientRoundStat, ClientUpdate, EngineConfig,
    Execution, MetricsReport, Observer, Parallelism, RoundEvent, RoundRecord, Schedule, Staleness,
};

/// The 8-byte file magic ("MHFL checkpoint, line 1 of the format family").
pub const MAGIC: [u8; 8] = *b"MHFLCKP1";

/// The newest on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Every section of a version-1 checkpoint, in canonical file order.
const SECTIONS: [(u8, &str); 9] = [
    (1, "config"),
    (2, "algorithm"),
    (3, "rng"),
    (4, "report"),
    (5, "driver"),
    (6, "arrivals"),
    (7, "buffer"),
    (8, "pending"),
    (9, "queue"),
];

fn section_name(id: u8) -> Option<&'static str> {
    SECTIONS.iter().find(|(i, _)| *i == id).map(|(_, n)| *n)
}

/// Errors produced while encoding, decoding, reading or writing a durable
/// checkpoint. Every corruption mode of the format maps to a distinct
/// variant; decoding never panics and never returns a silently-wrong
/// [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// A filesystem operation failed (message carries the `std::io` detail).
    Io {
        /// The operation that failed (`"read"`, `"write"`, `"rename"`).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The file does not begin with [`MAGIC`] — not a checkpoint at all, or
    /// one whose header was overwritten.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file declares a format version this build does not understand
    /// (e.g. a checkpoint written by a future release).
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// The header fingerprint does not match the configuration section —
    /// the header and body come from different runs (or the fingerprint
    /// bytes were corrupted).
    FingerprintMismatch {
        /// The fingerprint stored in the header.
        stored: u64,
        /// The fingerprint recomputed from the configuration section.
        computed: u64,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// The section whose payload is corrupt.
        section: &'static str,
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum recomputed from the payload.
        computed: u64,
    },
    /// The file ended before the declared structure was complete.
    Truncated {
        /// The section (or `"header"`/`"frame"`) being read at the cut.
        section: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A section payload passed its checksum but does not parse — or the
    /// section table itself is inconsistent (unknown id, duplicate,
    /// missing). Only reachable for files not produced by this encoder.
    Malformed {
        /// The section at fault.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Bytes follow the final declared section.
    TrailingData {
        /// Number of unconsumed trailing bytes.
        bytes: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, detail } => {
                write!(f, "checkpoint {op} failed for {path:?}: {detail}")
            }
            PersistError::BadMagic { found } => {
                write!(f, "not a checkpoint file: bad magic {found:02x?}")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads up to {supported})"
            ),
            PersistError::FingerprintMismatch { stored, computed } => write!(
                f,
                "configuration fingerprint mismatch: header says {stored:#018x}, config section hashes to {computed:#018x}"
            ),
            PersistError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in section {section:?}: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::Truncated {
                section,
                needed,
                remaining,
            } => write!(
                f,
                "checkpoint truncated in {section}: needed {needed} more bytes, {remaining} remain"
            ),
            PersistError::Malformed { section, detail } => {
                write!(f, "malformed checkpoint section {section:?}: {detail}")
            }
            PersistError::TrailingData { bytes } => {
                write!(f, "{bytes} trailing bytes after the final checkpoint section")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Alias for persist-layer results.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

// ---------------------------------------------------------------------------
// Primitive encoder
// ---------------------------------------------------------------------------

/// A little-endian byte-stream writer for checkpoint sections.
///
/// Deliberately minimal: the format has exactly the primitives below, and
/// every floating-point value goes through `to_bits` so encoding is lossless
/// and canonical.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends the exact bit pattern of an `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends the exact bit pattern of an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Primitive decoder
// ---------------------------------------------------------------------------

/// A bounds-checked reader over one section payload.
///
/// Every read returns a typed [`PersistError`] on overrun; collection
/// lengths are validated against the bytes actually remaining before any
/// allocation, so a corrupt length field cannot trigger an out-of-memory
/// abort.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`, attributing errors to `section`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Decoder {
            buf,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn malformed(&self, detail: impl Into<String>) -> PersistError {
        PersistError::Malformed {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                section: self.section,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> PersistResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> PersistResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> PersistResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` into a `usize`.
    pub fn take_usize(&mut self) -> PersistResult<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| self.malformed(format!("value {v} exceeds usize")))
    }

    /// Reads a collection length and validates it against the bytes left:
    /// a valid encoding needs at least `min_elem_bytes` per element, so a
    /// corrupt length cannot force a huge allocation.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> PersistResult<usize> {
        let len = self.take_usize()?;
        let floor = len.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(PersistError::Truncated {
                section: self.section,
                needed: floor,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a one-byte bool, rejecting anything but `0`/`1`.
    pub fn take_bool(&mut self) -> PersistResult<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.malformed(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads an `f32` from its bit pattern.
    pub fn take_f32(&mut self) -> PersistResult<f32> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> PersistResult<String> {
        let len = self.take_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| self.malformed(format!("invalid UTF-8 string: {e}")))
    }

    /// Requires that every byte has been consumed.
    pub fn finish(&self) -> PersistResult<()> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!(
                "{} unconsumed bytes at the end of the section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Type codecs
// ---------------------------------------------------------------------------

fn put_tensor(e: &mut Encoder, t: &Tensor) {
    let dims = t.dims();
    e.put_u32(dims.len() as u32);
    for &d in dims {
        e.put_usize(d);
    }
    for &v in t.as_slice() {
        e.put_f32(v);
    }
}

fn take_tensor(d: &mut Decoder<'_>) -> PersistResult<Tensor> {
    let rank = d.take_u32()? as usize;
    if rank > 16 {
        return Err(PersistError::Malformed {
            section: d.section,
            detail: format!("tensor rank {rank} is implausible"),
        });
    }
    let mut dims = Vec::with_capacity(rank);
    let mut len = 1usize;
    for _ in 0..rank {
        let extent = d.take_usize()?;
        len = len
            .checked_mul(extent)
            .ok_or_else(|| PersistError::Malformed {
                section: d.section,
                detail: "tensor element count overflows".into(),
            })?;
        dims.push(extent);
    }
    if len.saturating_mul(4) > d.remaining() {
        return Err(PersistError::Truncated {
            section: d.section,
            needed: len.saturating_mul(4),
            remaining: d.remaining(),
        });
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(d.take_f32()?);
    }
    Tensor::from_vec(data, &dims).map_err(|e| PersistError::Malformed {
        section: d.section,
        detail: format!("tensor reconstruction failed: {e}"),
    })
}

fn put_state_dict(e: &mut Encoder, sd: &StateDict) {
    e.put_usize(sd.len());
    for (name, tensor) in sd.iter() {
        e.put_str(name);
        put_tensor(e, tensor);
    }
}

fn take_state_dict(d: &mut Decoder<'_>) -> PersistResult<StateDict> {
    let count = d.take_len(12)?; // name prefix + tensor rank at minimum
    let mut sd = StateDict::new();
    for _ in 0..count {
        let name = d.take_str()?;
        let tensor = take_tensor(d)?;
        sd.insert(name, tensor);
    }
    Ok(sd)
}

fn put_f32_vec(e: &mut Encoder, values: &[f32]) {
    e.put_usize(values.len());
    for &v in values {
        e.put_f32(v);
    }
}

fn take_f32_vec(d: &mut Decoder<'_>) -> PersistResult<Vec<f32>> {
    let len = d.take_len(4)?;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(d.take_f32()?);
    }
    Ok(values)
}

fn put_selection(e: &mut Encoder, selection: WidthSelection) {
    match selection {
        WidthSelection::Prefix => e.put_u8(0),
        WidthSelection::Rolling { shift } => {
            e.put_u8(1);
            e.put_usize(shift);
        }
    }
}

fn take_selection(d: &mut Decoder<'_>) -> PersistResult<WidthSelection> {
    match d.take_u8()? {
        0 => Ok(WidthSelection::Prefix),
        1 => Ok(WidthSelection::Rolling {
            shift: d.take_usize()?,
        }),
        tag => Err(PersistError::Malformed {
            section: d.section,
            detail: format!("unknown width-selection tag {tag}"),
        }),
    }
}

fn put_payload(e: &mut Encoder, payload: &ClientPayload) {
    match payload {
        ClientPayload::SubModel {
            state,
            selection,
            num_blocks,
        } => {
            e.put_u8(0);
            put_state_dict(e, state);
            put_selection(e, *selection);
            e.put_usize(*num_blocks);
        }
        ClientPayload::Prototypes {
            state,
            sums,
            counts,
        } => {
            e.put_u8(1);
            put_state_dict(e, state);
            put_tensor(e, sums);
            put_f32_vec(e, counts);
        }
        ClientPayload::PublicLogits {
            state,
            probs,
            confidence,
        } => {
            e.put_u8(2);
            put_state_dict(e, state);
            put_tensor(e, probs);
            e.put_f32(*confidence);
        }
        ClientPayload::Empty => e.put_u8(3),
    }
}

fn take_payload(d: &mut Decoder<'_>) -> PersistResult<ClientPayload> {
    match d.take_u8()? {
        0 => Ok(ClientPayload::SubModel {
            state: take_state_dict(d)?,
            selection: take_selection(d)?,
            num_blocks: d.take_usize()?,
        }),
        1 => Ok(ClientPayload::Prototypes {
            state: take_state_dict(d)?,
            sums: take_tensor(d)?,
            counts: take_f32_vec(d)?,
        }),
        2 => Ok(ClientPayload::PublicLogits {
            state: take_state_dict(d)?,
            probs: take_tensor(d)?,
            confidence: d.take_f32()?,
        }),
        3 => Ok(ClientPayload::Empty),
        tag => Err(PersistError::Malformed {
            section: d.section,
            detail: format!("unknown client-payload tag {tag}"),
        }),
    }
}

fn put_update(e: &mut Encoder, update: &ClientUpdate) {
    e.put_usize(update.client);
    e.put_usize(update.num_samples);
    e.put_f32(update.staleness_weight);
    put_payload(e, &update.payload);
}

fn take_update(d: &mut Decoder<'_>) -> PersistResult<ClientUpdate> {
    let client = d.take_usize()?;
    let num_samples = d.take_usize()?;
    let staleness_weight = d.take_f32()?;
    let payload = take_payload(d)?;
    Ok(ClientUpdate {
        client,
        num_samples,
        payload,
        staleness_weight,
    })
}

fn put_stat(e: &mut Encoder, stat: &ClientRoundStat) {
    e.put_usize(stat.client);
    e.put_usize(stat.round);
    e.put_f64(stat.dispatch_secs);
    e.put_f64(stat.arrival_secs);
    e.put_usize(stat.staleness);
    e.put_u64(stat.payload_bytes);
}

fn take_stat(d: &mut Decoder<'_>) -> PersistResult<ClientRoundStat> {
    Ok(ClientRoundStat {
        client: d.take_usize()?,
        round: d.take_usize()?,
        dispatch_secs: d.take_f64()?,
        arrival_secs: d.take_f64()?,
        staleness: d.take_usize()?,
        payload_bytes: d.take_u64()?,
    })
}

fn put_record(e: &mut Encoder, record: &RoundRecord) {
    e.put_usize(record.round);
    e.put_f64(record.sim_time_secs);
    e.put_f32(record.global_accuracy);
    put_f32_vec(e, &record.per_client_accuracy);
    e.put_usize(record.client_stats.len());
    for stat in &record.client_stats {
        put_stat(e, stat);
    }
}

fn take_record(d: &mut Decoder<'_>) -> PersistResult<RoundRecord> {
    let round = d.take_usize()?;
    let sim_time_secs = d.take_f64()?;
    let global_accuracy = d.take_f32()?;
    let per_client_accuracy = take_f32_vec(d)?;
    let stats_len = d.take_len(48)?;
    let mut client_stats = Vec::with_capacity(stats_len);
    for _ in 0..stats_len {
        client_stats.push(take_stat(d)?);
    }
    Ok(RoundRecord {
        round,
        sim_time_secs,
        global_accuracy,
        per_client_accuracy,
        client_stats,
    })
}

fn put_report(e: &mut Encoder, report: &MetricsReport) {
    e.put_str(&report.algorithm);
    e.put_usize(report.dropped_updates());
    e.put_usize(report.records.len());
    for record in &report.records {
        put_record(e, record);
    }
}

fn take_report(d: &mut Decoder<'_>) -> PersistResult<MetricsReport> {
    let algorithm = d.take_str()?;
    let dropped = d.take_usize()?;
    let count = d.take_len(24)?;
    let mut report = MetricsReport::new(algorithm);
    report.set_dropped_updates(dropped);
    for _ in 0..count {
        report.push(take_record(d)?);
    }
    Ok(report)
}

fn put_event(e: &mut Encoder, event: &RoundEvent) {
    match event {
        RoundEvent::RoundStarted {
            round,
            sim_time_secs,
        } => {
            e.put_u8(0);
            e.put_usize(*round);
            e.put_f64(*sim_time_secs);
        }
        RoundEvent::ClientDispatched {
            round,
            client,
            sim_time_secs,
        } => {
            e.put_u8(1);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
        }
        RoundEvent::UpdateArrived {
            round,
            client,
            sim_time_secs,
            staleness,
        } => {
            e.put_u8(2);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
            e.put_usize(*staleness);
        }
        RoundEvent::UpdateDropped {
            round,
            client,
            sim_time_secs,
            staleness,
        } => {
            e.put_u8(3);
            e.put_usize(*round);
            e.put_usize(*client);
            e.put_f64(*sim_time_secs);
            e.put_usize(*staleness);
        }
        RoundEvent::Aggregated {
            round,
            sim_time_secs,
            num_updates,
        } => {
            e.put_u8(4);
            e.put_usize(*round);
            e.put_f64(*sim_time_secs);
            e.put_usize(*num_updates);
        }
        RoundEvent::RoundCompleted {
            round,
            sim_time_secs,
            record,
        } => {
            e.put_u8(5);
            e.put_usize(*round);
            e.put_f64(*sim_time_secs);
            match record {
                Some(record) => {
                    e.put_bool(true);
                    put_record(e, record);
                }
                None => e.put_bool(false),
            }
        }
        RoundEvent::RunCompleted { report } => {
            e.put_u8(6);
            put_report(e, report);
        }
    }
}

fn take_event(d: &mut Decoder<'_>) -> PersistResult<RoundEvent> {
    match d.take_u8()? {
        0 => Ok(RoundEvent::RoundStarted {
            round: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
        }),
        1 => Ok(RoundEvent::ClientDispatched {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
        }),
        2 => Ok(RoundEvent::UpdateArrived {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            staleness: d.take_usize()?,
        }),
        3 => Ok(RoundEvent::UpdateDropped {
            round: d.take_usize()?,
            client: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            staleness: d.take_usize()?,
        }),
        4 => Ok(RoundEvent::Aggregated {
            round: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            num_updates: d.take_usize()?,
        }),
        5 => Ok(RoundEvent::RoundCompleted {
            round: d.take_usize()?,
            sim_time_secs: d.take_f64()?,
            record: if d.take_bool()? {
                Some(take_record(d)?)
            } else {
                None
            },
        }),
        6 => Ok(RoundEvent::RunCompleted {
            report: take_report(d)?,
        }),
        tag => Err(PersistError::Malformed {
            section: d.section,
            detail: format!("unknown round-event tag {tag}"),
        }),
    }
}

fn put_schedule(e: &mut Encoder, schedule: Schedule) {
    match schedule {
        Schedule::Uniform => e.put_u8(0),
        Schedule::DeadlineAware { deadline_secs } => {
            e.put_u8(1);
            e.put_f64(deadline_secs);
        }
        Schedule::FastestOfK { factor } => {
            e.put_u8(2);
            e.put_usize(factor);
        }
        Schedule::BandwidthAware { factor } => {
            e.put_u8(3);
            e.put_usize(factor);
        }
        Schedule::AvailabilityTrace {
            period_secs,
            online_fraction,
        } => {
            e.put_u8(4);
            e.put_f64(period_secs);
            e.put_f64(online_fraction);
        }
        Schedule::DiurnalTrace {
            day_secs,
            slot_secs,
            peak_online,
            trough_online,
        } => {
            e.put_u8(5);
            e.put_f64(day_secs);
            e.put_f64(slot_secs);
            e.put_f64(peak_online);
            e.put_f64(trough_online);
        }
    }
}

fn take_schedule(d: &mut Decoder<'_>) -> PersistResult<Schedule> {
    match d.take_u8()? {
        0 => Ok(Schedule::Uniform),
        1 => Ok(Schedule::DeadlineAware {
            deadline_secs: d.take_f64()?,
        }),
        2 => Ok(Schedule::FastestOfK {
            factor: d.take_usize()?,
        }),
        3 => Ok(Schedule::BandwidthAware {
            factor: d.take_usize()?,
        }),
        4 => Ok(Schedule::AvailabilityTrace {
            period_secs: d.take_f64()?,
            online_fraction: d.take_f64()?,
        }),
        5 => Ok(Schedule::DiurnalTrace {
            day_secs: d.take_f64()?,
            slot_secs: d.take_f64()?,
            peak_online: d.take_f64()?,
            trough_online: d.take_f64()?,
        }),
        tag => Err(PersistError::Malformed {
            section: d.section,
            detail: format!("unknown schedule tag {tag}"),
        }),
    }
}

fn put_config(e: &mut Encoder, config: &EngineConfig) {
    e.put_usize(config.rounds);
    e.put_f64(config.sample_ratio);
    e.put_usize(config.eval_every);
    e.put_usize(config.stability_clients);
    put_schedule(e, config.schedule);
    match config.parallelism {
        Parallelism::Sequential => e.put_u8(0),
        Parallelism::Threads { workers } => {
            e.put_u8(1);
            e.put_usize(workers);
        }
    }
    match config.execution {
        Execution::Synchronous => e.put_u8(0),
        Execution::AsyncBuffered {
            buffer_size,
            concurrency,
        } => {
            e.put_u8(1);
            e.put_usize(buffer_size);
            e.put_usize(concurrency);
        }
    }
    match config.staleness {
        Staleness::Sqrt => e.put_u8(0),
        Staleness::Polynomial { exp } => {
            e.put_u8(1);
            e.put_f32(exp);
        }
        Staleness::Hinge { cutoff } => {
            e.put_u8(2);
            e.put_usize(cutoff);
        }
    }
    match config.max_staleness {
        None => e.put_bool(false),
        Some(bound) => {
            e.put_bool(true);
            e.put_usize(bound);
        }
    }
}

fn take_config(d: &mut Decoder<'_>) -> PersistResult<EngineConfig> {
    let rounds = d.take_usize()?;
    let sample_ratio = d.take_f64()?;
    let eval_every = d.take_usize()?;
    let stability_clients = d.take_usize()?;
    let schedule = take_schedule(d)?;
    let parallelism = match d.take_u8()? {
        0 => Parallelism::Sequential,
        1 => Parallelism::Threads {
            workers: d.take_usize()?,
        },
        tag => {
            return Err(PersistError::Malformed {
                section: d.section,
                detail: format!("unknown parallelism tag {tag}"),
            })
        }
    };
    let execution = match d.take_u8()? {
        0 => Execution::Synchronous,
        1 => Execution::AsyncBuffered {
            buffer_size: d.take_usize()?,
            concurrency: d.take_usize()?,
        },
        tag => {
            return Err(PersistError::Malformed {
                section: d.section,
                detail: format!("unknown execution tag {tag}"),
            })
        }
    };
    let staleness = match d.take_u8()? {
        0 => Staleness::Sqrt,
        1 => Staleness::Polynomial { exp: d.take_f32()? },
        2 => Staleness::Hinge {
            cutoff: d.take_usize()?,
        },
        tag => {
            return Err(PersistError::Malformed {
                section: d.section,
                detail: format!("unknown staleness tag {tag}"),
            })
        }
    };
    let max_staleness = if d.take_bool()? {
        Some(d.take_usize()?)
    } else {
        None
    };
    Ok(EngineConfig {
        rounds,
        sample_ratio,
        eval_every,
        stability_clients,
        schedule,
        parallelism,
        execution,
        staleness,
        max_staleness,
    })
}

fn put_algorithm_state(e: &mut Encoder, state: &AlgorithmState) {
    let (states, tensors, scalars) = state.parts();
    e.put_usize(states.len());
    for (name, sd) in states {
        e.put_str(name);
        put_state_dict(e, sd);
    }
    e.put_usize(tensors.len());
    for (name, tensor) in tensors {
        e.put_str(name);
        put_tensor(e, tensor);
    }
    e.put_usize(scalars.len());
    for (name, values) in scalars {
        e.put_str(name);
        put_f32_vec(e, values);
    }
}

fn take_algorithm_state(d: &mut Decoder<'_>) -> PersistResult<AlgorithmState> {
    let states_len = d.take_len(16)?;
    let mut states = Vec::with_capacity(states_len);
    for _ in 0..states_len {
        let name = d.take_str()?;
        states.push((name, take_state_dict(d)?));
    }
    let tensors_len = d.take_len(12)?;
    let mut tensors = Vec::with_capacity(tensors_len);
    for _ in 0..tensors_len {
        let name = d.take_str()?;
        tensors.push((name, take_tensor(d)?));
    }
    let scalars_len = d.take_len(16)?;
    let mut scalars = Vec::with_capacity(scalars_len);
    for _ in 0..scalars_len {
        let name = d.take_str()?;
        scalars.push((name, take_f32_vec(d)?));
    }
    Ok(AlgorithmState::from_parts(states, tensors, scalars))
}

fn put_arrival(e: &mut Encoder, arrival: &Arrival) {
    e.put_f64(arrival.time);
    e.put_u64(arrival.seq);
    e.put_f64(arrival.dispatched_at);
    e.put_usize(arrival.dispatched_version);
    put_update(e, &arrival.update);
}

fn take_arrival(d: &mut Decoder<'_>) -> PersistResult<Arrival> {
    Ok(Arrival {
        time: d.take_f64()?,
        seq: d.take_u64()?,
        dispatched_at: d.take_f64()?,
        dispatched_version: d.take_usize()?,
        update: take_update(d)?,
    })
}

fn put_buffered(e: &mut Encoder, buffered: &Buffered) {
    e.put_u64(buffered.seq);
    put_update(e, &buffered.update);
    put_stat(e, &buffered.stat);
}

fn take_buffered(d: &mut Decoder<'_>) -> PersistResult<Buffered> {
    Ok(Buffered {
        seq: d.take_u64()?,
        update: take_update(d)?,
        stat: take_stat(d)?,
    })
}

// ---------------------------------------------------------------------------
// Whole-checkpoint codec
// ---------------------------------------------------------------------------

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

fn encode_config_section(checkpoint: &Checkpoint) -> Vec<u8> {
    let mut e = Encoder::new();
    put_config(&mut e, &checkpoint.config);
    e.put_str(&checkpoint.algorithm_name);
    e.put_usize(checkpoint.in_flight.len());
    e.into_bytes()
}

/// The configuration fingerprint a checkpoint would carry in its file
/// header: an FNV-1a hash of the encoded engine configuration, algorithm
/// name and client count. Two checkpoints from the same experiment setup
/// share a fingerprint; resuming against the wrong setup is rejected before
/// any state is deserialised.
pub fn config_fingerprint(checkpoint: &Checkpoint) -> u64 {
    fnv64(&encode_config_section(checkpoint))
}

/// Encodes a [`Checkpoint`] into the version-1 binary format.
///
/// Encoding is canonical: equal checkpoints yield equal bytes (the arrival
/// heap is already stored in canonical pop order by
/// [`Session::checkpoint`](crate::Session::checkpoint)).
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> Vec<u8> {
    let config = encode_config_section(checkpoint);
    let fingerprint = fnv64(&config);

    let algorithm = {
        let mut e = Encoder::new();
        put_algorithm_state(&mut e, &checkpoint.algorithm);
        e.into_bytes()
    };
    let rng = {
        let mut e = Encoder::new();
        for word in checkpoint.rng.words {
            e.put_u64(word);
        }
        e.put_u64(checkpoint.rng.seed);
        e.put_bool(checkpoint.rng.zero_init);
        e.into_bytes()
    };
    let report = {
        let mut e = Encoder::new();
        put_report(&mut e, &checkpoint.report);
        e.into_bytes()
    };
    let driver = {
        let mut e = Encoder::new();
        e.put_f64(checkpoint.sim_time);
        e.put_usize(checkpoint.version);
        e.put_u64(checkpoint.seq);
        e.put_bool(checkpoint.started);
        e.put_bool(checkpoint.finished);
        e.put_usize(checkpoint.in_flight.len());
        for &flag in &checkpoint.in_flight {
            e.put_bool(flag);
        }
        e.put_usize(checkpoint.in_flight_count);
        e.put_usize(checkpoint.idle_advances);
        e.put_f64(checkpoint.sync_round_end);
        e.put_usize(checkpoint.sync_expected);
        e.put_bool(checkpoint.sync_open);
        e.into_bytes()
    };
    let arrivals = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.arrivals.len());
        for arrival in &checkpoint.arrivals {
            put_arrival(&mut e, arrival);
        }
        e.into_bytes()
    };
    let buffer = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.buffer.len());
        for buffered in &checkpoint.buffer {
            put_buffered(&mut e, buffered);
        }
        e.into_bytes()
    };
    let pending = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.pending_stats.len());
        for stat in &checkpoint.pending_stats {
            put_stat(&mut e, stat);
        }
        e.into_bytes()
    };
    let queue = {
        let mut e = Encoder::new();
        e.put_usize(checkpoint.queue.len());
        for event in &checkpoint.queue {
            put_event(&mut e, event);
        }
        e.into_bytes()
    };

    let sections: [(u8, &[u8]); 9] = [
        (1, &config),
        (2, &algorithm),
        (3, &rng),
        (4, &report),
        (5, &driver),
        (6, &arrivals),
        (7, &buffer),
        (8, &pending),
        (9, &queue),
    ];

    let mut out = Encoder::new();
    out.buf.extend_from_slice(&MAGIC);
    out.put_u32(FORMAT_VERSION);
    out.put_u64(fingerprint);
    out.put_u32(sections.len() as u32);
    for (id, payload) in sections {
        out.put_u8(id);
        out.put_usize(payload.len());
        out.buf.extend_from_slice(payload);
        out.put_u64(fnv64(payload));
    }
    out.into_bytes()
}

/// Decodes a version-1 checkpoint from bytes, verifying the magic, format
/// version, every section checksum and the configuration fingerprint before
/// reconstructing any state.
///
/// # Errors
/// Every corruption mode maps to a typed [`PersistError`]; this function
/// never panics on untrusted input and never returns a checkpoint that
/// differs from the one encoded.
pub fn decode_checkpoint(bytes: &[u8]) -> PersistResult<Checkpoint> {
    let mut frame = Decoder::new(bytes, "header");
    let magic = frame.take(8).map_err(|_| PersistError::Truncated {
        section: "header",
        needed: 8,
        remaining: bytes.len(),
    })?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(PersistError::BadMagic { found });
    }
    let version = frame.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let fingerprint = frame.take_u64()?;
    let section_count = frame.take_u32()? as usize;
    if section_count != SECTIONS.len() {
        return Err(PersistError::Malformed {
            section: "header",
            detail: format!(
                "version-1 checkpoints have {} sections, file declares {section_count}",
                SECTIONS.len()
            ),
        });
    }

    // Read the section table, verifying each checksum as it streams past.
    let mut payloads: Vec<Option<&[u8]>> = vec![None; SECTIONS.len()];
    frame.section = "frame";
    for _ in 0..section_count {
        let id = frame.take_u8()?;
        let Some(name) = section_name(id) else {
            return Err(PersistError::Malformed {
                section: "frame",
                detail: format!("unknown section id {id}"),
            });
        };
        frame.section = name;
        let len = frame.take_len(1)?;
        let payload = frame.take(len)?;
        let stored = frame.take_u64()?;
        let computed = fnv64(payload);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch {
                section: name,
                stored,
                computed,
            });
        }
        let slot = SECTIONS
            .iter()
            .position(|(i, _)| *i == id)
            .expect("known id");
        if payloads[slot].is_some() {
            return Err(PersistError::Malformed {
                section: name,
                detail: "duplicate section".into(),
            });
        }
        payloads[slot] = Some(payload);
        frame.section = "frame";
    }
    if frame.remaining() != 0 {
        return Err(PersistError::TrailingData {
            bytes: frame.remaining(),
        });
    }
    let section = |slot: usize| -> PersistResult<&[u8]> {
        payloads[slot].ok_or(PersistError::Malformed {
            section: SECTIONS[slot].1,
            detail: "section missing".into(),
        })
    };

    // Config first: its hash must match the header fingerprint before any
    // other state is trusted.
    let config_bytes = section(0)?;
    let computed = fnv64(config_bytes);
    if computed != fingerprint {
        return Err(PersistError::FingerprintMismatch {
            stored: fingerprint,
            computed,
        });
    }
    let mut d = Decoder::new(config_bytes, "config");
    let config = take_config(&mut d)?;
    let algorithm_name = d.take_str()?;
    let num_clients = d.take_usize()?;
    d.finish()?;

    let mut d = Decoder::new(section(1)?, "algorithm");
    let algorithm = take_algorithm_state(&mut d)?;
    d.finish()?;

    let mut d = Decoder::new(section(2)?, "rng");
    let rng = RngState {
        words: [d.take_u64()?, d.take_u64()?, d.take_u64()?, d.take_u64()?],
        seed: d.take_u64()?,
        zero_init: d.take_bool()?,
    };
    d.finish()?;

    let mut d = Decoder::new(section(3)?, "report");
    let report = take_report(&mut d)?;
    d.finish()?;

    let mut d = Decoder::new(section(4)?, "driver");
    let sim_time = d.take_f64()?;
    let version = d.take_usize()?;
    let seq = d.take_u64()?;
    let started = d.take_bool()?;
    let finished = d.take_bool()?;
    let in_flight_len = d.take_len(1)?;
    if in_flight_len != num_clients {
        return Err(PersistError::Malformed {
            section: "driver",
            detail: format!(
                "in-flight map covers {in_flight_len} clients, config section says {num_clients}"
            ),
        });
    }
    let mut in_flight = Vec::with_capacity(in_flight_len);
    for _ in 0..in_flight_len {
        in_flight.push(d.take_bool()?);
    }
    let in_flight_count = d.take_usize()?;
    let idle_advances = d.take_usize()?;
    let sync_round_end = d.take_f64()?;
    let sync_expected = d.take_usize()?;
    let sync_open = d.take_bool()?;
    d.finish()?;

    let mut d = Decoder::new(section(5)?, "arrivals");
    let arrivals_len = d.take_len(32)?;
    let mut arrivals = Vec::with_capacity(arrivals_len);
    for _ in 0..arrivals_len {
        arrivals.push(take_arrival(&mut d)?);
    }
    d.finish()?;

    let mut d = Decoder::new(section(6)?, "buffer");
    let buffer_len = d.take_len(16)?;
    let mut buffer = Vec::with_capacity(buffer_len);
    for _ in 0..buffer_len {
        buffer.push(take_buffered(&mut d)?);
    }
    d.finish()?;

    let mut d = Decoder::new(section(7)?, "pending");
    let pending_len = d.take_len(48)?;
    let mut pending_stats = Vec::with_capacity(pending_len);
    for _ in 0..pending_len {
        pending_stats.push(take_stat(&mut d)?);
    }
    d.finish()?;

    let mut d = Decoder::new(section(8)?, "queue");
    let queue_len = d.take_len(1)?;
    let mut queue = Vec::with_capacity(queue_len);
    for _ in 0..queue_len {
        queue.push(take_event(&mut d)?);
    }
    d.finish()?;

    Ok(Checkpoint {
        config,
        algorithm_name,
        algorithm,
        rng,
        report,
        sim_time,
        version,
        seq,
        started,
        finished,
        in_flight,
        in_flight_count,
        arrivals,
        buffer,
        pending_stats,
        idle_advances,
        sync_round_end,
        sync_expected,
        sync_open,
        queue,
    })
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

fn io_error(op: &'static str, path: &Path, e: std::io::Error) -> PersistError {
    PersistError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Writes a checkpoint to `path` atomically: the bytes are written to a
/// sibling `<name>.tmp` file, fsynced, and renamed into place, so a crash
/// mid-write — including a power loss after the rename is journaled but
/// before data blocks would otherwise have hit disk — can never leave a
/// truncated checkpoint under the final name.
///
/// # Errors
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn write_checkpoint(path: impl AsRef<Path>, checkpoint: &Checkpoint) -> PersistResult<()> {
    use std::io::Write as _;

    let path = path.as_ref();
    let bytes = encode_checkpoint(checkpoint);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_error("write", &tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| io_error("write", &tmp, e))?;
        // The durability half of the atomicity claim: the tmp file's data
        // must be on disk before the rename makes it the checkpoint.
        file.sync_all().map_err(|e| io_error("sync", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_error("rename", path, e))?;
    // Best-effort fsync of the parent directory so the rename itself is
    // durable; not every platform allows opening a directory, so failures
    // here are ignored (the file contents are already safe either way).
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads and decodes a checkpoint from `path`.
///
/// # Errors
/// Returns [`PersistError::Io`] on filesystem failure and the full
/// [`decode_checkpoint`] error spectrum on corruption.
pub fn read_checkpoint(path: impl AsRef<Path>) -> PersistResult<Checkpoint> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_error("read", path, e))?;
    decode_checkpoint(&bytes)
}

// ---------------------------------------------------------------------------
// Auto-save observer
// ---------------------------------------------------------------------------

/// An [`Observer`] that asks the session to save a durable checkpoint every
/// `every` completed rounds (and, by default, once more when the run
/// completes), so a long run leaves a fresh resume point behind without the
/// driving code checkpointing by hand.
///
/// The save itself is performed by the [`Session`](crate::Session) at the
/// next event boundary via [`Session::save`](crate::Session::save) — atomic
/// tmp-file-then-rename, the checkpoint state exactly what
/// [`Session::checkpoint`](crate::Session::checkpoint) would capture there —
/// so a run resumed from the file replays bit-identically.
///
/// ```ignore
/// session.observe(Box::new(CheckpointObserver::every("run.ckpt", 25)));
/// let report = session.drain()?; // saves at rounds 25, 50, ... and at the end
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointObserver {
    path: PathBuf,
    every: usize,
    save_on_completion: bool,
    pending: bool,
    requested: usize,
}

impl CheckpointObserver {
    /// Saves to `path` every `every` completed rounds (clamped to at least
    /// one) and once more when the run completes.
    pub fn every(path: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointObserver {
            path: path.into(),
            every: every.max(1),
            save_on_completion: true,
            pending: false,
            requested: 0,
        }
    }

    /// Disables (or re-enables) the extra save on run completion.
    #[must_use]
    pub fn save_on_completion(mut self, yes: bool) -> Self {
        self.save_on_completion = yes;
        self
    }

    /// The path this observer saves to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of saves requested so far.
    pub fn saves_requested(&self) -> usize {
        self.requested
    }
}

impl Observer for CheckpointObserver {
    fn on_event(&mut self, event: &RoundEvent) {
        match event {
            RoundEvent::RoundCompleted { round, .. } if round.is_multiple_of(self.every) => {
                self.pending = true;
            }
            RoundEvent::RunCompleted { .. } if self.save_on_completion => {
                self.pending = true;
            }
            _ => {}
        }
    }

    fn save_request(&mut self) -> Option<PathBuf> {
        if self.pending {
            self.pending = false;
            self.requested += 1;
            Some(self.path.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_usize(42);
        e.put_bool(true);
        e.put_bool(false);
        e.put_f32(-0.0);
        e.put_f64(f64::NAN);
        e.put_str("héllo");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.take_usize().unwrap(), 42);
        assert!(d.take_bool().unwrap());
        assert!(!d.take_bool().unwrap());
        // Exact bit patterns survive, including -0.0 and NaN.
        assert_eq!(d.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(d.take_str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn decoder_overruns_are_typed_truncations() {
        let mut d = Decoder::new(&[1, 2], "t");
        assert!(matches!(
            d.take_u64(),
            Err(PersistError::Truncated {
                section: "t",
                needed: 8,
                remaining: 2
            })
        ));
        // A huge declared length cannot force an allocation.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert!(matches!(d.take_len(4), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn huge_declared_tensor_extent_is_a_typed_truncation_not_an_overflow_panic() {
        // A rank-1 tensor claiming 2^62 elements: the element count itself
        // fits a usize, but the byte count (×4) overflows — both the guard
        // and the error construction must saturate instead of panicking.
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_u64(1u64 << 62);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert!(matches!(
            take_tensor(&mut d),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_bools_and_strings_are_malformed() {
        let mut d = Decoder::new(&[2], "t");
        assert!(matches!(
            d.take_bool(),
            Err(PersistError::Malformed { section: "t", .. })
        ));
        let mut e = Encoder::new();
        e.put_usize(2);
        e.put_u8(0xFF);
        e.put_u8(0xFE);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert!(matches!(d.take_str(), Err(PersistError::Malformed { .. })));
    }

    #[test]
    fn tensors_and_state_dicts_round_trip_bit_exactly() {
        let t = Tensor::from_vec(vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e-20], &[2, 2]).unwrap();
        let mut e = Encoder::new();
        put_tensor(&mut e, &t);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        let back = take_tensor(&mut d).unwrap();
        assert_eq!(back.dims(), t.dims());
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let mut sd = StateDict::new();
        sd.insert("w", t.clone());
        sd.insert("b", Tensor::zeros(&[3]));
        let mut e = Encoder::new();
        put_state_dict(&mut e, &sd);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert_eq!(take_state_dict(&mut d).unwrap(), sd);
        d.finish().unwrap();
    }

    #[test]
    fn payload_variants_round_trip() {
        let mut sd = StateDict::new();
        sd.insert("x", Tensor::ones(&[2]));
        let payloads = [
            ClientPayload::SubModel {
                state: sd.clone(),
                selection: WidthSelection::Rolling { shift: 9 },
                num_blocks: 4,
            },
            ClientPayload::Prototypes {
                state: sd.clone(),
                sums: Tensor::ones(&[2, 3]),
                counts: vec![1.0, 0.0],
            },
            ClientPayload::PublicLogits {
                state: sd,
                probs: Tensor::full(&[2, 2], 0.25),
                confidence: 0.75,
            },
            ClientPayload::Empty,
        ];
        for payload in payloads {
            let mut e = Encoder::new();
            put_payload(&mut e, &payload);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes, "t");
            let back = take_payload(&mut d).unwrap();
            d.finish().unwrap();
            assert_eq!(back.kind(), payload.kind());
            assert_eq!(back.payload_bytes(), payload.payload_bytes());
        }
    }

    #[test]
    fn engine_configs_round_trip_through_all_variants() {
        let configs = [
            EngineConfig::default(),
            EngineConfig {
                rounds: 1000,
                sample_ratio: 0.25,
                eval_every: 7,
                stability_clients: 3,
                schedule: Schedule::DiurnalTrace {
                    day_secs: 86_400.0,
                    slot_secs: 60.0,
                    peak_online: 0.9,
                    trough_online: 0.1,
                },
                parallelism: Parallelism::Threads { workers: 8 },
                execution: Execution::AsyncBuffered {
                    buffer_size: 16,
                    concurrency: 64,
                },
                staleness: Staleness::Hinge { cutoff: 5 },
                max_staleness: Some(12),
            },
            EngineConfig {
                schedule: Schedule::BandwidthAware { factor: 3 },
                staleness: Staleness::Polynomial { exp: 1.5 },
                ..EngineConfig::default()
            },
        ];
        for config in configs {
            let mut e = Encoder::new();
            put_config(&mut e, &config);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes, "t");
            assert_eq!(take_config(&mut d).unwrap(), config);
            d.finish().unwrap();
        }
    }

    #[test]
    fn checkpoint_observer_requests_on_cadence_and_completion() {
        let mut obs = CheckpointObserver::every("/tmp/x.ckpt", 2);
        assert!(obs.save_request().is_none());
        let completed = |round| RoundEvent::RoundCompleted {
            round,
            sim_time_secs: 0.0,
            record: None,
        };
        obs.on_event(&completed(1));
        assert!(obs.save_request().is_none());
        obs.on_event(&completed(2));
        assert_eq!(
            obs.save_request().as_deref(),
            Some(Path::new("/tmp/x.ckpt"))
        );
        assert!(obs.save_request().is_none(), "request is one-shot");
        obs.on_event(&RoundEvent::RunCompleted {
            report: MetricsReport::new("X"),
        });
        assert!(obs.save_request().is_some());
        assert_eq!(obs.saves_requested(), 2);

        let mut no_final = CheckpointObserver::every("/tmp/y.ckpt", 1).save_on_completion(false);
        no_final.on_event(&RoundEvent::RunCompleted {
            report: MetricsReport::new("X"),
        });
        assert!(no_final.save_request().is_none());
    }
}
