//! The shared context of one federated experiment.

use std::borrow::Cow;
use std::sync::{Arc, OnceLock};

use mhfl_data::{apply_drift, DataTask, Dataset, Drift, FederatedDataset};
use mhfl_device::ClientAssignment;
use mhfl_nn::SgdConfig;
use serde::{Deserialize, Serialize};

use crate::{FlError, FlResult};

/// Hyper-parameters of a client's local optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of local SGD steps per round.
    pub local_steps: usize,
    /// Optimiser configuration.
    pub sgd: SgdConfig,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig {
            batch_size: 16,
            local_steps: 5,
            sgd: SgdConfig::default(),
        }
    }
}

/// On-demand derivation of per-client state for populations too large to
/// materialise.
///
/// A source must be *seed-deterministic and order-free*: the value returned
/// for a client depends only on the source's own configuration and the
/// client id, never on which other clients were derived before it — that is
/// what makes sparse checkpoints resumable and lazy runs bit-reproducible.
/// Implementations are typically thin wrappers over
/// [`mhfl_device::ConstraintCase::derive_device`] /
/// [`ConstraintCase::assign_client`](mhfl_device::ConstraintCase::assign_client)
/// and [`mhfl_data::ShardPlan::client_shard`].
pub trait ClientSource: Send + Sync {
    /// Derives the device/model assignment of `client`.
    fn assignment(&self, client: usize) -> ClientAssignment;

    /// Derives the training shard of `client`.
    fn client_shard(&self, client: usize) -> Dataset;
}

/// How the per-client state of the federation is held.
enum Backend {
    /// Every shard and assignment materialised up front (the classic mode;
    /// memory is O(population)).
    Eager {
        data: FederatedDataset,
        assignments: Vec<ClientAssignment>,
    },
    /// Shards and assignments derived on demand from a [`ClientSource`];
    /// only the shared test/public splits are resident (memory is O(active
    /// clients), independent of `num_clients`).
    Lazy {
        source: Arc<dyn ClientSource>,
        task: DataTask,
        num_clients: usize,
        test: Dataset,
        public: Dataset,
    },
}

impl Clone for Backend {
    fn clone(&self) -> Self {
        match self {
            Backend::Eager { data, assignments } => Backend::Eager {
                data: data.clone(),
                assignments: assignments.clone(),
            },
            Backend::Lazy {
                source,
                task,
                num_clients,
                test,
                public,
            } => Backend::Lazy {
                source: Arc::clone(source),
                task: *task,
                num_clients: *num_clients,
                test: test.clone(),
                public: public.clone(),
            },
        }
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Eager { data, assignments } => f
                .debug_struct("Eager")
                .field("task", &data.task())
                .field("num_clients", &assignments.len())
                .finish(),
            Backend::Lazy {
                task, num_clients, ..
            } => f
                .debug_struct("Lazy")
                .field("task", task)
                .field("num_clients", num_clients)
                .finish(),
        }
    }
}

/// Everything an algorithm needs to know about the federation it runs in:
/// the per-client data shards, the per-client device/model assignments
/// produced by a [`mhfl_device::ConstraintCase`], and the local training
/// hyper-parameters.
///
/// Two backing modes share one API. [`FederationContext::new`] materialises
/// everything eagerly — the right choice up to a few thousand clients, and
/// the mode every golden digest is pinned against.
/// [`FederationContext::lazy`] holds a [`ClientSource`] instead and derives
/// each client's shard and assignment on demand from `(seed, client_id)`,
/// so resident memory is O(active clients) and a million-client population
/// costs no more to hold than a six-client one. Client state is addressed
/// by id in both modes: [`assignment`](FederationContext::assignment)
/// returns by value and [`client_shard`](FederationContext::client_shard)
/// returns [`Cow`] (borrowed when eager, derived-and-owned when lazy).
#[derive(Debug, Clone)]
pub struct FederationContext {
    backend: Backend,
    train: LocalTrainConfig,
    seed: u64,
    /// Distribution-shift schedule applied to training shards by
    /// [`client_shard_at`](FederationContext::client_shard_at)
    /// ([`Drift::None`] by default — observably inert).
    drift: Drift,
    /// `(smallest, largest)` assignment by parameter count, computed on
    /// first use with an O(population)-time / O(1)-memory scan and cached.
    extremes: OnceLock<(ClientAssignment, ClientAssignment)>,
}

impl FederationContext {
    /// Assembles an eager context, validating that data and assignments
    /// agree.
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] if the number of assignments does
    /// not match the number of clients or the federation is empty.
    pub fn new(
        data: FederatedDataset,
        assignments: Vec<ClientAssignment>,
        train: LocalTrainConfig,
        seed: u64,
    ) -> FlResult<Self> {
        if data.num_clients() == 0 {
            return Err(FlError::InvalidConfig("federation has no clients".into()));
        }
        if assignments.len() != data.num_clients() {
            return Err(FlError::InvalidConfig(format!(
                "{} assignments for {} clients",
                assignments.len(),
                data.num_clients()
            )));
        }
        Ok(FederationContext {
            backend: Backend::Eager { data, assignments },
            train,
            seed,
            drift: Drift::None,
            extremes: OnceLock::new(),
        })
    }

    /// Assembles a lazy context over `num_clients` derivable clients.
    ///
    /// `test` and `public` are the shared evaluation splits (small, held
    /// eagerly); every per-client shard and assignment is derived on demand
    /// from `source`.
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] if `num_clients` is zero.
    pub fn lazy(
        task: DataTask,
        num_clients: usize,
        test: Dataset,
        public: Dataset,
        source: Arc<dyn ClientSource>,
        train: LocalTrainConfig,
        seed: u64,
    ) -> FlResult<Self> {
        if num_clients == 0 {
            return Err(FlError::InvalidConfig("federation has no clients".into()));
        }
        Ok(FederationContext {
            backend: Backend::Lazy {
                source,
                task,
                num_clients,
                test,
                public,
            },
            train,
            seed,
            drift: Drift::None,
            extremes: OnceLock::new(),
        })
    }

    /// Whether clients are derived on demand instead of held resident.
    pub fn is_lazy(&self) -> bool {
        matches!(self.backend, Backend::Lazy { .. })
    }

    /// The fully materialised dataset behind an eager context, `None` for a
    /// lazy one. Prefer the backend-agnostic accessors
    /// ([`task`](FederationContext::task),
    /// [`test_set`](FederationContext::test_set),
    /// [`client_shard`](FederationContext::client_shard)); this exists for
    /// callers that genuinely need the whole eager population at once.
    pub fn eager_data(&self) -> Option<&FederatedDataset> {
        match &self.backend {
            Backend::Eager { data, .. } => Some(data),
            Backend::Lazy { .. } => None,
        }
    }

    /// The data task this federation trains on.
    pub fn task(&self) -> DataTask {
        match &self.backend {
            Backend::Eager { data, .. } => data.task(),
            Backend::Lazy { task, .. } => *task,
        }
    }

    /// Number of clients in the population (derivable, not resident).
    pub fn num_clients(&self) -> usize {
        match &self.backend {
            Backend::Eager { assignments, .. } => assignments.len(),
            Backend::Lazy { num_clients, .. } => *num_clients,
        }
    }

    /// The held-out global test set (for the global-accuracy metric).
    pub fn test_set(&self) -> &Dataset {
        match &self.backend {
            Backend::Eager { data, .. } => data.test(),
            Backend::Lazy { test, .. } => test,
        }
    }

    /// The public proxy dataset shared by server and clients (used by
    /// knowledge-distillation aggregation).
    pub fn public_set(&self) -> &Dataset {
        match &self.backend {
            Backend::Eager { data, .. } => data.public(),
            Backend::Lazy { public, .. } => public,
        }
    }

    /// A client's training shard: borrowed from the resident population
    /// when eager, derived on demand (owned) when lazy.
    ///
    /// # Panics
    /// Panics if `client` is out of range.
    pub fn client_shard(&self, client: usize) -> Cow<'_, Dataset> {
        match &self.backend {
            Backend::Eager { data, .. } => Cow::Borrowed(data.client(client)),
            Backend::Lazy {
                source,
                num_clients,
                ..
            } => {
                assert!(client < *num_clients, "client {client} out of range");
                Cow::Owned(source.client_shard(client))
            }
        }
    }

    /// The training shard of a client *as seen at round `round`*:
    /// [`client_shard`](FederationContext::client_shard) with the context's
    /// [`Drift`] schedule applied. With the default [`Drift::None`] (and in
    /// epoch 0 of any schedule) this is exactly `client_shard` — same
    /// borrow, no copy — so undrifted runs are bit-identical to the
    /// round-oblivious accessor.
    ///
    /// # Panics
    /// Panics if `client` is out of range.
    pub fn client_shard_at(&self, client: usize, round: usize) -> Cow<'_, Dataset> {
        let shard = self.client_shard(client);
        match apply_drift(&shard, self.drift, self.seed, round) {
            Some(drifted) => Cow::Owned(drifted),
            None => shard,
        }
    }

    /// The drift schedule training shards are viewed through.
    pub fn drift(&self) -> Drift {
        self.drift
    }

    /// Sets the drift schedule (default [`Drift::None`]). Drift only affects
    /// [`client_shard_at`](FederationContext::client_shard_at) — the test
    /// and public splits stay stationary, so metrics measure how training
    /// under drift tracks the reference task.
    pub fn set_drift(&mut self, drift: Drift) {
        self.drift = drift;
    }

    /// Builder-style [`set_drift`](FederationContext::set_drift).
    #[must_use]
    pub fn with_drift(mut self, drift: Drift) -> Self {
        self.set_drift(drift);
        self
    }

    /// The device/model assignment of a client (by value — assignments are
    /// small `Copy` records, and lazy contexts derive them on demand).
    ///
    /// # Panics
    /// Panics if `client` is out of range.
    pub fn assignment(&self, client: usize) -> ClientAssignment {
        match &self.backend {
            Backend::Eager { assignments, .. } => assignments[client],
            Backend::Lazy {
                source,
                num_clients,
                ..
            } => {
                assert!(client < *num_clients, "client {client} out of range");
                source.assignment(client)
            }
        }
    }

    /// Local training hyper-parameters.
    pub fn train_config(&self) -> &LocalTrainConfig {
        &self.train
    }

    /// The experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The assignment with the smallest model (used by the homogeneous
    /// baseline, which trains "the smallest model across all heterogeneous
    /// devices"). First call scans the population in O(n) time and O(1)
    /// memory; the result is cached.
    pub fn smallest_assignment(&self) -> ClientAssignment {
        self.extremes().0
    }

    /// The assignment with the largest model (the proxy for the full global
    /// model used by width/depth extraction). Cached like
    /// [`smallest_assignment`](FederationContext::smallest_assignment).
    pub fn largest_assignment(&self) -> ClientAssignment {
        self.extremes().1
    }

    fn extremes(&self) -> (ClientAssignment, ClientAssignment) {
        *self.extremes.get_or_init(|| {
            let mut smallest = self.assignment(0);
            let mut largest = smallest;
            for client in 1..self.num_clients() {
                let a = self.assignment(client);
                if a.entry.stats.params < smallest.entry.stats.params {
                    smallest = a;
                }
                if a.entry.stats.params > largest.entry.stats.params {
                    largest = a;
                }
            }
            (smallest, largest)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::{DataTask, ShardPlan};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_models::{MhflMethod, ModelFamily};

    fn pool() -> ModelPool {
        ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::HETEROGENEOUS,
            10,
        )
    }

    fn context() -> FederationContext {
        let data = FederatedDataset::generate(DataTask::Cifar10, 6, 12, None, 0);
        let case = ConstraintCase::Memory;
        let devices = case.build_population(6, 0);
        let assignments = case.assign_clients(
            &pool(),
            MhflMethod::SHeteroFl,
            &devices,
            &CostModel::default(),
        );
        FederationContext::new(data, assignments, LocalTrainConfig::default(), 1).unwrap()
    }

    /// A lazy source over the seed-derived device/shard recipes.
    struct LazySource {
        plan: ShardPlan,
        case: ConstraintCase,
        pool: ModelPool,
        seed: u64,
    }

    impl ClientSource for LazySource {
        fn assignment(&self, client: usize) -> ClientAssignment {
            let device = self.case.derive_device(self.seed, client);
            self.case.assign_client(
                &self.pool,
                MhflMethod::SHeteroFl,
                &device,
                &CostModel::default(),
                client,
            )
        }

        fn client_shard(&self, client: usize) -> Dataset {
            self.plan.client_shard(client)
        }
    }

    fn lazy_context(num_clients: usize) -> FederationContext {
        let plan = ShardPlan::new(DataTask::Cifar10, num_clients, 12, None, 0);
        let source = LazySource {
            plan,
            case: ConstraintCase::Memory,
            pool: pool(),
            seed: 0,
        };
        FederationContext::lazy(
            DataTask::Cifar10,
            num_clients,
            plan.test(),
            plan.public(),
            Arc::new(source),
            LocalTrainConfig::default(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn context_exposes_clients_and_assignments() {
        let ctx = context();
        assert!(!ctx.is_lazy());
        assert_eq!(ctx.num_clients(), 6);
        assert_eq!(ctx.assignment(3).client_id, 3);
        assert_eq!(ctx.seed(), 1);
        assert_eq!(ctx.task(), DataTask::Cifar10);
        assert_eq!(ctx.client_shard(2).len(), 12);
        assert!(ctx.test_set().len() >= 64);
        assert_eq!(ctx.public_set().len(), 64);
        assert!(ctx.eager_data().is_some());
    }

    #[test]
    fn extreme_assignments_bracket_the_population() {
        for ctx in [context(), lazy_context(6)] {
            let smallest = ctx.smallest_assignment();
            let largest = ctx.largest_assignment();
            for c in 0..ctx.num_clients() {
                let params = ctx.assignment(c).entry.stats.params;
                assert!(params >= smallest.entry.stats.params);
                assert!(params <= largest.entry.stats.params);
            }
        }
    }

    #[test]
    fn lazy_context_derives_on_demand() {
        let ctx = lazy_context(100_000);
        assert!(ctx.is_lazy());
        assert!(ctx.eager_data().is_none());
        assert_eq!(ctx.num_clients(), 100_000);
        // Far-out clients derive without materialising anything else, and
        // derivation is deterministic.
        let a = ctx.assignment(99_999);
        assert_eq!(a.client_id, 99_999);
        assert_eq!(a, ctx.assignment(99_999));
        assert_eq!(
            ctx.client_shard(99_999).as_ref(),
            ctx.client_shard(99_999).as_ref()
        );
        // Clone shares the source.
        let cloned = ctx.clone();
        assert_eq!(cloned.assignment(12_345), ctx.assignment(12_345));
    }

    #[test]
    fn mismatched_assignments_are_rejected() {
        let data = FederatedDataset::generate(DataTask::Cifar10, 4, 10, None, 0);
        let err = FederationContext::new(data, Vec::new(), LocalTrainConfig::default(), 0);
        assert!(matches!(err, Err(FlError::InvalidConfig(_))));
    }
}
