//! The shared context of one federated experiment.

use mhfl_data::FederatedDataset;
use mhfl_device::ClientAssignment;
use mhfl_nn::SgdConfig;
use serde::{Deserialize, Serialize};

use crate::{FlError, FlResult};

/// Hyper-parameters of a client's local optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of local SGD steps per round.
    pub local_steps: usize,
    /// Optimiser configuration.
    pub sgd: SgdConfig,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig {
            batch_size: 16,
            local_steps: 5,
            sgd: SgdConfig::default(),
        }
    }
}

/// Everything an algorithm needs to know about the federation it runs in:
/// the per-client data shards, the per-client device/model assignments
/// produced by a [`mhfl_device::ConstraintCase`], and the local training
/// hyper-parameters.
#[derive(Debug, Clone)]
pub struct FederationContext {
    data: FederatedDataset,
    assignments: Vec<ClientAssignment>,
    train: LocalTrainConfig,
    seed: u64,
}

impl FederationContext {
    /// Assembles a context, validating that data and assignments agree.
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] if the number of assignments does
    /// not match the number of clients or the federation is empty.
    pub fn new(
        data: FederatedDataset,
        assignments: Vec<ClientAssignment>,
        train: LocalTrainConfig,
        seed: u64,
    ) -> FlResult<Self> {
        if data.num_clients() == 0 {
            return Err(FlError::InvalidConfig("federation has no clients".into()));
        }
        if assignments.len() != data.num_clients() {
            return Err(FlError::InvalidConfig(format!(
                "{} assignments for {} clients",
                assignments.len(),
                data.num_clients()
            )));
        }
        Ok(FederationContext {
            data,
            assignments,
            train,
            seed,
        })
    }

    /// The federated dataset (client shards, test set, public set).
    pub fn data(&self) -> &FederatedDataset {
        &self.data
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.data.num_clients()
    }

    /// The device/model assignment of a client.
    pub fn assignment(&self, client: usize) -> &ClientAssignment {
        &self.assignments[client]
    }

    /// All assignments.
    pub fn assignments(&self) -> &[ClientAssignment] {
        &self.assignments
    }

    /// Local training hyper-parameters.
    pub fn train_config(&self) -> &LocalTrainConfig {
        &self.train
    }

    /// The experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The index of the client with the smallest assigned model (used by the
    /// homogeneous baseline, which trains "the smallest model across all
    /// heterogeneous devices").
    pub fn smallest_assignment(&self) -> &ClientAssignment {
        self.assignments
            .iter()
            .min_by_key(|a| a.entry.stats.params)
            .expect("validated: at least one client")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhfl_data::DataTask;
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_models::{MhflMethod, ModelFamily};

    fn context() -> FederationContext {
        let data = FederatedDataset::generate(DataTask::Cifar10, 6, 12, None, 0);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::HETEROGENEOUS,
            10,
        );
        let case = ConstraintCase::Memory;
        let devices = case.build_population(6, 0);
        let assignments = case.assign_clients(
            &pool,
            MhflMethod::SHeteroFl,
            &devices,
            &CostModel::default(),
        );
        FederationContext::new(data, assignments, LocalTrainConfig::default(), 1).unwrap()
    }

    #[test]
    fn context_exposes_clients_and_assignments() {
        let ctx = context();
        assert_eq!(ctx.num_clients(), 6);
        assert_eq!(ctx.assignments().len(), 6);
        assert_eq!(ctx.assignment(3).client_id, 3);
        assert_eq!(ctx.seed(), 1);
    }

    #[test]
    fn smallest_assignment_is_minimal() {
        let ctx = context();
        let smallest = ctx.smallest_assignment();
        assert!(ctx
            .assignments()
            .iter()
            .all(|a| a.entry.stats.params >= smallest.entry.stats.params));
    }

    #[test]
    fn mismatched_assignments_are_rejected() {
        let data = FederatedDataset::generate(DataTask::Cifar10, 4, 10, None, 0);
        let err = FederationContext::new(data, Vec::new(), LocalTrainConfig::default(), 0);
        assert!(matches!(err, Err(FlError::InvalidConfig(_))));
    }
}
