//! Parallel execution of the client phase.
//!
//! Because [`FlAlgorithm::client_update`](crate::FlAlgorithm::client_update)
//! takes `&self` and derives all randomness from `(seed, round, client)`,
//! the updates of one round can be computed on any number of threads without
//! changing results. [`run_clients`] fans the client phase out over a
//! [`std::thread::scope`] worker pool and returns the updates **in selection
//! order**, so downstream aggregation — where floating-point summation order
//! matters — is bit-identical to a sequential run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::{ClientUpdate, FederationContext, FlAlgorithm, FlError, FlResult};

/// How the engine executes the client phase of each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// One client after another on the calling thread.
    #[default]
    Sequential,
    /// A scoped worker pool pulling clients off a shared queue.
    Threads {
        /// Number of worker threads; `0` means one per available core.
        workers: usize,
    },
}

impl Parallelism {
    /// Thread-pool execution sized to the machine (`workers = 0`).
    pub fn threads() -> Self {
        Parallelism::Threads { workers: 0 }
    }

    /// The number of workers to spawn for `jobs` parallel tasks.
    fn worker_count(&self, jobs: usize) -> usize {
        match *self {
            Parallelism::Sequential => 1,
            Parallelism::Threads { workers: 0 } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(jobs.max(1)),
            Parallelism::Threads { workers } => workers.min(jobs.max(1)),
        }
    }

    /// The worker budget this mode grants the tensor kernels: matmul calls
    /// issued *outside* the client fan-out (server-phase aggregation,
    /// evaluation) may split their output rows across this many threads.
    /// `Sequential` keeps everything on one thread. Results are bitwise
    /// independent of the value; only wall-clock time changes.
    pub fn kernel_workers(&self) -> usize {
        match *self {
            Parallelism::Sequential => 1,
            Parallelism::Threads { workers: 0 } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads { workers } => workers.max(1),
        }
    }
}

/// A pluggable executor for the client phase of one round.
///
/// The [`Session`](crate::Session) routes every client fan-out — the
/// synchronous per-round batch and the asynchronous dispatch slots — through
/// its runner, so the *where* of client execution (in-process threads,
/// remote worker processes) is orthogonal to the *what* (the deterministic
/// round loop). Implementations must return updates **in selection order**;
/// that single contract is what makes every execution backend bit-identical
/// to [`Parallelism::Sequential`].
pub trait ClientRunner: Send {
    /// Computes the update for every client in `clients`, returning them in
    /// selection order.
    ///
    /// # Errors
    /// Returns the first failing client's error (in selection order), or a
    /// backend-specific [`FlError`] if execution itself broke down.
    fn run_clients(
        &mut self,
        algorithm: &dyn FlAlgorithm,
        round: usize,
        clients: &[usize],
        ctx: &FederationContext,
        parallelism: Parallelism,
    ) -> FlResult<Vec<ClientUpdate>>;
}

/// The default [`ClientRunner`]: run every client in this process via
/// [`run_clients`], honouring the configured [`Parallelism`].
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessRunner;

impl ClientRunner for InProcessRunner {
    fn run_clients(
        &mut self,
        algorithm: &dyn FlAlgorithm,
        round: usize,
        clients: &[usize],
        ctx: &FederationContext,
        parallelism: Parallelism,
    ) -> FlResult<Vec<ClientUpdate>> {
        run_clients(algorithm, round, clients, ctx, parallelism)
    }
}

/// Runs the client phase for every client in `clients`, honouring the
/// requested [`Parallelism`], and returns their updates in the order the
/// scheduler selected them.
///
/// The output is independent of the execution mode: updates land in
/// selection order and each [`ClientUpdate`] is a pure function of
/// `(algorithm state, round, client, ctx)`.
///
/// # Errors
/// Propagates the first failing client (in selection order, regardless of
/// which thread hit it first).
pub fn run_clients(
    algorithm: &dyn FlAlgorithm,
    round: usize,
    clients: &[usize],
    ctx: &FederationContext,
    parallelism: Parallelism,
) -> FlResult<Vec<ClientUpdate>> {
    if clients.is_empty() {
        return Ok(Vec::new());
    }
    let workers = parallelism.worker_count(clients.len());
    if workers <= 1 {
        return clients
            .iter()
            .map(|&client| algorithm.client_update(round, client, ctx))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<FlResult<ClientUpdate>>>> =
        Mutex::new((0..clients.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The cores are already saturated by this fan-out: kernels
                // issued from a client worker must not spawn another level
                // of row-range threads on top of it.
                mhfl_tensor::mark_worker_thread();
                loop {
                    // Stop pulling work once any client has failed: the
                    // round is lost either way, so don't pay for the
                    // remaining training.
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&client) = clients.get(index) else {
                        break;
                    };
                    let result = algorithm.client_update(round, client, ctx);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    slots.lock().expect("client slot lock")[index] = Some(result);
                }
            });
        }
    });

    // The cursor hands out indices in selection order and cancellation only
    // skips indices pulled *after* a failure was recorded, so walking the
    // slots in order hits every successful update before the first error and
    // never an unfilled slot before it.
    let results = slots.into_inner().expect("worker threads joined");
    let mut updates = Vec::with_capacity(results.len());
    for (index, slot) in results.into_iter().enumerate() {
        match slot {
            Some(Ok(update)) => updates.push(update),
            Some(Err(error)) => return Err(error),
            None => {
                return Err(FlError::InvalidConfig(format!(
                    "client slot {index} was never filled"
                )))
            }
        }
    }
    Ok(updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientPayload, LocalTrainConfig};
    use mhfl_data::{DataTask, Dataset, FederatedDataset};
    use mhfl_device::{ConstraintCase, CostModel, ModelPool};
    use mhfl_models::{MhflMethod, ModelFamily};

    /// Returns a deterministic per-client token so ordering is observable.
    struct TokenAlgorithm;

    impl FlAlgorithm for TokenAlgorithm {
        fn name(&self) -> String {
            "Token".into()
        }
        fn setup(&mut self, _ctx: &FederationContext) -> FlResult<()> {
            Ok(())
        }
        fn client_update(
            &self,
            round: usize,
            client: usize,
            _ctx: &FederationContext,
        ) -> FlResult<ClientUpdate> {
            if client == 999 {
                return Err(FlError::InvalidConfig("bad client".into()));
            }
            Ok(ClientUpdate::new(
                client,
                round * 100 + client,
                ClientPayload::Empty,
            ))
        }
        fn aggregate(
            &mut self,
            _round: usize,
            _updates: Vec<ClientUpdate>,
            _ctx: &FederationContext,
        ) -> FlResult<()> {
            Ok(())
        }
        fn evaluate_global(&mut self, _data: &Dataset) -> FlResult<f32> {
            Ok(0.0)
        }
        fn evaluate_client(&mut self, _client: usize, _data: &Dataset) -> FlResult<f32> {
            Ok(0.0)
        }
    }

    fn context(num_clients: usize) -> FederationContext {
        let data = FederatedDataset::generate(DataTask::UciHar, num_clients, 8, None, 0);
        let pool = ModelPool::build(
            ModelFamily::ResNet101,
            &ModelFamily::RESNET_FAMILY,
            &MhflMethod::ALL,
            6,
        );
        let case = ConstraintCase::Memory;
        let devices = case.build_population(num_clients, 0);
        let assignments = case.assign_clients(
            &pool,
            MhflMethod::SHeteroFl,
            &devices,
            &CostModel::default(),
        );
        FederationContext::new(data, assignments, LocalTrainConfig::default(), 0).unwrap()
    }

    #[test]
    fn threaded_updates_arrive_in_selection_order() {
        let ctx = context(8);
        let clients = [5, 1, 7, 0, 3];
        let sequential =
            run_clients(&TokenAlgorithm, 2, &clients, &ctx, Parallelism::Sequential).unwrap();
        let threaded = run_clients(
            &TokenAlgorithm,
            2,
            &clients,
            &ctx,
            Parallelism::Threads { workers: 4 },
        )
        .unwrap();
        assert_eq!(sequential.len(), threaded.len());
        for (s, t) in sequential.iter().zip(&threaded) {
            assert_eq!(s.client, t.client);
            assert_eq!(s.num_samples, t.num_samples);
        }
        let order: Vec<usize> = threaded.iter().map(|u| u.client).collect();
        assert_eq!(order, clients);
    }

    #[test]
    fn errors_propagate_from_worker_threads() {
        let ctx = context(4);
        let result = run_clients(
            &TokenAlgorithm,
            1,
            &[0, 999, 2],
            &ctx,
            Parallelism::Threads { workers: 2 },
        );
        assert!(result.is_err());
    }

    #[test]
    fn empty_selection_yields_no_updates() {
        let ctx = context(4);
        let updates = run_clients(
            &TokenAlgorithm,
            1,
            &[],
            &ctx,
            Parallelism::Threads { workers: 4 },
        )
        .unwrap();
        assert!(updates.is_empty());
    }

    #[test]
    fn worker_count_respects_mode_and_jobs() {
        assert_eq!(Parallelism::Sequential.worker_count(16), 1);
        assert_eq!(Parallelism::Threads { workers: 3 }.worker_count(16), 3);
        assert_eq!(Parallelism::Threads { workers: 8 }.worker_count(2), 2);
        assert!(Parallelism::threads().worker_count(64) >= 1);
    }
}
