//! Algorithm state capture for checkpoint/resume.
//!
//! A [`Checkpoint`](crate::Checkpoint) must carry the full mutable state of
//! the algorithm it interrupts — server model weights, per-client snapshots,
//! prototype tables — without the engine knowing anything about the concrete
//! algorithm. [`AlgorithmState`] is that carrier: a small named-slot
//! container over the three value kinds every in-tree algorithm's state is
//! built from ([`StateDict`]s, [`Tensor`]s and `f32` vectors).
//!
//! Algorithms fill it in [`FlAlgorithm::snapshot`](crate::FlAlgorithm) and
//! consume it in [`FlAlgorithm::restore`](crate::FlAlgorithm). Anything an
//! algorithm can recompute deterministically from the
//! [`FederationContext`](crate::FederationContext) — plan caches, proxy
//! configurations, derived RNG streams — should *not* be stored: restore
//! rebuilds it, which keeps checkpoints small and forward-compatible.

use mhfl_nn::StateDict;
use mhfl_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{FlError, FlResult};

/// Named snapshot slots of one algorithm's mutable state.
///
/// Slot names are algorithm-private; the only convention shared across the
/// in-tree families is `client.<id>` for per-client model snapshots (see
/// [`AlgorithmState::client_state_key`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AlgorithmState {
    states: Vec<(String, StateDict)>,
    tensors: Vec<(String, Tensor)>,
    scalars: Vec<(String, Vec<f32>)>,
}

impl AlgorithmState {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        AlgorithmState::default()
    }

    /// The conventional slot name for client `id`'s model snapshot.
    pub fn client_state_key(id: usize) -> String {
        format!("client.{id}")
    }

    /// Parses a slot name produced by [`client_state_key`] back into the
    /// client id.
    ///
    /// [`client_state_key`]: AlgorithmState::client_state_key
    pub fn parse_client_key(name: &str) -> Option<usize> {
        name.strip_prefix("client.")?.parse().ok()
    }

    /// Stores a [`StateDict`] under `name` (replacing any previous value).
    pub fn insert_state(&mut self, name: impl Into<String>, state: StateDict) {
        let name = name.into();
        self.states.retain(|(n, _)| *n != name);
        self.states.push((name, state));
    }

    /// Stores a [`Tensor`] under `name`.
    pub fn insert_tensor(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        self.tensors.retain(|(n, _)| *n != name);
        self.tensors.push((name, tensor));
    }

    /// Stores a scalar vector under `name`.
    pub fn insert_scalars(&mut self, name: impl Into<String>, values: Vec<f32>) {
        let name = name.into();
        self.scalars.retain(|(n, _)| *n != name);
        self.scalars.push((name, values));
    }

    /// Removes and returns the [`StateDict`] stored under `name`.
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] if the slot is absent — restoring
    /// from a checkpoint of a different algorithm, usually.
    pub fn take_state(&mut self, name: &str) -> FlResult<StateDict> {
        Self::take(&mut self.states, name, "state-dict")
    }

    /// Removes and returns the [`Tensor`] stored under `name`.
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] if the slot is absent.
    pub fn take_tensor(&mut self, name: &str) -> FlResult<Tensor> {
        Self::take(&mut self.tensors, name, "tensor")
    }

    /// Removes and returns the [`Tensor`] stored under `name`, or `None` if
    /// the slot was never written (for optional algorithm state).
    pub fn try_take_tensor(&mut self, name: &str) -> Option<Tensor> {
        Self::take(&mut self.tensors, name, "tensor").ok()
    }

    /// Removes and returns the scalar vector stored under `name`.
    ///
    /// # Errors
    /// Returns [`FlError::InvalidConfig`] if the slot is absent.
    pub fn take_scalars(&mut self, name: &str) -> FlResult<Vec<f32>> {
        Self::take(&mut self.scalars, name, "scalars")
    }

    /// Removes and returns every [`StateDict`] slot whose name starts with
    /// `prefix`, in insertion order, as `(full name, value)` pairs.
    pub fn take_states_with_prefix(&mut self, prefix: &str) -> Vec<(String, StateDict)> {
        let (matching, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.states)
            .into_iter()
            .partition(|(n, _)| n.starts_with(prefix));
        self.states = rest;
        matching
    }

    /// Whether no slot of any kind is populated.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty() && self.tensors.is_empty() && self.scalars.is_empty()
    }

    /// The raw slot tables in insertion order, for the durable-checkpoint
    /// codec (`persist`): state dicts, tensors, scalar vectors.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (
        &[(String, StateDict)],
        &[(String, Tensor)],
        &[(String, Vec<f32>)],
    ) {
        (&self.states, &self.tensors, &self.scalars)
    }

    /// Rebuilds a snapshot from raw slot tables (the decode half of
    /// [`parts`](AlgorithmState::parts)); insertion order is preserved.
    pub(crate) fn from_parts(
        states: Vec<(String, StateDict)>,
        tensors: Vec<(String, Tensor)>,
        scalars: Vec<(String, Vec<f32>)>,
    ) -> Self {
        AlgorithmState {
            states,
            tensors,
            scalars,
        }
    }

    fn take<T>(slots: &mut Vec<(String, T)>, name: &str, kind: &str) -> FlResult<T> {
        let index = slots.iter().position(|(n, _)| n == name).ok_or_else(|| {
            FlError::InvalidConfig(format!(
                "algorithm snapshot has no {kind} slot named {name:?} \
                 (checkpoint from a different algorithm?)"
            ))
        })?;
        Ok(slots.remove(index).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_round_trip_by_name() {
        let mut snap = AlgorithmState::new();
        let mut sd = StateDict::new();
        sd.insert("w", Tensor::ones(&[2, 2]));
        snap.insert_state("global", sd.clone());
        snap.insert_tensor("prototypes", Tensor::zeros(&[3, 4]));
        snap.insert_scalars("counts", vec![1.0, 2.0]);
        assert!(!snap.is_empty());
        assert_eq!(snap.take_state("global").unwrap(), sd);
        assert_eq!(snap.take_tensor("prototypes").unwrap().dims(), &[3, 4]);
        assert_eq!(snap.take_scalars("counts").unwrap(), vec![1.0, 2.0]);
        assert!(snap.is_empty());
    }

    #[test]
    fn missing_slots_error_and_optional_slots_are_none() {
        let mut snap = AlgorithmState::new();
        assert!(snap.take_state("global").is_err());
        assert!(snap.take_scalars("counts").is_err());
        assert!(snap.try_take_tensor("maybe").is_none());
    }

    #[test]
    fn inserts_replace_and_prefix_drain_partitions() {
        let mut snap = AlgorithmState::new();
        snap.insert_scalars("counts", vec![1.0]);
        snap.insert_scalars("counts", vec![2.0]);
        assert_eq!(snap.take_scalars("counts").unwrap(), vec![2.0]);

        snap.insert_state("global", StateDict::new());
        for id in [3usize, 7, 1] {
            snap.insert_state(AlgorithmState::client_state_key(id), StateDict::new());
        }
        let clients = snap.take_states_with_prefix("client.");
        let ids: Vec<usize> = clients
            .iter()
            .map(|(n, _)| AlgorithmState::parse_client_key(n).unwrap())
            .collect();
        assert_eq!(ids, vec![3, 7, 1]);
        assert!(snap.take_state("global").is_ok());
        assert!(AlgorithmState::parse_client_key("server").is_none());
    }
}
